//! Robot gathering: autonomous robots on a 1-dimensional track converge to
//! nearby positions although some robots are transiently hijacked (buggy
//! firmware, hardware glitches) and the set of misbehaving robots changes
//! over time.
//!
//! The paper's introduction points out that gathering tolerates a final
//! position difference (the robots have a physical size), which is exactly
//! ε-agreement, and that faults are naturally mobile.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/robot-gathering.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example robot_gathering
//! ```

use mbaa::prelude::*;

fn main() -> mbaa::Result<()> {
    // Sasaki's model (M3) is the harshest: a robot that was just released by
    // the glitch still executes the poisoned motion commands for one more
    // cycle. Tolerating f glitched robots needs n > 6f.
    let model = MobileModel::Sasaki;
    let f = 1;
    let n = model.required_processes(f) + 3; // 10 robots
    let robot_diameter_m = 0.10;

    // Robots start scattered along a 50 m track.
    let positions: Vec<Value> = (0..n)
        .map(|i| Value::new(5.0 * i as f64 * (1.0 + 0.01 * (i % 3) as f64)))
        .collect();

    let scenario = Scenario::new(model, n, f)
        .epsilon(robot_diameter_m) // gather to within one robot diameter
        .max_rounds(300)
        .adversary(
            MobilityStrategy::TargetExtremes,
            CorruptionStrategy::split_attack(),
        )
        // The Fault-Tolerant Midpoint rule halves the spread every cycle.
        .function(MsrFunction::fault_tolerant_midpoint(2 * f))
        .inputs(positions.clone());

    println!("robots:              {n} (f = {f} glitched at any time)");
    println!("model:               {model}");
    println!(
        "initial spread:      {:.2} m",
        positions.iter().map(|v| v.get()).fold(f64::MIN, f64::max)
            - positions.iter().map(|v| v.get()).fold(f64::MAX, f64::min)
    );
    println!("gathering tolerance: {robot_diameter_m} m");

    let outcome = scenario.run(11)?;

    println!();
    println!("motion cycles executed: {}", outcome.rounds_executed);
    println!("gathered:               {}", outcome.reached_agreement);
    println!("final spread:           {:.4} m", outcome.final_diameter());
    println!(
        "gathering point stayed within the initial positions: {}",
        outcome.validity_holds()
    );
    println!();
    println!("spread after each motion cycle:");
    for (i, d) in outcome.report.diameters().iter().enumerate() {
        println!("  cycle {:>3}: {d:>10.4} m", i + 1);
    }

    Ok(())
}
