//! Contraction profile: the per-round convergence curve of one scenario,
//! read off the deterministic telemetry stream instead of recorded
//! snapshots.
//!
//! An [`EventLog`] attached to a batch of scalar runs captures every
//! `round` event — diameter, contraction ratio, MSR reduction width,
//! message traffic — without changing a single bit of the results (the
//! observability invariant; see `docs/observability.md`). This example
//! folds the per-seed streams into a per-round table: worst and mean
//! contraction ratio across seeds, surviving diameter, and how many seeds
//! are still running each round. A [`MetricsRegistry`] over the same runs
//! supplies the run-level aggregate underneath.
//!
//! A committed scenario file reproduces this experiment through the CLI:
//! `mbaa run scenarios/contraction_profile.scenario.json` (add
//! `--events-out` to get the same stream as JSONL, `mbaa report` to render
//! the aggregate).
//!
//! Run with:
//!
//! ```text
//! cargo run --example contraction_profile
//! ```

use mbaa::prelude::*;
use mbaa::{Event, Tee};

fn main() -> mbaa::Result<()> {
    // Sasaki's model (M3): cured processes are unaware and keep an
    // adversary-planted vote — the slowest-contracting of the four models,
    // which makes for the most interesting curve.
    let model = MobileModel::Sasaki;
    let f = 2;
    let n = model.required_processes(f);
    let seeds: Vec<u64> = (0..12).collect();
    let scenario = Scenario::new(model, n, f).epsilon(1e-6).max_rounds(60);

    println!("model: {model}, n = {n}, f = {f}, {} seed(s)", seeds.len());
    println!();

    // One pass per seed with both sinks attached at once: the event log
    // keeps the full stream, the registry folds it into the aggregate.
    let mut log = EventLog::new();
    let mut metrics = MetricsRegistry::new();
    for &seed in &seeds {
        let mut tee = Tee(&mut log, &mut metrics);
        scenario.run_observed(seed, &mut tee)?;
    }

    // The contraction curve: round r's row summarizes every seed that was
    // still running at round r.
    let max_round = log
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Round(r) => Some(r.round),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    println!("round   active   worst contraction   mean contraction   max diameter");
    for round in 0..=max_round {
        let rows: Vec<_> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Round(r) if r.round == round => Some(r),
                _ => None,
            })
            .collect();
        let worst = rows.iter().map(|r| r.contraction).fold(0.0, f64::max);
        let mean = rows.iter().map(|r| r.contraction).sum::<f64>() / rows.len() as f64;
        let diameter = rows.iter().map(|r| r.diameter).fold(0.0, f64::max);
        println!(
            "{:>5} {:>8} {:>19.4} {:>18.4} {:>14.6}",
            round + 1,
            rows.len(),
            worst,
            mean,
            diameter,
        );
    }

    println!();
    println!(
        "aggregate: {}/{} converged, mean rounds {:.1}",
        metrics.converged,
        metrics.runs,
        metrics.mean_rounds().unwrap_or(f64::NAN)
    );
    println!("contraction-ratio histogram (per round, all seeds):");
    let bounds = metrics.contraction_ratio.bounds();
    for (i, &count) in metrics.contraction_ratio.counts().iter().enumerate() {
        let label = match bounds.get(i + 1) {
            Some(hi) => format!("[{}, {})", bounds[i], hi),
            None => format!("[{}, \u{221e})", bounds[i]),
        };
        println!("  {label:<12} {count:>6}");
    }

    Ok(())
}
