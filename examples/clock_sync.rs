//! Clock synchronisation: nodes of a cluster agree on a common clock offset
//! within a tight tolerance while a moving attacker (a worm hopping between
//! machines) reports arbitrary clock values.
//!
//! Agreement on clock corrections is a classic application of approximate
//! agreement; the mobile adversary abstracts an attacker that compromises a
//! few machines at a time and is evicted by re-imaging, only to pop up
//! elsewhere — exactly the insider-threat reading the paper gives of the
//! unconstrained-mobility models.
//!
//! The example compares the default MSR instance with the non-MSR median
//! baseline under identical adversaries (Buhrman's model, n > 3f).
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/clock-sync.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example clock_sync
//! ```

use mbaa::prelude::*;

fn offsets_ms(n: usize) -> Vec<Value> {
    // Clock offsets in milliseconds: most machines drift within ±5 ms, two
    // racks drift further out.
    (0..n)
        .map(|i| {
            let base = (i as f64 * 1.7) % 10.0 - 5.0;
            let rack_skew = if i % 5 == 0 { 12.0 } else { 0.0 };
            Value::new(base + rack_skew)
        })
        .collect()
}

fn run(scenario: &Scenario, function: &dyn VotingFunction) -> mbaa::Result<(bool, usize, f64)> {
    let outcome = scenario.run_with_function(function, 3)?;
    Ok((
        outcome.reached_agreement && outcome.validity_holds(),
        outcome.rounds_executed,
        outcome.final_diameter(),
    ))
}

fn main() -> mbaa::Result<()> {
    let f = 3;
    let n = MobileModel::Buhrman.required_processes(f) + 6; // 16 machines

    let scenario = Scenario::new(MobileModel::Buhrman, n, f)
        .epsilon(0.5) // half a millisecond
        .max_rounds(200)
        .adversary(
            MobilityStrategy::Random,
            CorruptionStrategy::RandomNoise { lo: -1e4, hi: 1e4 },
        )
        .inputs(offsets_ms(n));

    println!("machines: {n}, compromised at any instant: {f}");
    println!("target: all clock corrections within 0.5 ms\n");

    let msr = MsrFunction::for_fault_counts(MobileModel::Buhrman.mixed_fault_counts(f));
    let (ok, rounds, diameter) = run(&scenario, &msr)?;
    println!(
        "MSR trimmed mean   -> success: {ok:5}, rounds: {rounds:3}, final spread: {diameter:.4} ms"
    );

    let median = MedianVoting::new();
    let (ok, rounds, diameter) = run(&scenario, &median)?;
    println!(
        "median baseline    -> success: {ok:5}, rounds: {rounds:3}, final spread: {diameter:.4} ms"
    );

    println!();
    println!(
        "Both converge under Buhrman's model at n = {n} > 3f = {}; the MSR instance is the one",
        3 * f
    );
    println!("whose correctness under *all four* mobile models the paper proves.");
    Ok(())
}
