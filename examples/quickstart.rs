//! Quickstart: reach approximate agreement among 9 processes while 2 mobile
//! Byzantine agents hop between them — described as one [`Scenario`],
//! executed once with a single seed, then over a parallel seed batch.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/quickstart.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mbaa::prelude::*;

fn main() -> mbaa::Result<()> {
    // Garay's model (M1): cured processes know they were just infected and
    // stay silent for one round. Tolerating f agents needs n > 4f.
    let model = MobileModel::Garay;
    let f = 2;
    let n = model.required_processes(f); // 4f + 1 = 9

    // One scenario describes the whole experiment point; every process
    // starts with a different value in [0, 1] (the default workload).
    let scenario = Scenario::new(model, n, f).epsilon(1e-4).max_rounds(200);

    println!("model:        {model}");
    println!("processes:    {n} (f = {f} mobile agents)");
    println!(
        "initial vals: {:?}",
        scenario
            .initial_values(42)
            .iter()
            .map(|v| v.get())
            .collect::<Vec<_>>()
    );

    let outcome = scenario.run(42)?;

    println!();
    println!("reached epsilon-agreement: {}", outcome.reached_agreement);
    println!("rounds executed:           {}", outcome.rounds_executed);
    println!(
        "final diameter:            {:.2e}",
        outcome.final_diameter()
    );
    println!("validity holds:            {}", outcome.validity_holds());
    println!(
        "final non-faulty values:   {:?}",
        outcome
            .final_non_faulty_values()
            .iter()
            .map(|v| format!("{:.6}", v.get()))
            .collect::<Vec<_>>()
    );
    println!();
    println!("per-round diameter of non-faulty values:");
    for (i, d) in outcome.report.diameters().iter().enumerate() {
        println!("  round {:>3}: {d:.6}", i + 1);
    }

    // The same scenario fans a seed batch out in parallel.
    let batch = scenario.batch(0..16).run()?;
    println!();
    println!(
        "seed batch: {} parallel runs, success rate {:.0}%, mean rounds {:.1}",
        batch.len(),
        batch.success_rate() * 100.0,
        batch.mean_rounds().unwrap_or(f64::NAN)
    );

    Ok(())
}
