//! Quickstart: reach approximate agreement among 9 processes while 2 mobile
//! Byzantine agents hop between them.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mbaa::{MobileEngine, MobileModel, ProtocolConfig, Value};

fn main() -> mbaa::Result<()> {
    // Garay's model (M1): cured processes know they were just infected and
    // stay silent for one round. Tolerating f agents needs n > 4f.
    let model = MobileModel::Garay;
    let f = 2;
    let n = model.required_processes(f); // 4f + 1 = 9

    let config = ProtocolConfig::builder(model, n, f)
        .epsilon(1e-4)
        .max_rounds(200)
        .seed(42)
        .build()?;

    // Every process starts with a different value in [0, 1].
    let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64 / (n - 1) as f64)).collect();

    println!("model:        {model}");
    println!("processes:    {n} (f = {f} mobile agents)");
    println!(
        "initial vals: {:?}",
        inputs.iter().map(|v| v.get()).collect::<Vec<_>>()
    );

    let outcome = MobileEngine::new(config).run(&inputs)?;

    println!();
    println!("reached epsilon-agreement: {}", outcome.reached_agreement);
    println!("rounds executed:           {}", outcome.rounds_executed);
    println!("final diameter:            {:.2e}", outcome.final_diameter());
    println!("validity holds:            {}", outcome.validity_holds());
    println!(
        "final non-faulty values:   {:?}",
        outcome
            .final_non_faulty_values()
            .iter()
            .map(|v| format!("{:.6}", v.get()))
            .collect::<Vec<_>>()
    );
    println!();
    println!("per-round diameter of non-faulty values:");
    for (i, d) in outcome.report.diameters().iter().enumerate() {
        println!("  round {:>3}: {d:.6}", i + 1);
    }

    Ok(())
}
