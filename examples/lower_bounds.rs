//! Executes the lower-bound constructions of Theorems 3–6: at `n = c·f`
//! processes, the three executions E1/E2/E3 make every deterministic voting
//! rule violate Simple Approximate Agreement.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/lower-bounds.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example lower_bounds
//! ```

use mbaa::core::lower_bounds::all_scenarios;
use mbaa::prelude::*;
use mbaa::sim::report::Table;

fn main() {
    let functions: Vec<(&str, Box<dyn VotingFunction>)> = vec![
        ("trimmed mean (τ=1)", Box::new(MsrFunction::dolev_mean(1))),
        ("trimmed mean (τ=2)", Box::new(MsrFunction::dolev_mean(2))),
        (
            "FT midpoint (τ=1)",
            Box::new(MsrFunction::fault_tolerant_midpoint(1)),
        ),
        ("median", Box::new(MedianVoting::new())),
    ];

    for f in 1..=2 {
        println!("=== f = {f} agents ===\n");
        for scenario in all_scenarios(f) {
            println!(
                "{} — n = {} = {}·f (one process fewer than the requirement)",
                scenario.model,
                scenario.n,
                scenario.model.bound_multiplier()
            );
            println!("  E1 multiset: {}", scenario.e1);
            println!("  E2 multiset: {}", scenario.e2);
            println!(
                "  E3 multisets indistinguishable from E1/E2: {}",
                scenario.is_indistinguishable()
            );

            let mut table = Table::new([
                "voting rule",
                "E1 decision",
                "E2 decision",
                "E3 decisions",
                "violated property",
            ]);
            for (name, function) in &functions {
                let witness = scenario.evaluate(function.as_ref());
                let violated = if witness.violates_e1 {
                    "validity in E1"
                } else if witness.violates_e2 {
                    "validity in E2"
                } else if witness.violates_e3_agreement {
                    "agreement in E3"
                } else {
                    "none (unexpected!)"
                };
                table.push_row([
                    (*name).to_string(),
                    format!("{:?}", witness.decision_e1.map(|v| v.get())),
                    format!("{:?}", witness.decision_e2.map(|v| v.get())),
                    format!(
                        "({:?}, {:?})",
                        witness.decision_e3.0.map(|v| v.get()),
                        witness.decision_e3.1.map(|v| v.get())
                    ),
                    violated.to_string(),
                ]);
                assert!(
                    witness.violates_specification(),
                    "a voting rule escaped the impossibility — this should never print"
                );
            }
            println!("{table}");
        }
    }
    println!("Every voting rule violates the specification in at least one execution,");
    println!("as Theorems 3-6 require: no algorithm works at n = c·f.");
}
