//! Mobile network × mobile adversary: convergence as a function of churn.
//!
//! The paper's adversary moves between *processes* on a fixed, fully
//! connected network. The evolving-graph regimes of Li–Hurfin–Wang
//! (arXiv:1206.0089) make the *network* mobile too: links appear and
//! disappear round by round, and only the union of the realized graphs
//! over a window carries the connectivity the analysis needs. This example
//! runs both kinds of mobility at once under Garay's model:
//!
//! * a **static** ring at the degree bound (every process hears exactly
//!   n_M1 = 5 processes per round — the sparsest legal static graph), and
//! * **churning** complete graphs whose per-round link drop probability
//!   sweeps from 0 to 0.8 — sparse every round, but with a union over any
//!   short window that meets (and quickly exceeds) the bound.
//!
//! The table reports the classic convergence-vs-churn-rate curve: light
//! churn behaves like the complete graph, heavy churn stretches
//! convergence and eventually starves it, and the static bound-degree ring
//! sits in between. A lossy-fabric row (per-link omission faults on every
//! link) shows the link-fault axis composing with the same machinery.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/mobile-network.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example mobile_network
//! ```

use mbaa::prelude::*;
use mbaa::sim::report::{fmt_f64, fmt_opt_f64, Table};

fn main() -> mbaa::Result<()> {
    let model = MobileModel::Garay;
    let f = 1;
    let n = 9;
    let seeds: Vec<u64> = (0..10).collect();

    let template = Scenario::new(model, n, f).epsilon(1e-3).max_rounds(400);

    println!("model: {model}, n = {n}, f = {f}, worst-case adversary");
    println!(
        "required closed neighbourhood: {} processes per round",
        model.required_processes(f)
    );
    println!();

    // Before anything else: the subsystem must vanish on the paper's
    // network. A static complete schedule with no link faults is
    // bit-identical to the plain engine on every execution path.
    assert_static_complete_is_bit_identical(&template);
    println!("static complete schedule == plain engine: bit-identical on run/batch/stream/sweep");
    println!();

    let mut table = Table::new([
        "network",
        "success rate",
        "mean rounds",
        "mean contraction",
        "disconnected rounds (mean)",
    ]);

    // The static reference point: a ring at the degree bound.
    let ring = template.clone().topology(Topology::Ring { k: 2 });
    let ring_batch = ring.batch(seeds.iter().copied()).run()?;
    table.push_row(row("static ring(k=2) at the bound", &ring_batch));

    // The churn curve over the complete base graph.
    let flip_rates = [0.0, 0.2, 0.4, 0.6, 0.8];
    let points = template
        .sweep_churn(flip_rates)
        .seeds(seeds.iter().copied())
        .run()?;
    for (point, rate) in points.iter().zip(flip_rates) {
        table.push_row(row(
            &format!("churn(complete, flip={rate})"),
            &point.outcome,
        ));
    }

    // The link-fault axis composes with the same machinery: a lossy
    // fabric dropping 20% of every link's messages.
    let lossy = template
        .clone()
        .link_faults(LinkFaultPlan::new().omit_all(0.2));
    let lossy_batch = lossy.batch(seeds.iter().copied()).run()?;
    table.push_row(row("complete + 20% lossy links", &lossy_batch));

    println!(
        "convergence vs churn rate ({} seeds per point):",
        seeds.len()
    );
    println!();
    print!("{table}");
    println!();

    // Frozen churn (flip = 0) is the complete graph: bit-identical runs.
    let frozen = &points[0].outcome;
    let complete = template.batch(seeds.iter().copied()).run()?;
    assert_eq!(frozen.runs, complete.runs);
    println!(
        "churn(flip=0) == complete graph: {} runs bit-identical",
        complete.runs.len()
    );

    // Heavier churn never converges faster: the mean-rounds column is
    // monotone along the curve wherever defined.
    let mean_rounds: Vec<f64> = points
        .iter()
        .map(|p| p.outcome.mean_rounds().unwrap_or(f64::INFINITY))
        .collect();
    assert!(
        mean_rounds.windows(2).all(|w| w[0] <= w[1]),
        "churn sped convergence up: {mean_rounds:?}"
    );

    Ok(())
}

/// One table row summarizing a batch: success, speed, contraction, and how
/// often the realized graph was disconnected (always 0 for static rows).
fn row(label: &str, batch: &BatchOutcome) -> [String; 5] {
    let disconnected = batch
        .iter()
        .map(|(_, o)| o.network_stats.disconnected_rounds as f64)
        .sum::<f64>()
        / batch.len().max(1) as f64;
    [
        label.to_string(),
        fmt_f64(batch.success_rate(), 2),
        fmt_opt_f64(batch.mean_rounds(), 1),
        fmt_opt_f64(batch.mean_contraction(), 3),
        fmt_f64(disconnected, 1),
    ]
}

/// Asserts the acceptance criterion of the subsystem: describing the
/// paper's static complete network through the schedule axis changes
/// nothing, on any execution path.
fn assert_static_complete_is_bit_identical(template: &Scenario) {
    let scheduled = template
        .clone()
        .topology_schedule(TopologySchedule::Static(Topology::Complete));

    for seed in 0..4 {
        assert_eq!(
            template.run(seed).unwrap(),
            scheduled.run(seed).unwrap(),
            "run path diverged at seed {seed}"
        );
    }
    let batch_plain = template.batch(0..4).run().unwrap();
    let batch_scheduled = scheduled.batch(0..4).run().unwrap();
    assert_eq!(
        batch_plain.runs, batch_scheduled.runs,
        "batch path diverged"
    );
    assert_eq!(
        template.batch(0..4).stream().unwrap().runs,
        scheduled.batch(0..4).stream().unwrap().runs,
        "stream path diverged"
    );
    let sweep_plain = template.sweep_n(1).seeds(0..2).run().unwrap();
    let sweep_scheduled = scheduled.sweep_n(1).seeds(0..2).run().unwrap();
    for (a, b) in sweep_plain.iter().zip(&sweep_scheduled) {
        assert_eq!(a.outcome.runs, b.outcome.runs, "sweep path diverged");
    }
}
