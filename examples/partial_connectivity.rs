//! Partial connectivity: convergence as a function of network degree.
//!
//! The paper's analysis lives on a fully connected network; the
//! connectivity regimes of Li–Hurfin–Wang (arXiv:1206.0089) ask what
//! happens when each process only hears a bounded neighbourhood. This
//! example sweeps ring lattices of increasing width `k` — each process
//! hears `2k` neighbours — under Garay's mobile model, and reports the
//! classic convergence-vs-degree curve: sparse rings sit below the
//! degree-dependent resilience requirement and fail or crawl, wider rings
//! recover the complete-network behaviour.
//!
//! All `(topology, seed)` pairs run on one shared work-stealing pool
//! ([`Sweep::stream_with`]), with a progress line per completed point.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/partial-connectivity.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example partial_connectivity
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use mbaa::prelude::*;
use mbaa::sim::report::{fmt_f64, fmt_opt_f64, Table};

fn main() -> mbaa::Result<()> {
    let model = MobileModel::Garay;
    let f = 1;
    let n = 15;
    let seeds = 0..20u64;

    // The template point: everything fixed except the communication graph.
    // Sparse rings violate the degree-dependent requirement (every process
    // must hear n_M1 = 5 processes per round), so the sweep opts into bound
    // violations — measuring *where* the protocol degrades is the point.
    let template = Scenario::new(model, n, f)
        .epsilon(1e-3)
        .max_rounds(300)
        .allow_bound_violation();

    // Ring widths 1..=7: degree 2..=14; 2k = n - 1 = 14 is the complete
    // graph, so the last point reproduces the paper's network.
    let topologies: Vec<Topology> = (1..=(n - 1) / 2).map(|k| Topology::Ring { k }).collect();
    let total = topologies.len();

    println!("model: {model}, n = {n}, f = {f}, worst-case adversary");
    println!(
        "required closed neighbourhood: {} processes per round",
        model.required_processes(f)
    );
    println!();

    let done = AtomicUsize::new(0);
    let points = template
        .sweep_connectivity(topologies)
        .seeds(seeds.clone())
        .stream_with(|point| {
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "  [{finished}/{total}] {} done: success rate {:.0}%",
                point.scenario.topology,
                point.result.success_rate() * 100.0
            );
        })?;

    let mut table = Table::new([
        "topology",
        "degree",
        "hears/round",
        "success rate",
        "mean rounds",
        "mean contraction",
    ]);
    for point in &points {
        // Realize the graph once more (seed-independent for rings) for the
        // degree columns of the report.
        let adjacency = point.scenario.topology.realize(n, 0)?;
        table.push_row([
            point.scenario.topology.to_string(),
            adjacency.min_degree().to_string(),
            adjacency.min_closed_neighborhood().to_string(),
            fmt_f64(point.result.success_rate(), 2),
            fmt_opt_f64(point.result.mean_rounds(), 1),
            fmt_opt_f64(point.result.mean_contraction(), 3),
        ]);
    }

    println!();
    println!("convergence vs degree ({} seeds per point):", seeds.count());
    println!();
    print!("{table}");

    // The widest ring is the complete graph: it must agree with an
    // explicit Topology::Complete run bit for bit.
    let complete = template
        .clone()
        .topology(Topology::Complete)
        .batch(0..20)
        .stream()?;
    let widest = &points.last().expect("at least one point").result;
    assert_eq!(widest.runs, complete.runs);
    println!();
    println!(
        "widest ring == complete graph: {} runs bit-identical",
        complete.runs.len()
    );

    Ok(())
}
