//! Generates the full paper-reproduction report: Table 1, Table 2, the
//! lower-bound witnesses, and the derived convergence experiments (F1–F4 of
//! DESIGN.md), in one run — every section driven through the [`Scenario`]
//! API. The output is the source of EXPERIMENTS.md.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/paper-report-f2.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example paper_report
//! ```

use mbaa::core::bounds::{empirical_threshold, ThresholdSearch};
use mbaa::core::lower_bounds::all_scenarios;
use mbaa::core::mapping::{classify_execution, theoretical_table};
use mbaa::prelude::*;
use mbaa::sim::report::{fmt_f64, fmt_opt_f64, Table};
use mbaa::sim::stats::Summary;

fn table1() -> mbaa::Result<()> {
    println!("## T1 — Table 1: Mobile -> Mixed-Mode mapping\n");
    let mut table = Table::new([
        "model",
        "faulty (theory)",
        "cured (theory)",
        "faulty (observed)",
        "cured (observed)",
        "match",
    ]);
    for row in theoretical_table() {
        let f = 2;
        let n = row.model.required_processes(f);
        let scenario = Scenario::new(row.model, n, f)
            .epsilon(1e-12)
            .max_rounds(60)
            .adversary(
                MobilityStrategy::RoundRobin,
                CorruptionStrategy::split_attack(),
            )
            .workload(Workload::UniformSpread {
                lo: 0.0,
                hi: (n - 1) as f64,
            });
        let outcome = scenario.run(202)?;
        let mapping = classify_execution(row.model, &outcome);
        table.push_row([
            row.model.to_string(),
            row.faulty_class.to_string(),
            row.cured_class
                .map_or_else(|| "—".into(), |c| c.to_string()),
            mapping
                .faulty
                .dominant()
                .map_or_else(|| "—".into(), |c| c.to_string()),
            mapping
                .cured
                .dominant()
                .map_or_else(|| "—".into(), |c| c.to_string()),
            mapping.matches_theory().to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn table2() -> mbaa::Result<()> {
    println!("## T2 — Table 2: required replicas and empirical thresholds\n");
    let mut table = Table::new([
        "model",
        "f",
        "n_Mi (theory)",
        "empirical threshold",
        "all runs ok at n_Mi",
    ]);
    for model in MobileModel::ALL {
        for f in 1..=2 {
            let search = ThresholdSearch {
                seeds: (0..6).collect(),
                max_rounds: 300,
                ..ThresholdSearch::worst_case(model, f)
            };
            let result = empirical_threshold(&search, 2)?;
            let at_theory = result
                .successes_per_n
                .iter()
                .find(|(n, _)| *n == result.theoretical)
                .map(|(_, ok)| *ok == search.seeds.len())
                .unwrap_or(false);
            table.push_row([
                model.short_name().to_string(),
                f.to_string(),
                result.theoretical.to_string(),
                result.empirical.to_string(),
                at_theory.to_string(),
            ]);
        }
    }
    println!("{table}");
    Ok(())
}

fn lower_bounds() {
    println!("## LB1–LB4 — Theorems 3–6: impossibility at n = c·f\n");
    let mut table = Table::new([
        "model",
        "n = c·f",
        "indistinguishable",
        "trimmed-mean verdict",
        "median verdict",
    ]);
    for scenario in all_scenarios(2) {
        let msr = scenario.evaluate(&MsrFunction::dolev_mean(2));
        let median = scenario.evaluate(&MedianVoting::new());
        table.push_row([
            scenario.model.short_name().to_string(),
            scenario.n.to_string(),
            scenario.is_indistinguishable().to_string(),
            format!("violates spec: {}", msr.violates_specification()),
            format!("violates spec: {}", median.violates_specification()),
        ]);
    }
    println!("{table}");
}

fn convergence() -> mbaa::Result<()> {
    println!("## F1 — single-step contraction at n = n_Mi (50 seeds)\n");
    let mut table = Table::new([
        "model",
        "n",
        "mean contraction factor",
        "mean rounds to 1e-3",
        "all valid",
    ]);
    for model in MobileModel::ALL {
        let scenario = Scenario::at_bound(model, 2);
        let batch = scenario.batch(0..50).run()?;
        table.push_row([
            model.short_name().to_string(),
            scenario.n.to_string(),
            fmt_opt_f64(batch.mean_contraction(), 4),
            fmt_opt_f64(batch.mean_rounds(), 1),
            batch.all_succeeded().to_string(),
        ]);
    }
    println!("{table}");

    println!("## F2 — rounds to epsilon-agreement vs n (f = 2, 10 seeds per point)\n");
    let mut table = Table::new(["model", "n", "mean rounds", "success rate"]);
    for model in MobileModel::ALL {
        for point in Scenario::at_bound(model, 2).sweep_n(8).seeds(0..10).run()? {
            table.push_row([
                model.short_name().to_string(),
                point.scenario.n.to_string(),
                fmt_opt_f64(point.outcome.mean_rounds(), 1),
                fmt_f64(point.outcome.success_rate(), 2),
            ]);
        }
    }
    println!("{table}");
    Ok(())
}

fn equivalence() -> mbaa::Result<()> {
    println!("## F3 — mobile vs static (Theorem 1 equivalence), 20 seeds\n");
    let mut table = Table::new([
        "model",
        "n",
        "mobile rounds (mean)",
        "static rounds (mean)",
        "all converged",
    ]);
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f) + 2;
        let scenario = Scenario::new(model, n, f);
        let points = mobile_vs_static(&scenario, 0..20)?;
        let mobile = Summary::of(
            &points
                .iter()
                .map(|p| p.mobile_rounds() as f64)
                .collect::<Vec<_>>(),
        );
        let statics = Summary::of(
            &points
                .iter()
                .map(|p| p.static_rounds() as f64)
                .collect::<Vec<_>>(),
        );
        table.push_row([
            model.short_name().to_string(),
            n.to_string(),
            fmt_opt_f64(mobile.map(|s| s.mean), 1),
            fmt_opt_f64(statics.map(|s| s.mean), 1),
            points.iter().all(|p| p.both_converged).to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn ablation() -> mbaa::Result<()> {
    println!("## F4 — adversary ablation at n = n_Mi (f = 2, 5 seeds per cell)\n");
    let template = Scenario::at_bound(MobileModel::Buhrman, 2);
    let points = adversary_ablation(&template, 0..5)?;
    let mut table = Table::new([
        "model",
        "mobility",
        "corruption",
        "success rate",
        "mean rounds",
    ]);
    for p in points {
        table.push_row([
            p.model.short_name().to_string(),
            p.mobility.to_string(),
            p.corruption.to_string(),
            fmt_f64(p.outcome.success_rate(), 2),
            fmt_opt_f64(p.outcome.mean_rounds(), 1),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn main() -> mbaa::Result<()> {
    println!("# Paper reproduction report — Approximate Agreement under Mobile Byzantine Faults\n");
    table1()?;
    table2()?;
    lower_bounds();
    convergence()?;
    equivalence()?;
    ablation()?;
    println!(
        "Report complete. Every section corresponds to a row of the experiment index in DESIGN.md."
    );
    Ok(())
}
