//! Sensor fusion: a temperature sensor network agrees on a reading while an
//! intermittent electromagnetic perturbation (modelled as mobile Byzantine
//! agents) sweeps across the nodes.
//!
//! This is one of the motivating scenarios of the paper's introduction:
//! gathering environmental data does not require perfect agreement, but the
//! perturbed sensors may report arbitrary values and the perturbation moves.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/sensor-fusion.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example sensor_fusion
//! ```

use mbaa::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> mbaa::Result<()> {
    // Bonnet's model (M2): a sensor that just left the perturbed area does
    // not know its memory was scrambled and keeps reporting it. n > 5f.
    let model = MobileModel::Bonnet;
    let f = 2;
    let n = model.required_processes(f) + 4; // 15 sensors

    // True temperature field: ~21.5 °C with per-sensor calibration noise.
    let mut rng = StdRng::seed_from_u64(7);
    let readings: Vec<Value> = (0..n)
        .map(|_| Value::new(21.5 + rng.random_range(-0.4..=0.4)))
        .collect();
    let true_mean = readings.iter().map(|v| v.get()).sum::<f64>() / n as f64;

    // The perturbation drifts across the field; perturbed sensors report
    // wildly out-of-range temperatures.
    let scenario = Scenario::new(model, n, f)
        .epsilon(0.05) // agree to within 0.05 °C
        .max_rounds(100)
        .adversary(
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::OutOfRange { magnitude: 50.0 },
        )
        .inputs(readings.clone());

    println!("sensors:            {n} (f = {f} perturbed at any time)");
    println!("model:              {model}");
    println!("true field mean:    {true_mean:.3} °C");
    println!(
        "initial spread:     {:.3} °C",
        readings.iter().map(|v| v.get()).fold(f64::MIN, f64::max)
            - readings.iter().map(|v| v.get()).fold(f64::MAX, f64::min)
    );

    let outcome = scenario.run(2024)?;

    let fused = outcome
        .final_non_faulty_values()
        .mean()
        .expect("non-faulty sensors exist");
    println!();
    println!("rounds to agreement:  {}", outcome.rounds_executed);
    println!("agreement reached:    {}", outcome.reached_agreement);
    println!("validity preserved:   {}", outcome.validity_holds());
    println!("fused reading:        {:.3} °C", fused.get());
    println!(
        "fusion error:         {:.3} °C",
        (fused.get() - true_mean).abs()
    );
    println!(
        "final sensor spread:  {:.4} °C (epsilon = 0.05)",
        outcome.final_diameter()
    );

    Ok(())
}
