//! Regenerates **Table 2** of the paper: the number of replicas each mobile
//! Byzantine model requires, and locates the empirical success threshold by
//! sweeping `n` under a worst-case adversary.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/table2-thresholds.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example table2_thresholds
//! ```

use mbaa::core::bounds::{empirical_threshold, table2, ThresholdSearch};
use mbaa::prelude::*;
use mbaa::sim::report::Table;

fn main() -> mbaa::Result<()> {
    println!("Theoretical Table 2 (required replicas n_Mi)\n");
    let mut theory = Table::new(["model", "requirement", "f=1", "f=2", "f=3"]);
    for model in MobileModel::ALL {
        theory.push_row([
            model.to_string(),
            format!("n > {}f", model.bound_multiplier()),
            model.required_processes(1).to_string(),
            model.required_processes(2).to_string(),
            model.required_processes(3).to_string(),
        ]);
    }
    println!("{theory}");
    // Sanity: the closed form matches the tabulated rows.
    assert_eq!(table2(&[1, 2, 3]).len(), 12);

    println!("Empirical thresholds (worst-case adversary, 6 seeds per n, f = 1..2)\n");
    let mut empirical = Table::new([
        "model",
        "f",
        "theoretical n",
        "smallest n with all runs succeeding",
        "success counts per n (from n = f+1)",
    ]);
    for model in MobileModel::ALL {
        for f in 1..=2 {
            let search = ThresholdSearch {
                seeds: (0..6).collect(),
                max_rounds: 300,
                ..ThresholdSearch::worst_case(model, f)
            };
            let result = empirical_threshold(&search, 2)?;
            let successes = result
                .successes_per_n
                .iter()
                .map(|(n, ok)| format!("{n}:{ok}"))
                .collect::<Vec<_>>()
                .join(" ");
            empirical.push_row([
                model.short_name().to_string(),
                f.to_string(),
                result.theoretical.to_string(),
                result.empirical.to_string(),
                successes,
            ]);
        }
    }
    println!("{empirical}");
    println!(
        "Note: the empirical threshold can sit below the theoretical requirement because the\n\
         concrete adversary is not optimal; tightness is demonstrated by the lower-bound\n\
         constructions (see `cargo run --example lower_bounds`)."
    );
    Ok(())
}
