//! Regenerates **Table 1** of the paper: the mapping between the behaviour
//! of faulty / cured processes in the four mobile Byzantine models and the
//! Mixed-Mode fault classes.
//!
//! The theoretical table comes from Lemmas 1–4; the empirical table is
//! obtained by running an instrumented execution per model under a
//! worst-case adversary and classifying what each faulty / cured sender
//! actually delivered to each receiver.
//!
//! A committed scenario file reproduces the headline run of this example:
//! `mbaa run scenarios/table1-mapping.scenario.json` (see `docs/gallery.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example table1_mapping
//! ```

use mbaa::core::mapping::{classify_execution, theoretical_table};
use mbaa::prelude::*;
use mbaa::sim::report::Table;

fn main() -> mbaa::Result<()> {
    println!("Theoretical Table 1 (Lemmas 1-4)\n");
    let mut theory = Table::new([
        "",
        "M1 (Garay)",
        "M2 (Bonnet)",
        "M3 (Sasaki)",
        "M4 (Buhrman)",
    ]);
    let rows = theoretical_table();
    theory.push_row(
        std::iter::once("faulty".to_string())
            .chain(rows.iter().map(|r| r.faulty_class.to_string())),
    );
    theory.push_row(
        std::iter::once("cured".to_string()).chain(rows.iter().map(|r| {
            r.cured_class
                .map_or_else(|| "—".to_string(), |c| c.to_string())
        })),
    );
    println!("{theory}");

    println!("Empirical Table 1 (observed behaviour, split adversary, f = 2, 40 rounds)\n");
    let mut empirical = Table::new([
        "model",
        "faulty: benign/symmetric/asymmetric",
        "cured: benign/symmetric/asymmetric",
        "matches theory",
    ]);

    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f);
        // ε = 1e-12 keeps the instrumented run going for the full budget.
        let scenario = Scenario::new(model, n, f)
            .epsilon(1e-12)
            .max_rounds(40)
            .adversary(
                MobilityStrategy::RoundRobin,
                CorruptionStrategy::split_attack(),
            )
            .workload(Workload::UniformSpread {
                lo: 0.0,
                hi: (n - 1) as f64,
            });
        let outcome = scenario.run(123)?;
        let mapping = classify_execution(model, &outcome);
        empirical.push_row([
            model.to_string(),
            format!(
                "{}/{}/{}",
                mapping.faulty.benign, mapping.faulty.symmetric, mapping.faulty.asymmetric
            ),
            format!(
                "{}/{}/{}",
                mapping.cured.benign, mapping.cured.symmetric, mapping.cured.asymmetric
            ),
            mapping.matches_theory().to_string(),
        ]);
    }
    println!("{empirical}");
    Ok(())
}
