//! Regenerates **Table 1** of the paper: the mapping between the behaviour
//! of faulty / cured processes in the four mobile Byzantine models and the
//! Mixed-Mode fault classes.
//!
//! The theoretical table comes from Lemmas 1–4; the empirical table is
//! obtained by running an instrumented execution per model under a
//! worst-case adversary and classifying what each faulty / cured sender
//! actually delivered to each receiver.
//!
//! Run with:
//!
//! ```text
//! cargo run --example table1_mapping
//! ```

use mbaa::core::mapping::{classify_execution, theoretical_table};
use mbaa::sim::report::Table;
use mbaa::{
    CorruptionStrategy, MobileEngine, MobileModel, MobilityStrategy, ProtocolConfig, Value,
};

fn main() -> mbaa::Result<()> {
    println!("Theoretical Table 1 (Lemmas 1-4)\n");
    let mut theory = Table::new(["", "M1 (Garay)", "M2 (Bonnet)", "M3 (Sasaki)", "M4 (Buhrman)"]);
    let rows = theoretical_table();
    theory.push_row(
        std::iter::once("faulty".to_string())
            .chain(rows.iter().map(|r| r.faulty_class.to_string())),
    );
    theory.push_row(std::iter::once("cured".to_string()).chain(rows.iter().map(|r| {
        r.cured_class
            .map_or_else(|| "—".to_string(), |c| c.to_string())
    })));
    println!("{theory}");

    println!("Empirical Table 1 (observed behaviour, split adversary, f = 2, 40 rounds)\n");
    let mut empirical = Table::new([
        "model",
        "faulty: benign/symmetric/asymmetric",
        "cured: benign/symmetric/asymmetric",
        "matches theory",
    ]);

    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f);
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-12) // keep running for the full budget
            .max_rounds(40)
            .mobility(MobilityStrategy::RoundRobin)
            .corruption(CorruptionStrategy::split_attack())
            .seed(123)
            .build()?;
        let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64)).collect();
        let outcome = MobileEngine::new(config).run(&inputs)?;
        let mapping = classify_execution(model, &outcome);
        empirical.push_row([
            model.to_string(),
            format!(
                "{}/{}/{}",
                mapping.faulty.benign, mapping.faulty.symmetric, mapping.faulty.asymmetric
            ),
            format!(
                "{}/{}/{}",
                mapping.cured.benign, mapping.cured.symmetric, mapping.cured.asymmetric
            ),
            mapping.matches_theory().to_string(),
        ]);
    }
    println!("{empirical}");
    Ok(())
}
