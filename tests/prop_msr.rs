//! Property-based tests of the MSR function family: the single-step
//! convergence properties P1/P2 and structural invariants of the reduction
//! and selection steps.

use mbaa::msr::convergence::{satisfies_p1, satisfies_p2};
use mbaa::{FaultCounts, MsrFunction, Value, ValueMultiset, VotingFunction};
use proptest::prelude::*;

/// A strategy producing a vector of finite values in a modest range.
fn values(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3..1.0e3f64, min_len..=max_len)
}

/// A strategy producing mixed-mode fault counts with a + s + b <= 4.
fn fault_counts() -> impl Strategy<Value = FaultCounts> {
    (0usize..=2, 0usize..=2, 0usize..=2).prop_map(|(a, s, b)| FaultCounts::new(a, s, b))
}

fn multiset(raw: &[f64]) -> ValueMultiset {
    raw.iter().copied().map(Value::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The MSR function result always lies within the range of the *correct*
    /// values (property P1), as long as the faulty values are at most τ on
    /// each side of the sorted multiset (which trimming guarantees when the
    /// bound holds).
    #[test]
    fn p1_result_in_correct_range(correct in values(3, 12), counts in fault_counts()) {
        let tau = counts.reduction_tau();
        let n_needed = counts.min_processes();
        // Build a received multiset: the correct values plus up to a + s
        // arbitrary planted values.
        prop_assume!(correct.len() + counts.total() >= n_needed);
        let correct_ms = multiset(&correct);
        let lo = correct_ms.min().unwrap().get();
        let hi = correct_ms.max().unwrap().get();

        // The adversary plants extreme values on both sides.
        let mut received = correct.clone();
        for i in 0..tau {
            if i % 2 == 0 {
                received.push(hi + 1_000.0 + i as f64);
            } else {
                received.push(lo - 1_000.0 - i as f64);
            }
        }
        let function = MsrFunction::for_fault_counts(counts);
        if let Some(result) = function.apply(&multiset(&received)) {
            prop_assert!(
                satisfies_p1(result, &correct_ms),
                "result {result} outside [{lo}, {hi}]"
            );
        }
    }

    /// Two processes applying the MSR function to multisets that share the
    /// same correct values (but see different faulty values) compute results
    /// strictly closer than the correct diameter (property P2).
    #[test]
    fn p2_results_contract(correct in values(4, 12), counts in fault_counts(), seed_offset in 0.0..500.0f64) {
        let tau = counts.reduction_tau();
        prop_assume!(tau >= 1);
        prop_assume!(correct.len() + counts.total() >= counts.min_processes());
        let correct_ms = multiset(&correct);
        prop_assume!(correct_ms.diameter() > 1e-9);
        let lo = correct_ms.min().unwrap().get();
        let hi = correct_ms.max().unwrap().get();

        // Process i sees high outliers, process j sees low outliers — the
        // classic asymmetric split.
        let mut seen_i = correct.clone();
        let mut seen_j = correct.clone();
        for k in 0..tau {
            seen_i.push(hi + seed_offset + k as f64);
            seen_j.push(lo - seed_offset - k as f64);
        }
        let function = MsrFunction::for_fault_counts(counts);
        let vi = function.apply(&multiset(&seen_i));
        let vj = function.apply(&multiset(&seen_j));
        if let (Some(vi), Some(vj)) = (vi, vj) {
            prop_assert!(
                satisfies_p2(vi, vj, &correct_ms),
                "|{vi} - {vj}| >= diameter {}",
                correct_ms.diameter()
            );
        }
    }

    /// Reduction never widens the range and removes exactly 2τ values when
    /// enough values are present.
    #[test]
    fn reduction_shrinks_cardinality_and_range(raw in values(1, 20), tau in 0usize..4) {
        let ms = multiset(&raw);
        let reduced = ms.trimmed(tau);
        if ms.len() > 2 * tau {
            prop_assert_eq!(reduced.len(), ms.len() - 2 * tau);
            let orig = ms.range().unwrap();
            let new = reduced.range().unwrap();
            prop_assert!(orig.contains_interval(&new));
        } else {
            prop_assert!(reduced.is_empty());
        }
    }

    /// The mean of any non-empty multiset lies within its range.
    #[test]
    fn mean_is_within_range(raw in values(1, 30)) {
        let ms = multiset(&raw);
        let mean = ms.mean().unwrap();
        prop_assert!(ms.range().unwrap().contains(mean));
    }

    /// Every MSR instance is permutation-invariant: the result only depends
    /// on the multiset, not on the order values arrived in.
    #[test]
    fn msr_is_permutation_invariant(raw in values(3, 12), tau in 0usize..3) {
        let function = MsrFunction::dolev_mean(tau);
        let forward = function.apply(&multiset(&raw));
        let mut reversed = raw.clone();
        reversed.reverse();
        let backward = function.apply(&multiset(&reversed));
        prop_assert_eq!(forward, backward);
    }

    /// The fault-tolerant midpoint never leaves the reduced range either.
    #[test]
    fn ftm_result_is_bracketed(raw in values(5, 15), tau in 1usize..3) {
        let ms = multiset(&raw);
        prop_assume!(ms.len() > 2 * tau);
        let reduced = ms.trimmed(tau);
        let result = MsrFunction::fault_tolerant_midpoint(tau).apply(&ms).unwrap();
        prop_assert!(reduced.range().unwrap().contains(result));
    }
}
