//! Property-style tests of the MSR function family: the single-step
//! convergence properties P1/P2 and structural invariants of the reduction
//! and selection steps, checked over seeded random case batteries (the
//! offline stand-in for the original proptest strategies — same properties,
//! deterministic sampling).

use mbaa::msr::convergence::{satisfies_p1, satisfies_p2};
use mbaa::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CASES: usize = 128;

/// A vector of finite values in a modest range.
fn values(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = rng.random_range(min_len..=max_len);
    (0..len)
        .map(|_| rng.random_range(-1.0e3..1.0e3f64))
        .collect()
}

/// Mixed-mode fault counts with each class at most 2.
fn fault_counts(rng: &mut StdRng) -> FaultCounts {
    FaultCounts::new(
        rng.random_range(0usize..=2),
        rng.random_range(0usize..=2),
        rng.random_range(0usize..=2),
    )
}

fn multiset(raw: &[f64]) -> ValueMultiset {
    raw.iter().copied().map(Value::new).collect()
}

/// The MSR function result always lies within the range of the *correct*
/// values (property P1), as long as the faulty values are at most τ on each
/// side of the sorted multiset (which trimming guarantees when the bound
/// holds).
#[test]
fn p1_result_in_correct_range() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut checked = 0;
    while checked < CASES {
        let correct = values(&mut rng, 3, 12);
        let counts = fault_counts(&mut rng);
        let tau = counts.reduction_tau();
        if correct.len() + counts.total() < counts.min_processes() {
            continue;
        }
        checked += 1;
        let correct_ms = multiset(&correct);
        let lo = correct_ms.min().unwrap().get();
        let hi = correct_ms.max().unwrap().get();

        // The adversary plants extreme values on both sides.
        let mut received = correct.clone();
        for i in 0..tau {
            if i % 2 == 0 {
                received.push(hi + 1_000.0 + i as f64);
            } else {
                received.push(lo - 1_000.0 - i as f64);
            }
        }
        let function = MsrFunction::for_fault_counts(counts);
        if let Some(result) = function.apply(&multiset(&received)) {
            assert!(
                satisfies_p1(result, &correct_ms),
                "result {result} outside [{lo}, {hi}]"
            );
        }
    }
}

/// Two processes applying the MSR function to multisets that share the same
/// correct values (but see different faulty values) compute results strictly
/// closer than the correct diameter (property P2).
#[test]
fn p2_results_contract() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut checked = 0;
    while checked < CASES {
        let correct = values(&mut rng, 4, 12);
        let counts = fault_counts(&mut rng);
        let seed_offset = rng.random_range(0.0..500.0f64);
        let tau = counts.reduction_tau();
        if tau < 1 || correct.len() + counts.total() < counts.min_processes() {
            continue;
        }
        let correct_ms = multiset(&correct);
        if correct_ms.diameter() <= 1e-9 {
            continue;
        }
        checked += 1;
        let lo = correct_ms.min().unwrap().get();
        let hi = correct_ms.max().unwrap().get();

        // Process i sees high outliers, process j sees low outliers — the
        // classic asymmetric split.
        let mut seen_i = correct.clone();
        let mut seen_j = correct.clone();
        for k in 0..tau {
            seen_i.push(hi + seed_offset + k as f64);
            seen_j.push(lo - seed_offset - k as f64);
        }
        let function = MsrFunction::for_fault_counts(counts);
        let vi = function.apply(&multiset(&seen_i));
        let vj = function.apply(&multiset(&seen_j));
        if let (Some(vi), Some(vj)) = (vi, vj) {
            assert!(
                satisfies_p2(vi, vj, &correct_ms),
                "|{vi} - {vj}| >= diameter {}",
                correct_ms.diameter()
            );
        }
    }
}

/// Reduction never widens the range and removes exactly 2τ values when
/// enough values are present.
#[test]
fn reduction_shrinks_cardinality_and_range() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let raw = values(&mut rng, 1, 20);
        let tau = rng.random_range(0usize..4);
        let ms = multiset(&raw);
        let reduced = ms.trimmed(tau);
        if ms.len() > 2 * tau {
            assert_eq!(reduced.len(), ms.len() - 2 * tau);
            let orig = ms.range().unwrap();
            let new = reduced.range().unwrap();
            assert!(orig.contains_interval(&new));
        } else {
            assert!(reduced.is_empty());
        }
    }
}

/// The mean of any non-empty multiset lies within its range.
#[test]
fn mean_is_within_range() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let raw = values(&mut rng, 1, 30);
        let ms = multiset(&raw);
        let mean = ms.mean().unwrap();
        assert!(ms.range().unwrap().contains(mean));
    }
}

/// Every MSR instance is permutation-invariant: the result only depends on
/// the multiset, not on the order values arrived in.
#[test]
fn msr_is_permutation_invariant() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let raw = values(&mut rng, 3, 12);
        let tau = rng.random_range(0usize..3);
        let function = MsrFunction::dolev_mean(tau);
        let forward = function.apply(&multiset(&raw));
        let mut reversed = raw.clone();
        reversed.reverse();
        let backward = function.apply(&multiset(&reversed));
        assert_eq!(forward, backward);
    }
}

/// The fault-tolerant midpoint never leaves the reduced range either.
#[test]
fn ftm_result_is_bracketed() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut checked = 0;
    while checked < CASES {
        let raw = values(&mut rng, 5, 15);
        let tau = rng.random_range(1usize..3);
        let ms = multiset(&raw);
        if ms.len() <= 2 * tau {
            continue;
        }
        checked += 1;
        let reduced = ms.trimmed(tau);
        let result = MsrFunction::fault_tolerant_midpoint(tau)
            .apply(&ms)
            .unwrap();
        assert!(reduced.range().unwrap().contains(result));
    }
}
