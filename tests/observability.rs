//! The observability invariant, end to end: attaching any observer to any
//! execution path changes **nothing** about the results, and the telemetry
//! it yields is itself deterministic.
//!
//! Three families of guarantees, all through the public `mbaa` facade:
//!
//! * **Inertness** — outcomes with an observer attached are bit-identical
//!   to detached runs: scalar engine, `BatchEngine` (including a ragged
//!   33-seed batch that spills one lane past the 32-lane chunk width), all
//!   `Observe` levels, and `Runner`/`Sweep` streaming at worker counts
//!   1/2/8.
//! * **Per-seed determinism** — the event subsequence a seed produces on
//!   the batched engine equals the scalar engine's stream for that seed,
//!   event for event.
//! * **Order-independent aggregation** — folding per-seed registries in
//!   any order (and across any worker split) merges to the same registry,
//!   bit for bit.

use mbaa::prelude::*;
use mbaa::{BatchEngine, BatchLane, Event, MobileEngine, Observe};

fn scenario() -> Scenario {
    Scenario::at_bound(MobileModel::Garay, 2)
        .epsilon(1e-6)
        .max_rounds(300)
}

fn lanes(scenario: &Scenario, seeds: &[u64]) -> Vec<BatchLane> {
    seeds
        .iter()
        .map(|&seed| BatchLane {
            seed,
            inputs: scenario.initial_values(seed),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Inertness: attached == detached, everywhere.
// ---------------------------------------------------------------------------

#[test]
fn scalar_outcomes_are_identical_with_any_observer_at_every_level() {
    for observe in [Observe::Full, Observe::Snapshots, Observe::Summary] {
        let scenario = scenario().observe(observe);
        for seed in 0..6u64 {
            let detached = scenario.run(seed).unwrap();
            let mut log = EventLog::new();
            let logged = scenario.run_observed(seed, &mut log).unwrap();
            let (metered, metrics) = scenario.observe_metrics(seed).unwrap();
            assert_eq!(detached, logged, "EventLog perturbed {observe:?}/{seed}");
            assert_eq!(
                detached, metered,
                "MetricsRegistry perturbed {observe:?}/{seed}"
            );
            assert!(!log.is_empty());
            assert_eq!(metrics.runs, 1);
            assert_eq!(metrics.rounds_total, detached.rounds_executed as u64);
        }
    }
}

#[test]
fn batch_outcomes_are_identical_with_any_observer_at_every_level() {
    // 33 seeds: one more than the executor's 32-lane chunk width, so the
    // facade path below also exercises a ragged tail chunk.
    let seeds: Vec<u64> = (0..33).collect();
    for observe in [Observe::Full, Observe::Snapshots, Observe::Summary] {
        let scenario = scenario().observe(observe);
        let engine = BatchEngine::new(scenario.lower(0).unwrap());
        let lanes = lanes(&scenario, &seeds);
        let detached: Vec<_> = engine.run(&lanes).into_iter().map(|r| r.unwrap()).collect();
        let mut log = EventLog::new();
        let attached: Vec<_> = engine
            .run_observed(&lanes, &mut log)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(detached, attached, "observer perturbed batch {observe:?}");
        assert_eq!(
            log.events()
                .iter()
                .filter(|e| matches!(e, Event::RunEnd(_)))
                .count(),
            seeds.len(),
            "one run_end per lane"
        );
    }
}

#[test]
fn streaming_summaries_and_metrics_agree_across_worker_counts() {
    let scenario = scenario();
    let seeds: Vec<u64> = (0..33).collect();
    let reference = scenario.batch(seeds.iter().copied()).stream().unwrap();
    let mut registries = Vec::new();
    for workers in [1usize, 2, 8] {
        let runner = scenario.batch(seeds.iter().copied()).workers(workers);
        let plain = runner.stream().unwrap();
        let (metered, metrics) = runner.stream_metrics().unwrap();
        assert_eq!(reference, plain, "worker count changed results");
        assert_eq!(reference, metered, "metrics sink changed results");
        registries.push(metrics);
    }
    assert_eq!(registries[0], registries[1], "registry depends on workers");
    assert_eq!(registries[0], registries[2], "registry depends on workers");
    assert_eq!(registries[0].runs, seeds.len() as u64);
}

#[test]
fn sweep_metrics_agree_across_worker_counts() {
    let sweep = scenario().max_rounds(120).sweep_n(2).seeds(0..9);
    let reference = sweep.stream().unwrap();
    let mut registries = Vec::new();
    for workers in [1usize, 2, 8] {
        let sweep = scenario()
            .max_rounds(120)
            .sweep_n(2)
            .seeds(0..9)
            .workers(workers);
        let (summaries, metrics) = sweep.stream_metrics().unwrap();
        assert_eq!(reference, summaries, "metrics sink changed sweep results");
        registries.push(metrics);
    }
    assert_eq!(registries[0], registries[1]);
    assert_eq!(registries[0], registries[2]);
    // `sweep_n(2)` is the base point plus two increments: 3 points.
    assert_eq!(registries[0].runs, 3 * 9);
}

// ---------------------------------------------------------------------------
// Per-seed determinism: batch event streams equal scalar event streams.
// ---------------------------------------------------------------------------

#[test]
fn per_seed_batch_event_streams_equal_scalar_streams() {
    let scenario = scenario().observe(Observe::Summary);
    let seeds: Vec<u64> = (0..33).collect();
    let engine = BatchEngine::new(scenario.lower(0).unwrap());
    let mut batch_log = EventLog::new();
    let results = engine.run_observed(&lanes(&scenario, &seeds), &mut batch_log);
    assert!(results.iter().all(Result::is_ok));
    for &seed in &seeds {
        let mut scalar_log = EventLog::new();
        scenario.run_observed(seed, &mut scalar_log).unwrap();
        assert_eq!(
            batch_log.for_seed(seed),
            scalar_log.events(),
            "seed {seed}: batched event stream diverged from scalar"
        );
    }
}

#[test]
fn scalar_engine_event_stream_is_level_independent() {
    // Telemetry events describe the protocol, not the recording level:
    // the stream must not change when snapshots/tracing are turned on.
    let mut reference: Option<Vec<Event>> = None;
    for observe in [Observe::Full, Observe::Snapshots, Observe::Summary] {
        let scenario = scenario().observe(observe);
        let mut log = EventLog::new();
        MobileEngine::new(scenario.lower(3).unwrap())
            .run_observed(&scenario.initial_values(3), &mut log)
            .unwrap();
        let events = log.events().to_vec();
        match &reference {
            None => reference = Some(events),
            Some(expected) => {
                assert_eq!(expected, &events, "{observe:?} changed the event stream");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Order-independent aggregation.
// ---------------------------------------------------------------------------

#[test]
fn registry_merge_is_order_independent() {
    let scenario = scenario();
    let per_seed: Vec<MetricsRegistry> = (0..12u64)
        .map(|seed| scenario.observe_metrics(seed).unwrap().1)
        .collect();

    let mut forward = MetricsRegistry::new();
    for registry in &per_seed {
        forward.merge(registry);
    }
    let mut backward = MetricsRegistry::new();
    for registry in per_seed.iter().rev() {
        backward.merge(registry);
    }
    // A lopsided split merged pairwise, like uneven workers would.
    let mut left = MetricsRegistry::new();
    let mut right = MetricsRegistry::new();
    for (i, registry) in per_seed.iter().enumerate() {
        if i % 3 == 0 {
            left.merge(registry);
        } else {
            right.merge(registry);
        }
    }
    left.merge(&right);

    assert_eq!(forward, backward, "merge is order-dependent");
    assert_eq!(forward, left, "merge is split-dependent");
    assert_eq!(forward.runs, 12);

    // And the parallel streaming path folds to the same registry as the
    // sequential per-seed path.
    let (_, streamed) = scenario.batch(0..12).workers(4).stream_metrics().unwrap();
    assert_eq!(forward, streamed, "streamed registry diverged");
}
