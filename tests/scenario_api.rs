//! Integration tests of the unified `Scenario` API: the builder-first entry
//! point must lower to the exact same executions as the hand-driven
//! `ProtocolConfig` path, and its parallel batch runner must be
//! deterministic and order-independent.

use mbaa::prelude::*;

fn scenario_for(model: MobileModel) -> Scenario {
    Scenario::at_bound(model, 2).epsilon(1e-4).max_rounds(400)
}

#[test]
fn single_runs_are_byte_identical_to_the_lowered_protocol_path_for_all_models() {
    for model in MobileModel::ALL {
        let scenario = scenario_for(model);
        let seed = 42;

        // The scenario path.
        let via_scenario = scenario.run(seed).unwrap();

        // The hand-lowered path: same ProtocolConfig, same workload, same
        // engine — built without going through Scenario::run.
        let config = ProtocolConfig::builder(model, scenario.n, scenario.f)
            .epsilon(scenario.epsilon)
            .max_rounds(scenario.max_rounds)
            .mobility(scenario.mobility)
            .corruption(scenario.corruption)
            .seed(seed)
            .build()
            .unwrap();
        assert_eq!(
            config,
            scenario.lower(seed).unwrap(),
            "{model}: lowering diverged"
        );
        let inputs = scenario.initial_values(seed);
        let via_protocol = MobileEngine::new(config).run(&inputs).unwrap();

        // Structurally identical…
        assert_eq!(via_scenario, via_protocol, "{model}: outcomes diverged");
        // …and byte-identical in their full rendering (every field, every
        // round snapshot, every trace entry).
        assert_eq!(
            format!("{via_scenario:?}").into_bytes(),
            format!("{via_protocol:?}").into_bytes(),
            "{model}: outcome renderings diverged"
        );
    }
}

#[test]
fn explicit_function_lowering_is_also_identical() {
    let function = MsrFunction::fault_tolerant_midpoint(2);
    let scenario = scenario_for(MobileModel::Sasaki).function(function);
    let via_scenario = scenario.run(7).unwrap();
    let config = ProtocolConfig::builder(MobileModel::Sasaki, scenario.n, 2)
        .epsilon(1e-4)
        .max_rounds(400)
        .mobility(scenario.mobility)
        .corruption(scenario.corruption)
        .function(function)
        .seed(7)
        .build()
        .unwrap();
    let via_protocol = MobileEngine::new(config)
        .run(&scenario.initial_values(7))
        .unwrap();
    assert_eq!(via_scenario, via_protocol);
}

#[test]
fn parallel_batches_are_deterministic() {
    for model in MobileModel::ALL {
        let scenario = scenario_for(model);
        let first = scenario.batch(0..12).run().unwrap();
        let second = scenario.batch(0..12).run().unwrap();
        assert_eq!(first, second, "{model}: repeated batch diverged");
    }
}

#[test]
fn parallel_batches_are_order_independent() {
    let scenario = scenario_for(MobileModel::Garay);
    let ascending = scenario.batch(0..8).run().unwrap();
    let descending = scenario.batch((0..8).rev()).run().unwrap();
    let shuffled = scenario.batch([5, 2, 7, 0, 3, 6, 1, 4]).run().unwrap();
    assert_eq!(ascending, descending);
    assert_eq!(ascending, shuffled);
    // Aggregation is keyed by seed, in ascending order.
    let seeds: Vec<u64> = ascending.iter().map(|(s, _)| s).collect();
    assert_eq!(seeds, (0..8).collect::<Vec<u64>>());
}

#[test]
fn batch_entries_match_independent_single_runs() {
    let scenario = scenario_for(MobileModel::Bonnet);
    let batch = scenario.batch(0..6).run().unwrap();
    for (seed, outcome) in batch.iter() {
        assert_eq!(
            outcome,
            &scenario.run(seed).unwrap(),
            "seed {seed} diverged"
        );
    }
}

#[test]
fn batch_summaries_agree_with_the_experiment_lowering() {
    let scenario =
        scenario_for(MobileModel::Buhrman).workload(Workload::RandomUniform { lo: -1.0, hi: 1.0 });
    let full = scenario.batch(0..6).run().unwrap().to_experiment_result();
    let lowered = run_experiment(&scenario.to_experiment(0..6)).unwrap();
    assert_eq!(full, lowered);
}

#[test]
fn sweeps_go_through_the_same_batch_machinery() {
    let points = scenario_for(MobileModel::Buhrman)
        .sweep_n(2)
        .seeds(0..3)
        .run()
        .unwrap();
    assert_eq!(points.len(), 3);
    for point in points {
        assert_eq!(point.outcome, point.scenario.batch(0..3).run().unwrap());
        assert!(point.outcome.all_succeeded());
    }
}

#[test]
fn batches_are_identical_for_every_worker_count() {
    // The work-stealing pool must not leak scheduling into results: a
    // single worker, a few workers, and an oversubscribed pool all
    // aggregate to the same BatchOutcome.
    let scenario = scenario_for(MobileModel::Garay);
    let reference = scenario.batch(0..10).workers(1).run().unwrap();
    for width in [2usize, 4, 24] {
        assert_eq!(
            scenario.batch(0..10).workers(width).run().unwrap(),
            reference,
            "{width} workers diverged"
        );
    }
    assert_eq!(scenario.batch(0..10).run().unwrap(), reference);
}

#[test]
fn flattened_sweeps_are_identical_for_every_worker_count() {
    let sweep = || scenario_for(MobileModel::Buhrman).sweep_n(2).seeds(0..3);
    let reference = sweep().workers(1).run().unwrap();
    for width in [2usize, 16] {
        assert_eq!(
            sweep().workers(width).run().unwrap(),
            reference,
            "{width} workers diverged"
        );
    }
}

#[test]
fn streaming_summaries_match_the_eager_batch() {
    let scenario = scenario_for(MobileModel::Bonnet);
    let eager = scenario.batch(0..8).run().unwrap().to_experiment_result();
    assert_eq!(scenario.batch(0..8).stream().unwrap(), eager);
    assert_eq!(scenario.batch(0..8).workers(1).stream().unwrap(), eager);
}

#[test]
fn explicit_complete_topology_is_byte_identical_to_the_default_single_runs() {
    // The topology axis must not perturb the legacy engine: an explicit
    // Topology::Complete and the default (no `.topology(...)` call at all)
    // produce byte-identical outcomes for every model and seed.
    for model in MobileModel::ALL {
        let default_scenario = scenario_for(model);
        let explicit = default_scenario.clone().topology(Topology::Complete);
        for seed in 0..6 {
            let via_default = default_scenario.run(seed).unwrap();
            let via_explicit = explicit.run(seed).unwrap();
            assert_eq!(via_default, via_explicit, "{model} seed {seed} diverged");
            assert_eq!(
                format!("{via_default:?}").into_bytes(),
                format!("{via_explicit:?}").into_bytes(),
                "{model} seed {seed} renderings diverged"
            );
        }
    }
}

#[test]
fn explicit_complete_topology_is_identical_on_every_execution_path() {
    // run() is covered above; batch, stream, summarize, and the flattened
    // sweep must agree too, for more than one worker budget.
    let default_scenario = scenario_for(MobileModel::Garay);
    let explicit = default_scenario.clone().topology(Topology::Complete);

    let batch_default = default_scenario.batch(0..6).run().unwrap();
    let batch_explicit = explicit.batch(0..6).run().unwrap();
    for ((_, a), (_, b)) in batch_default.iter().zip(batch_explicit.iter()) {
        assert_eq!(a, b, "batch path diverged");
    }
    assert_eq!(
        batch_default.to_experiment_result().runs,
        batch_explicit.to_experiment_result().runs
    );

    for workers in [1usize, 4] {
        assert_eq!(
            default_scenario
                .batch(0..6)
                .workers(workers)
                .stream()
                .unwrap()
                .runs,
            explicit.batch(0..6).workers(workers).stream().unwrap().runs,
            "stream path diverged at {workers} workers"
        );
    }
    assert_eq!(
        default_scenario.batch(0..6).summarize().unwrap().runs,
        explicit.batch(0..6).summarize().unwrap().runs
    );

    let sweep_default = default_scenario.sweep_n(1).seeds(0..3).run().unwrap();
    let sweep_explicit = explicit.sweep_n(1).seeds(0..3).run().unwrap();
    for (a, b) in sweep_default.iter().zip(&sweep_explicit) {
        assert_eq!(a.outcome.runs, b.outcome.runs, "sweep path diverged");
    }
}

/// Summaries must be identical at every `Observe` level, on every execution
/// path, for every worker count — the level only decides what a run
/// records, never what it computes.
#[test]
fn observe_summary_matches_full_on_every_execution_path() {
    for model in [MobileModel::Garay, MobileModel::Buhrman] {
        let full = scenario_for(model); // Observe::Full is the default
        assert_eq!(full.observe, Observe::Full);
        let lean = full.clone().observe(Observe::Summary);

        // Single runs: identical computation, leaner recordings.
        let a = full.run(5).unwrap();
        let b = lean.run(5).unwrap();
        assert_eq!(a.final_votes, b.final_votes, "{model}");
        assert_eq!(a.final_states, b.final_states, "{model}");
        assert_eq!(a.report, b.report, "{model}");
        assert_eq!(a.network_stats, b.network_stats, "{model}");
        assert_eq!(a.configurations.len(), a.rounds_executed);
        assert_eq!(a.trace.len(), a.rounds_executed);
        assert!(b.configurations.is_empty() && b.trace.is_empty());

        // Snapshots sit in between: per-round states, no trace.
        let mid = full.clone().observe(Observe::Snapshots).run(5).unwrap();
        assert_eq!(mid.configurations, a.configurations, "{model}");
        assert!(mid.trace.is_empty());

        // Batch outcomes fold to the same summaries…
        let full_batch = full.batch(0..5).run().unwrap();
        let lean_batch = lean.batch(0..5).run().unwrap();
        assert_eq!(
            full_batch.to_experiment_result().runs,
            lean_batch.to_experiment_result().runs,
            "{model}: batch summaries diverged"
        );

        // …and the summary-only paths agree with summaries derived from
        // full outcomes, for every worker count.
        let reference = full_batch.to_experiment_result().runs;
        for workers in [1usize, 3] {
            assert_eq!(
                full.batch(0..5).workers(workers).stream().unwrap().runs,
                reference,
                "{model}: stream diverged at {workers} workers"
            );
            assert_eq!(
                lean.batch(0..5).workers(workers).stream().unwrap().runs,
                reference,
                "{model}: lean stream diverged at {workers} workers"
            );
        }
        assert_eq!(full.batch(0..5).summarize().unwrap().runs, reference);
        assert_eq!(lean.batch(0..5).summarize().unwrap().runs, reference);

        // Sweeps: the streamed (Summary-executed) sweep equals the eager
        // full-outcome sweep point by point.
        let eager = full.sweep_n(1).seeds(0..3).run().unwrap();
        let streamed = full.sweep_n(1).seeds(0..3).workers(2).stream().unwrap();
        for (point, summary) in eager.iter().zip(&streamed) {
            assert_eq!(
                point.outcome.to_experiment_result().runs,
                summary.result.runs,
                "{model}: sweep summaries diverged"
            );
        }
    }
}

/// The Observe equivalence must also hold on link-faulted / churned
/// networks (PR 4's dynamic path), where trace recording is by far the
/// most expensive observation.
#[test]
fn observe_summary_matches_full_under_churn_and_link_faults() {
    let full = Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-3)
        .max_rounds(300)
        .topology_schedule(TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.3,
        })
        .link_faults(LinkFaultPlan::new().omit_all(0.05));
    let lean = full.clone().observe(Observe::Summary);

    let a = full.run(7).unwrap();
    let b = lean.run(7).unwrap();
    assert_eq!(a.final_votes, b.final_votes);
    assert_eq!(a.report, b.report);
    assert_eq!(a.network_stats, b.network_stats);
    assert!(a.network_stats.link_omissions > 0, "plan lost nothing");
    assert!(!a.trace.is_empty() && b.trace.is_empty());

    // Summary-level paths agree with summaries of full outcomes across
    // worker counts, churn and all.
    let reference = full.batch(0..4).run().unwrap().to_experiment_result().runs;
    for workers in [1usize, 3] {
        assert_eq!(
            full.batch(0..4).workers(workers).stream().unwrap().runs,
            reference,
            "churned stream diverged at {workers} workers"
        );
    }
    assert_eq!(lean.batch(0..4).summarize().unwrap().runs, reference);

    // The churn sweep streams at Observe::Summary internally; its points
    // must equal eager full-outcome batches.
    let eager = full.sweep_churn([0.0, 0.3]).seeds(0..3).run().unwrap();
    let streamed = full.sweep_churn([0.0, 0.3]).seeds(0..3).stream().unwrap();
    for (point, summary) in eager.iter().zip(&streamed) {
        assert_eq!(
            point.outcome.to_experiment_result().runs,
            summary.result.runs
        );
    }
}
