//! Integration tests of the unified `Scenario` API: the builder-first entry
//! point must lower to the exact same executions as the hand-driven
//! `ProtocolConfig` path, and its parallel batch runner must be
//! deterministic and order-independent.

use mbaa::prelude::*;

fn scenario_for(model: MobileModel) -> Scenario {
    Scenario::at_bound(model, 2).epsilon(1e-4).max_rounds(400)
}

#[test]
fn single_runs_are_byte_identical_to_the_lowered_protocol_path_for_all_models() {
    for model in MobileModel::ALL {
        let scenario = scenario_for(model);
        let seed = 42;

        // The scenario path.
        let via_scenario = scenario.run(seed).unwrap();

        // The hand-lowered path: same ProtocolConfig, same workload, same
        // engine — built without going through Scenario::run.
        let config = ProtocolConfig::builder(model, scenario.n, scenario.f)
            .epsilon(scenario.epsilon)
            .max_rounds(scenario.max_rounds)
            .mobility(scenario.mobility)
            .corruption(scenario.corruption)
            .seed(seed)
            .build()
            .unwrap();
        assert_eq!(
            config,
            scenario.lower(seed).unwrap(),
            "{model}: lowering diverged"
        );
        let inputs = scenario.initial_values(seed);
        let via_protocol = MobileEngine::new(config).run(&inputs).unwrap();

        // Structurally identical…
        assert_eq!(via_scenario, via_protocol, "{model}: outcomes diverged");
        // …and byte-identical in their full rendering (every field, every
        // round snapshot, every trace entry).
        assert_eq!(
            format!("{via_scenario:?}").into_bytes(),
            format!("{via_protocol:?}").into_bytes(),
            "{model}: outcome renderings diverged"
        );
    }
}

#[test]
fn explicit_function_lowering_is_also_identical() {
    let function = MsrFunction::fault_tolerant_midpoint(2);
    let scenario = scenario_for(MobileModel::Sasaki).function(function);
    let via_scenario = scenario.run(7).unwrap();
    let config = ProtocolConfig::builder(MobileModel::Sasaki, scenario.n, 2)
        .epsilon(1e-4)
        .max_rounds(400)
        .mobility(scenario.mobility)
        .corruption(scenario.corruption)
        .function(function)
        .seed(7)
        .build()
        .unwrap();
    let via_protocol = MobileEngine::new(config)
        .run(&scenario.initial_values(7))
        .unwrap();
    assert_eq!(via_scenario, via_protocol);
}

#[test]
fn parallel_batches_are_deterministic() {
    for model in MobileModel::ALL {
        let scenario = scenario_for(model);
        let first = scenario.batch(0..12).run().unwrap();
        let second = scenario.batch(0..12).run().unwrap();
        assert_eq!(first, second, "{model}: repeated batch diverged");
    }
}

#[test]
fn parallel_batches_are_order_independent() {
    let scenario = scenario_for(MobileModel::Garay);
    let ascending = scenario.batch(0..8).run().unwrap();
    let descending = scenario.batch((0..8).rev()).run().unwrap();
    let shuffled = scenario.batch([5, 2, 7, 0, 3, 6, 1, 4]).run().unwrap();
    assert_eq!(ascending, descending);
    assert_eq!(ascending, shuffled);
    // Aggregation is keyed by seed, in ascending order.
    let seeds: Vec<u64> = ascending.iter().map(|(s, _)| s).collect();
    assert_eq!(seeds, (0..8).collect::<Vec<u64>>());
}

#[test]
fn batch_entries_match_independent_single_runs() {
    let scenario = scenario_for(MobileModel::Bonnet);
    let batch = scenario.batch(0..6).run().unwrap();
    for (seed, outcome) in batch.iter() {
        assert_eq!(
            outcome,
            &scenario.run(seed).unwrap(),
            "seed {seed} diverged"
        );
    }
}

#[test]
fn batch_summaries_agree_with_the_experiment_lowering() {
    let scenario =
        scenario_for(MobileModel::Buhrman).workload(Workload::RandomUniform { lo: -1.0, hi: 1.0 });
    let full = scenario.batch(0..6).run().unwrap().to_experiment_result();
    let lowered = run_experiment(&scenario.to_experiment(0..6)).unwrap();
    assert_eq!(full, lowered);
}

#[test]
fn sweeps_go_through_the_same_batch_machinery() {
    let points = scenario_for(MobileModel::Buhrman)
        .sweep_n(2)
        .seeds(0..3)
        .run()
        .unwrap();
    assert_eq!(points.len(), 3);
    for point in points {
        assert_eq!(point.outcome, point.scenario.batch(0..3).run().unwrap());
        assert!(point.outcome.all_succeeded());
    }
}

#[test]
fn batches_are_identical_for_every_worker_count() {
    // The work-stealing pool must not leak scheduling into results: a
    // single worker, a few workers, and an oversubscribed pool all
    // aggregate to the same BatchOutcome.
    let scenario = scenario_for(MobileModel::Garay);
    let reference = scenario.batch(0..10).workers(1).run().unwrap();
    for width in [2usize, 4, 24] {
        assert_eq!(
            scenario.batch(0..10).workers(width).run().unwrap(),
            reference,
            "{width} workers diverged"
        );
    }
    assert_eq!(scenario.batch(0..10).run().unwrap(), reference);
}

#[test]
fn flattened_sweeps_are_identical_for_every_worker_count() {
    let sweep = || scenario_for(MobileModel::Buhrman).sweep_n(2).seeds(0..3);
    let reference = sweep().workers(1).run().unwrap();
    for width in [2usize, 16] {
        assert_eq!(
            sweep().workers(width).run().unwrap(),
            reference,
            "{width} workers diverged"
        );
    }
}

#[test]
fn streaming_summaries_match_the_eager_batch() {
    let scenario = scenario_for(MobileModel::Bonnet);
    let eager = scenario.batch(0..8).run().unwrap().to_experiment_result();
    assert_eq!(scenario.batch(0..8).stream().unwrap(), eager);
    assert_eq!(scenario.batch(0..8).workers(1).stream().unwrap(), eager);
}

#[test]
fn explicit_complete_topology_is_byte_identical_to_the_default_single_runs() {
    // The topology axis must not perturb the legacy engine: an explicit
    // Topology::Complete and the default (no `.topology(...)` call at all)
    // produce byte-identical outcomes for every model and seed.
    for model in MobileModel::ALL {
        let default_scenario = scenario_for(model);
        let explicit = default_scenario.clone().topology(Topology::Complete);
        for seed in 0..6 {
            let via_default = default_scenario.run(seed).unwrap();
            let via_explicit = explicit.run(seed).unwrap();
            assert_eq!(via_default, via_explicit, "{model} seed {seed} diverged");
            assert_eq!(
                format!("{via_default:?}").into_bytes(),
                format!("{via_explicit:?}").into_bytes(),
                "{model} seed {seed} renderings diverged"
            );
        }
    }
}

#[test]
fn explicit_complete_topology_is_identical_on_every_execution_path() {
    // run() is covered above; batch, stream, summarize, and the flattened
    // sweep must agree too, for more than one worker budget.
    let default_scenario = scenario_for(MobileModel::Garay);
    let explicit = default_scenario.clone().topology(Topology::Complete);

    let batch_default = default_scenario.batch(0..6).run().unwrap();
    let batch_explicit = explicit.batch(0..6).run().unwrap();
    for ((_, a), (_, b)) in batch_default.iter().zip(batch_explicit.iter()) {
        assert_eq!(a, b, "batch path diverged");
    }
    assert_eq!(
        batch_default.to_experiment_result().runs,
        batch_explicit.to_experiment_result().runs
    );

    for workers in [1usize, 4] {
        assert_eq!(
            default_scenario
                .batch(0..6)
                .workers(workers)
                .stream()
                .unwrap()
                .runs,
            explicit.batch(0..6).workers(workers).stream().unwrap().runs,
            "stream path diverged at {workers} workers"
        );
    }
    assert_eq!(
        default_scenario.batch(0..6).summarize().unwrap().runs,
        explicit.batch(0..6).summarize().unwrap().runs
    );

    let sweep_default = default_scenario.sweep_n(1).seeds(0..3).run().unwrap();
    let sweep_explicit = explicit.sweep_n(1).seeds(0..3).run().unwrap();
    for (a, b) in sweep_default.iter().zip(&sweep_explicit) {
        assert_eq!(a.outcome.runs, b.outcome.runs, "sweep path diverged");
    }
}
