//! Failure-injection tests: stress the protocol with the nastiest adversary
//! combinations at the exact resilience boundary and in degenerate
//! scenarios.

use mbaa::prelude::*;

fn inputs_split(n: usize) -> Vec<Value> {
    // Half the processes at 0, half at 1 — the inputs the lower-bound proofs
    // use, which maximise the room for an agreement violation.
    (0..n)
        .map(|i| Value::new(if i < n / 2 { 0.0 } else { 1.0 }))
        .collect()
}

#[test]
fn stealth_attack_cannot_break_validity_or_stall_convergence() {
    // Stealth values are inside the correct range, so they are never trimmed;
    // the protocol must still converge because in-range values cannot expand
    // the diameter.
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f);
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-3)
            .max_rounds(400)
            .adversary(
                MobilityStrategy::TargetExtremes,
                CorruptionStrategy::Stealth,
            )
            .inputs(inputs_split(n))
            .run(8)
            .unwrap();
        assert!(
            outcome.reached_agreement,
            "{model}: stealth attack stalled convergence"
        );
        assert!(
            outcome.validity_holds(),
            "{model}: stealth attack broke validity"
        );
    }
}

#[test]
fn median_pull_attack_is_tolerated_by_the_msr_family() {
    for model in MobileModel::ALL {
        let f = 1;
        let n = model.required_processes(f);
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-4)
            .max_rounds(400)
            .adversary(
                MobilityStrategy::TargetMedian,
                CorruptionStrategy::MedianPull,
            )
            .inputs(inputs_split(n))
            .run(21)
            .unwrap();
        assert!(
            outcome.reached_agreement && outcome.validity_holds(),
            "{model}"
        );
    }
}

#[test]
fn sweep_mobility_cures_every_process_eventually_without_breaking_agreement() {
    let model = MobileModel::Bonnet;
    let f = 2;
    let n = model.required_processes(f);
    let outcome = Scenario::new(model, n, f)
        .epsilon(1e-9)
        .max_rounds(3 * n)
        .adversary(MobilityStrategy::Sweep, CorruptionStrategy::split_attack())
        .inputs(inputs_split(n))
        .run(5)
        .unwrap();
    // Over 3n rounds the sweeping agents have visited every process.
    let mut ever_faulty = vec![false; n];
    for snapshot in &outcome.configurations {
        for p in snapshot.faulty_set().iter() {
            ever_faulty[p.index()] = true;
        }
    }
    if outcome.rounds_executed >= n {
        assert!(
            ever_faulty.iter().all(|&b| b),
            "sweep did not visit every process"
        );
    }
    assert!(outcome.validity_holds());
    assert!(outcome.report.is_monotonically_non_expanding());
}

#[test]
fn maximum_tolerable_agents_for_a_fixed_system_size() {
    // For n = 25 the largest tolerable f per model is floor((n-1)/c).
    let n = 25;
    for model in MobileModel::ALL {
        let max_f = (n - 1) / model.bound_multiplier();
        let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64 / n as f64)).collect();
        let outcome = Scenario::new(model, n, max_f)
            .epsilon(1e-3)
            .max_rounds(500)
            .adversary(
                MobilityStrategy::RoundRobin,
                CorruptionStrategy::split_attack(),
            )
            .inputs(inputs)
            .run(6)
            .unwrap();
        assert!(
            outcome.reached_agreement && outcome.validity_holds(),
            "{model} failed at its maximum tolerable f = {max_f}"
        );
        // One more agent must be rejected by the lowering.
        assert!(Scenario::new(model, n, max_f + 1).lower(6).is_err());
    }
}

#[test]
fn silent_agents_equal_omission_faults_and_converge_fast() {
    let model = MobileModel::Garay;
    let f = 2;
    let n = model.required_processes(f);
    let outcome = Scenario::new(model, n, f)
        .epsilon(1e-6)
        .max_rounds(100)
        .adversary(MobilityStrategy::RoundRobin, CorruptionStrategy::Silent)
        .inputs(inputs_split(n))
        .run(4)
        .unwrap();
    assert!(outcome.reached_agreement);
    // Pure omissions cannot slow the trimmed mean much: a handful of rounds.
    assert!(outcome.rounds_executed <= 10);
}

#[test]
fn single_process_system_agrees_trivially() {
    let outcome = Scenario::new(MobileModel::Buhrman, 1, 0)
        .epsilon(1e-6)
        .inputs([Value::new(0.3)])
        .run(0)
        .unwrap();
    assert!(outcome.reached_agreement);
    assert_eq!(outcome.rounds_executed, 0);
    assert_eq!(outcome.final_votes, vec![Value::new(0.3)]);
}

#[test]
fn extreme_magnitude_inputs_do_not_overflow() {
    let model = MobileModel::Buhrman;
    let f = 1;
    let n = model.required_processes(f);
    let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64 * 1e12)).collect();
    let outcome = Scenario::new(model, n, f)
        .epsilon(1.0)
        .adversary(
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::OutOfRange { magnitude: 1e100 },
        )
        .inputs(inputs)
        .run(9)
        .unwrap();
    // All arithmetic stayed finite (Value enforces it) and validity held.
    assert!(outcome.validity_holds());
    assert!(outcome.final_votes.iter().all(|v| v.get().is_finite()));
}

#[test]
fn epsilon_larger_than_initial_spread_terminates_immediately() {
    let model = MobileModel::Sasaki;
    let f = 1;
    let n = model.required_processes(f);
    let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64 / n as f64)).collect();
    let outcome = Scenario::new(model, n, f)
        .epsilon(10.0)
        .max_rounds(50)
        .adversary(
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::split_attack(),
        )
        .inputs(inputs)
        .run(3)
        .unwrap();
    assert!(outcome.reached_agreement);
    assert_eq!(outcome.rounds_executed, 0);
}
