//! Equivalence battery for the seed-batched SoA engine: every summary the
//! batched executor produces must be **bit-identical** to running the same
//! seed through the scalar `MobileEngine` — for every model, mobility
//! strategy, topology family, churn/link-fault plan, and worker count.
//!
//! The batched path is reached through `Scenario::batch(..).stream()`,
//! which routes every multi-seed chunk through `mbaa_core::BatchEngine`
//! at `Observe::Summary`; the scalar reference is `Scenario::run(seed)`
//! (full observability) folded through `RunSummary::from_outcome`. The
//! comparison therefore also pins the invariant that summaries are
//! identical across observability levels.

use mbaa::prelude::*;

/// The scalar reference: one `MobileEngine` run per seed, summarized.
fn scalar_summaries(scenario: &Scenario, seeds: &[u64]) -> Vec<RunSummary> {
    seeds
        .iter()
        .map(|&seed| RunSummary::from_outcome(seed, &scenario.run(seed).unwrap()))
        .collect()
}

/// The batched path: the streaming executor advances all seeds of each
/// chunk in lockstep on the SoA engine.
fn batched_summaries(scenario: &Scenario, seeds: &[u64]) -> Vec<RunSummary> {
    scenario.batch(seeds.iter().copied()).stream().unwrap().runs
}

#[test]
fn every_model_and_mobility_matches_scalar_bit_for_bit() {
    let seeds: Vec<u64> = (0..5).collect();
    for model in MobileModel::ALL {
        for mobility in MobilityStrategy::ALL {
            let scenario = Scenario::at_bound(model, 2)
                .epsilon(1e-6)
                .max_rounds(300)
                .mobility(mobility);
            assert_eq!(
                batched_summaries(&scenario, &seeds),
                scalar_summaries(&scenario, &seeds),
                "batched summaries diverged from scalar under {model} / {mobility:?}",
            );
        }
    }
}

#[test]
fn every_corruption_strategy_matches_scalar_bit_for_bit() {
    let seeds: Vec<u64> = (0..4).collect();
    for corruption in CorruptionStrategy::all_representative() {
        let scenario = Scenario::at_bound(MobileModel::Sasaki, 2)
            .epsilon(1e-6)
            .max_rounds(300)
            .corruption(corruption);
        assert_eq!(
            batched_summaries(&scenario, &seeds),
            scalar_summaries(&scenario, &seeds),
            "batched summaries diverged from scalar under {corruption:?}",
        );
    }
}

#[test]
fn partial_topologies_match_scalar_bit_for_bit() {
    // Partial graphs take the batch engine's general path (per-lane
    // networks, realized per seed); each family must still reproduce the
    // scalar runs exactly. Ring and random-regular satisfy Garay's
    // neighborhood bound at n = 9, f = 1; the sparse grid opts into bound
    // violation exactly like the threshold experiments do.
    let seeds: Vec<u64> = (0..5).collect();
    let base = Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-6)
        .max_rounds(300);
    for topology in [
        Topology::Ring { k: 2 },
        Topology::RandomRegular { degree: 6 },
    ] {
        let scenario = base.clone().topology(topology.clone());
        assert_eq!(
            batched_summaries(&scenario, &seeds),
            scalar_summaries(&scenario, &seeds),
            "batched summaries diverged from scalar on {topology}",
        );
    }
    let grid = base.topology(Topology::Grid).allow_bound_violation();
    assert_eq!(
        batched_summaries(&grid, &seeds),
        scalar_summaries(&grid, &seeds),
        "batched summaries diverged from scalar on the grid",
    );
}

#[test]
fn churn_and_link_faults_match_scalar_bit_for_bit() {
    let seeds: Vec<u64> = (0..5).collect();
    let base = Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-6)
        .max_rounds(300);
    // Round-indexed churn over the complete graph.
    let churning = base
        .clone()
        .topology_schedule(TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.2,
        });
    assert_eq!(
        batched_summaries(&churning, &seeds),
        scalar_summaries(&churning, &seeds),
        "batched summaries diverged from scalar under seeded churn",
    );
    // Probabilistic omissions plus a severed and a delayed link.
    let faulty_links =
        base.link_faults(LinkFaultPlan::new().omit_all(0.05).cut(0, 1).delay(2, 3, 2));
    assert_eq!(
        batched_summaries(&faulty_links, &seeds),
        scalar_summaries(&faulty_links, &seeds),
        "batched summaries diverged from scalar under link faults",
    );
}

#[test]
fn worker_counts_leave_batched_results_bit_identical() {
    let seeds: Vec<u64> = (0..9).collect();
    let scenario = Scenario::at_bound(MobileModel::Bonnet, 2)
        .epsilon(1e-6)
        .max_rounds(300)
        .mobility(MobilityStrategy::Random);
    let reference = scalar_summaries(&scenario, &seeds);
    for workers in [1usize, 2, 3, 8] {
        let batched = scenario
            .batch(seeds.iter().copied())
            .workers(workers)
            .stream()
            .unwrap()
            .runs;
        assert_eq!(
            batched, reference,
            "{workers} workers diverged from the scalar reference",
        );
    }
}

#[test]
fn ragged_batches_match_scalar_per_seed() {
    // 33 seeds: one full 32-lane chunk plus a ragged single-lane tail, and
    // a Random adversary so lanes within a chunk finish after different
    // round counts — the lockstep loop must retire each lane independently.
    let seeds: Vec<u64> = (0..33).collect();
    let scenario = Scenario::at_bound(MobileModel::Garay, 2)
        .epsilon(1e-6)
        .max_rounds(300)
        .mobility(MobilityStrategy::Random);
    let batched = batched_summaries(&scenario, &seeds);
    assert_eq!(batched, scalar_summaries(&scenario, &seeds));
    // The raggedness is genuine: the seeds really do converge after
    // different numbers of rounds.
    let rounds: Vec<usize> = batched.iter().map(|run| run.rounds).collect();
    assert!(
        rounds.iter().any(|&r| r != rounds[0]),
        "expected uneven per-seed round counts, got {rounds:?}",
    );
}

#[test]
fn a_single_seed_batch_degenerates_to_the_scalar_engine() {
    let scenario = Scenario::at_bound(MobileModel::Buhrman, 2).epsilon(1e-6);
    let seeds = [7u64];
    assert_eq!(
        batched_summaries(&scenario, &seeds),
        scalar_summaries(&scenario, &seeds),
    );
}

/// The general-path point variants packed sweeps mix: a partial static
/// graph, seeded churn, and probabilistic link faults with a delayed link,
/// all sharing one batch shape (n = 9, f = 1, Garay).
fn general_path_points() -> Vec<Scenario> {
    let base = Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-6)
        .max_rounds(300);
    vec![
        base.clone().topology(Topology::Ring { k: 2 }),
        base.clone()
            .topology_schedule(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.2,
            }),
        base.link_faults(LinkFaultPlan::new().omit_all(0.05).cut(0, 1).delay(2, 3, 2)),
    ]
}

#[test]
fn packed_cross_point_sweeps_match_scalar_bit_for_bit() {
    // Three shape-compatible general-path points × four seeds: the sweep
    // packs lanes of *different* points (different topology, schedule, and
    // link-fault plans) into shared engine launches, and every point must
    // still reproduce its own scalar runs exactly.
    let seeds: Vec<u64> = (0..4).collect();
    let points = general_path_points();
    let streamed = Sweep::over(points.clone())
        .seeds(seeds.iter().copied())
        .stream()
        .unwrap();
    for (scenario, summary) in points.iter().zip(&streamed) {
        assert_eq!(
            summary.result.runs,
            scalar_summaries(scenario, &seeds),
            "packed sweep diverged from scalar at point {scenario:?}",
        );
    }
}

#[test]
fn ragged_cross_point_packs_match_scalar_per_segment() {
    // Segments of uneven length (1, 7, and 3 seeds) force ragged pack
    // boundaries: the first pack mixes all three points and no segment
    // alone fills a batch. Each segment still equals its scalar runs.
    let points = general_path_points();
    let segments: Vec<(Scenario, Vec<u64>)> = vec![
        (points[0].clone(), vec![11]),
        (points[1].clone(), (0..7).collect()),
        (points[2].clone(), vec![2, 5, 9]),
    ];
    let results = stream_segments(&segments, None);
    for ((scenario, seeds), result) in segments.iter().zip(results) {
        assert_eq!(
            result.unwrap().runs,
            scalar_summaries(scenario, seeds),
            "ragged packed segment diverged from scalar at {scenario:?}",
        );
    }
}

#[test]
fn worker_counts_leave_packed_sweeps_bit_identical() {
    let seeds: Vec<u64> = (0..4).collect();
    let points = general_path_points();
    let reference: Vec<Vec<RunSummary>> = points
        .iter()
        .map(|scenario| scalar_summaries(scenario, &seeds))
        .collect();
    for workers in [1usize, 2, 3, 8] {
        let streamed = Sweep::over(points.clone())
            .seeds(seeds.iter().copied())
            .workers(workers)
            .stream()
            .unwrap();
        let runs: Vec<Vec<RunSummary>> = streamed.into_iter().map(|s| s.result.runs).collect();
        assert_eq!(
            runs, reference,
            "{workers} workers diverged from the scalar reference on a packed sweep",
        );
    }
}
