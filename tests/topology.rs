//! Integration tests of the topology axis: degenerate graphs are rejected
//! with typed errors, normalizations behave, and partial-connectivity runs
//! stay deterministic end to end.

use mbaa::prelude::*;

fn inputs(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new(i as f64 / n as f64)).collect()
}

#[test]
fn disconnected_topologies_are_rejected_with_a_typed_error() {
    // Two islands of two: connected within, no path across.
    let islands = Adjacency::from_edges(4, [(0, 1), (2, 3)]).unwrap();
    let err = Scenario::new(MobileModel::Buhrman, 4, 1)
        .topology(Topology::Custom(islands))
        .run(0)
        .unwrap_err();
    assert!(matches!(
        err,
        Error::DisconnectedTopology {
            n: 4,
            components: 2
        }
    ));

    // Bound-violation opt-in does not waive connectivity: agreement across
    // components is meaningless.
    let err = Scenario::new(MobileModel::Buhrman, 4, 1)
        .topology(Topology::Ring { k: 0 })
        .allow_bound_violation()
        .run(0)
        .unwrap_err();
    assert!(matches!(err, Error::DisconnectedTopology { n: 4, .. }));
}

#[test]
fn insufficient_neighborhoods_are_rejected_with_a_typed_error() {
    // Garay with f = 1 needs every process to hear n_M1 = 5 processes per
    // round; a width-1 ring offers 3.
    let scenario = Scenario::new(MobileModel::Garay, 9, 1).topology(Topology::Ring { k: 1 });
    let err = scenario.run(0).unwrap_err();
    assert!(matches!(
        err,
        Error::InsufficientConnectivity {
            model: MobileModel::Garay,
            f: 1,
            min_neighborhood: 3,
            required: 5,
        }
    ));
    // The threshold experiments opt in exactly like the global bound.
    assert!(scenario.allow_bound_violation().run(0).is_ok());
}

#[test]
fn single_process_universe_works_under_every_family() {
    for topology in [
        Topology::Complete,
        Topology::Ring { k: 5 },
        Topology::Grid,
        Topology::RandomRegular { degree: 0 },
    ] {
        let outcome = Scenario::new(MobileModel::Buhrman, 1, 0)
            .topology(topology.clone())
            .run(3)
            .unwrap();
        assert!(outcome.reached_agreement, "{topology} failed at n = 1");
        assert_eq!(outcome.rounds_executed, 0);
    }
}

#[test]
fn over_wide_rings_normalize_to_complete_bit_identically() {
    // k >= n wraps the lattice onto the all-to-all graph; the engine must
    // lower it onto the same unmasked fast path as Topology::Complete.
    let base = Scenario::at_bound(MobileModel::Garay, 2).epsilon(1e-4);
    for seed in 0..5 {
        let complete = base.clone().topology(Topology::Complete).run(seed).unwrap();
        for k in [4, 9, 64] {
            let ringed = base
                .clone()
                .topology(Topology::Ring { k })
                .run(seed)
                .unwrap();
            assert_eq!(ringed, complete, "ring k={k} seed {seed} diverged");
            assert_eq!(
                format!("{ringed:?}").into_bytes(),
                format!("{complete:?}").into_bytes(),
                "ring k={k} seed {seed} renderings diverged"
            );
        }
    }
}

#[test]
fn partial_runs_are_deterministic_across_paths_and_worker_counts() {
    let scenario = Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-3)
        .topology(Topology::Ring { k: 2 });
    let reference = scenario.batch(0..6).workers(1).run().unwrap();
    for width in [2usize, 8] {
        assert_eq!(
            scenario.batch(0..6).workers(width).run().unwrap(),
            reference,
            "{width} workers diverged on a partial topology"
        );
    }
    assert_eq!(
        scenario.batch(0..6).stream().unwrap(),
        reference.to_experiment_result()
    );
    for (seed, outcome) in reference.iter() {
        assert_eq!(outcome, &scenario.run(seed).unwrap());
    }
}

#[test]
fn random_regular_graphs_are_seed_deterministic_in_runs() {
    let scenario =
        Scenario::new(MobileModel::Garay, 9, 1).topology(Topology::RandomRegular { degree: 6 });
    let a = scenario.run(11).unwrap();
    let b = scenario.run(11).unwrap();
    assert_eq!(a, b);
    // Different seeds draw different graphs *and* different adversaries;
    // the run is still well-formed.
    let c = scenario.run(12).unwrap();
    assert_eq!(c.final_votes.len(), 9);
}

#[test]
fn sweep_connectivity_matches_standalone_batches() {
    // The flattened sweep over the connectivity axis must regroup to the
    // same outcomes as each topology evaluated on its own.
    let base = Scenario::new(MobileModel::Garay, 9, 1).epsilon(1e-3);
    let topologies = [
        Topology::Ring { k: 2 },
        Topology::Ring { k: 3 },
        Topology::Complete,
    ];
    let points = base
        .sweep_connectivity(topologies.iter().cloned())
        .seeds(0..3)
        .run()
        .unwrap();
    assert_eq!(points.len(), 3);
    for (point, topology) in points.iter().zip(&topologies) {
        assert_eq!(&point.scenario.topology, topology);
        assert_eq!(
            point.outcome,
            point.scenario.batch(0..3).run().unwrap(),
            "{topology} diverged from its standalone batch"
        );
    }
}

#[test]
fn masked_engine_runs_agree_with_the_hand_lowered_protocol_path() {
    // The Scenario lowering and the hand-driven ProtocolConfig path must
    // agree on partial topologies exactly as they do on complete ones. A
    // 3x3 grid's corner neighbourhoods (3) sit below Garay's requirement
    // (5), so both paths opt into the bound violation.
    let scenario = Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-3)
        .topology(Topology::Grid)
        .allow_bound_violation();
    let via_scenario = scenario.run(7).unwrap();
    let config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
        .epsilon(1e-3)
        .max_rounds(scenario.max_rounds)
        .mobility(scenario.mobility)
        .corruption(scenario.corruption)
        .topology(Topology::Grid)
        .allow_bound_violation()
        .seed(7)
        .build()
        .unwrap();
    let via_protocol = MobileEngine::new(config)
        .run(&scenario.initial_values(7))
        .unwrap();
    assert_eq!(via_scenario, via_protocol);
}

#[test]
fn dense_partial_topologies_still_converge_above_the_bound() {
    // A near-complete graph (one missing link) keeps every closed
    // neighbourhood >= n_Mi; the MSR instance still contracts under the
    // mobile adversary.
    let mut matrix = vec![vec![true; 9]; 9];
    matrix[0][8] = false;
    matrix[8][0] = false;
    let adjacency = Adjacency::from_matrix(matrix).unwrap();
    assert_eq!(adjacency.min_closed_neighborhood(), 8);
    let scenario = Scenario::new(MobileModel::Buhrman, 9, 1)
        .epsilon(1e-3)
        .topology(Topology::Custom(adjacency));
    let outcome = scenario.run(0).unwrap();
    assert!(outcome.reached_agreement);
    assert!(outcome.validity_holds());
}

#[test]
fn engine_rejects_degenerate_topologies_when_config_bypasses_the_builder() {
    // ProtocolConfig fields are public: a hand-rolled config can smuggle an
    // unrealizable topology past the builder. The engine surfaces the same
    // typed error instead of panicking.
    let mut config = ProtocolConfig::builder(MobileModel::Garay, 9, 1)
        .build()
        .unwrap();
    config.topology = Topology::RandomRegular { degree: 9 };
    let err = MobileEngine::new(config).run(&inputs(9)).unwrap_err();
    assert!(matches!(err, Error::InvalidParameter(_)));
}
