//! End-to-end integration tests: the MSR family reaches Byzantine
//! Approximate Agreement under every mobile Byzantine model whenever the
//! replica bound of Table 2 holds (Theorem 2). All runs are described
//! through the `Scenario` entry point.

use mbaa::prelude::*;

fn spread_inputs(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new(i as f64 / n as f64)).collect()
}

#[test]
fn every_model_satisfies_the_specification_at_its_bound() {
    for model in MobileModel::ALL {
        for f in 1..=2 {
            let n = model.required_processes(f);
            let outcome = Scenario::new(model, n, f)
                .epsilon(1e-4)
                .max_rounds(500)
                .adversary(
                    MobilityStrategy::RoundRobin,
                    CorruptionStrategy::split_attack(),
                )
                .inputs(spread_inputs(n))
                .run(7)
                .unwrap();
            assert!(outcome.reached_agreement, "{model} f={f}: no agreement");
            assert!(
                outcome.epsilon_agreement_holds(),
                "{model} f={f}: diameter too large"
            );
            assert!(outcome.validity_holds(), "{model} f={f}: validity violated");
        }
    }
}

#[test]
fn agreement_holds_well_above_the_bound_with_extra_processes() {
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f) + 7;
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-5)
            .max_rounds(500)
            .adversary(
                MobilityStrategy::Random,
                CorruptionStrategy::OutOfRange { magnitude: 1e6 },
            )
            .inputs(spread_inputs(n))
            .run(13)
            .unwrap();
        assert!(
            outcome.reached_agreement && outcome.validity_holds(),
            "{model}"
        );
    }
}

#[test]
fn termination_all_non_faulty_processes_decide_the_same_epsilon_ball() {
    let model = MobileModel::Bonnet;
    let f = 2;
    let n = model.required_processes(f);
    let outcome = Scenario::new(model, n, f)
        .epsilon(1e-3)
        .max_rounds(400)
        .adversary(
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::split_attack(),
        )
        .inputs(spread_inputs(n))
        .run(99)
        .unwrap();
    let values = outcome.final_non_faulty_values();
    // At least n - f processes are non-faulty in the last round.
    assert!(values.len() >= n - f);
    for a in values.iter() {
        for b in values.iter() {
            assert!(a.distance(b) <= 1e-3);
        }
    }
}

#[test]
fn runs_are_deterministic_given_seed_and_inputs() {
    let scenario = Scenario::new(MobileModel::Sasaki, 13, 2)
        .epsilon(1e-4)
        .max_rounds(300)
        .adversary(
            MobilityStrategy::Random,
            CorruptionStrategy::RandomNoise {
                lo: -10.0,
                hi: 10.0,
            },
        )
        .inputs(spread_inputs(13));
    let a = scenario.run(31).unwrap();
    let b = scenario.run(31).unwrap();
    assert_eq!(a, b);
}

#[test]
fn scenario_runs_are_bit_identical_to_the_lowered_protocol_path() {
    let scenario = Scenario::new(MobileModel::Garay, 9, 2)
        .epsilon(1e-4)
        .max_rounds(500)
        .inputs(spread_inputs(9));
    let via_scenario = scenario.run(7).unwrap();
    let config = scenario.lower(7).unwrap();
    let via_protocol = MobileEngine::new(config).run(&spread_inputs(9)).unwrap();
    assert_eq!(via_scenario, via_protocol);
}

#[test]
fn different_msr_instances_all_satisfy_the_specification() {
    let model = MobileModel::Garay;
    let f = 1;
    let n = model.required_processes(f) + 2;
    let tau = model.mixed_fault_counts(f).reduction_tau();
    for function in [
        MsrFunction::dolev_mean(tau),
        MsrFunction::fault_tolerant_midpoint(tau),
        MsrFunction::reduced_median(tau),
    ] {
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-4)
            .max_rounds(500)
            .adversary(
                MobilityStrategy::RoundRobin,
                CorruptionStrategy::split_attack(),
            )
            .function(function)
            .inputs(spread_inputs(n))
            .run(5)
            .unwrap();
        assert!(
            outcome.reached_agreement && outcome.validity_holds(),
            "instance {function} failed"
        );
    }
}

#[test]
fn parallel_batches_aggregate_successful_runs() {
    let scenario = Scenario::new(MobileModel::Buhrman, 10, 3)
        .workload(Workload::RandomUniform { lo: -5.0, hi: 5.0 });
    let batch = scenario.batch(0..8).run().unwrap();
    assert_eq!(batch.len(), 8);
    assert!(batch.all_succeeded());
    assert!(batch.mean_rounds().unwrap() >= 1.0);
    // The summary-only lowered path agrees with the full outcomes.
    let summary = scenario.batch(0..8).summarize().unwrap();
    assert_eq!(batch.to_experiment_result(), summary);
}

#[test]
fn cured_set_never_exceeds_f_in_any_round() {
    // Corollary 1 of the paper.
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f);
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-9)
            .max_rounds(50)
            .adversary(MobilityStrategy::Random, CorruptionStrategy::split_attack())
            .inputs(spread_inputs(n))
            .run(17)
            .unwrap();
        for snapshot in &outcome.configurations {
            assert!(snapshot.cured_set().len() <= f, "{model}");
            assert_eq!(snapshot.faulty_set().len(), f, "{model}");
        }
    }
}

#[test]
fn validity_envelope_is_the_range_of_non_faulty_inputs() {
    let n = 9;
    let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64)).collect();
    let outcome = Scenario::new(MobileModel::Garay, n, 2)
        .epsilon(1e-4)
        .adversary(
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::split_attack(),
        )
        .inputs(inputs)
        .run(1)
        .unwrap();
    // The envelope is contained in the full input range and is non-trivial.
    assert!(outcome.validity_envelope.lo() >= Value::new(0.0));
    assert!(outcome.validity_envelope.hi() <= Value::new((n - 1) as f64));
    assert!(outcome.validity_envelope.diameter() > 0.0);
}
