//! End-to-end integration tests: the MSR family reaches Byzantine
//! Approximate Agreement under every mobile Byzantine model whenever the
//! replica bound of Table 2 holds (Theorem 2).

use mbaa::{
    CorruptionStrategy, ExperimentConfig, MobileEngine, MobileModel, MobilityStrategy,
    MsrFunction, ProtocolConfig, Value, Workload,
};

fn spread_inputs(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::new(i as f64 / n as f64)).collect()
}

#[test]
fn every_model_satisfies_the_specification_at_its_bound() {
    for model in MobileModel::ALL {
        for f in 1..=2 {
            let n = model.required_processes(f);
            let config = ProtocolConfig::builder(model, n, f)
                .epsilon(1e-4)
                .max_rounds(500)
                .seed(7)
                .build()
                .unwrap();
            let outcome = MobileEngine::new(config).run(&spread_inputs(n)).unwrap();
            assert!(outcome.reached_agreement, "{model} f={f}: no agreement");
            assert!(outcome.epsilon_agreement_holds(), "{model} f={f}: diameter too large");
            assert!(outcome.validity_holds(), "{model} f={f}: validity violated");
        }
    }
}

#[test]
fn agreement_holds_well_above_the_bound_with_extra_processes() {
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f) + 7;
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-5)
            .max_rounds(500)
            .mobility(MobilityStrategy::Random)
            .corruption(CorruptionStrategy::OutOfRange { magnitude: 1e6 })
            .seed(13)
            .build()
            .unwrap();
        let outcome = MobileEngine::new(config).run(&spread_inputs(n)).unwrap();
        assert!(outcome.reached_agreement && outcome.validity_holds(), "{model}");
    }
}

#[test]
fn termination_all_non_faulty_processes_decide_the_same_epsilon_ball() {
    let model = MobileModel::Bonnet;
    let f = 2;
    let n = model.required_processes(f);
    let config = ProtocolConfig::builder(model, n, f)
        .epsilon(1e-3)
        .max_rounds(400)
        .seed(99)
        .build()
        .unwrap();
    let outcome = MobileEngine::new(config).run(&spread_inputs(n)).unwrap();
    let values = outcome.final_non_faulty_values();
    // At least n - f processes are non-faulty in the last round.
    assert!(values.len() >= n - f);
    for a in values.iter() {
        for b in values.iter() {
            assert!(a.distance(b) <= 1e-3);
        }
    }
}

#[test]
fn runs_are_deterministic_given_seed_and_inputs() {
    let config = || {
        ProtocolConfig::builder(MobileModel::Sasaki, 13, 2)
            .epsilon(1e-4)
            .max_rounds(300)
            .mobility(MobilityStrategy::Random)
            .corruption(CorruptionStrategy::RandomNoise { lo: -10.0, hi: 10.0 })
            .seed(31)
            .build()
            .unwrap()
    };
    let a = MobileEngine::new(config()).run(&spread_inputs(13)).unwrap();
    let b = MobileEngine::new(config()).run(&spread_inputs(13)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_msr_instances_all_satisfy_the_specification() {
    let model = MobileModel::Garay;
    let f = 1;
    let n = model.required_processes(f) + 2;
    let tau = model.mixed_fault_counts(f).reduction_tau();
    for function in [
        MsrFunction::dolev_mean(tau),
        MsrFunction::fault_tolerant_midpoint(tau),
        MsrFunction::reduced_median(tau),
    ] {
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-4)
            .max_rounds(500)
            .function(function)
            .seed(5)
            .build()
            .unwrap();
        let outcome = MobileEngine::new(config).run(&spread_inputs(n)).unwrap();
        assert!(
            outcome.reached_agreement && outcome.validity_holds(),
            "instance {function} failed"
        );
    }
}

#[test]
fn experiment_harness_aggregates_successful_batches() {
    let config = ExperimentConfig::new(MobileModel::Buhrman, 10, 3)
        .with_seeds(0..8)
        .with_workload(Workload::RandomUniform { lo: -5.0, hi: 5.0 })
        .with_epsilon(1e-3);
    let result = mbaa::run_experiment(&config).unwrap();
    assert_eq!(result.runs.len(), 8);
    assert!(result.all_succeeded());
    assert!(result.mean_rounds().unwrap() >= 1.0);
}

#[test]
fn cured_set_never_exceeds_f_in_any_round() {
    // Corollary 1 of the paper.
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f);
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-9)
            .max_rounds(50)
            .mobility(MobilityStrategy::Random)
            .seed(17)
            .build()
            .unwrap();
        let outcome = MobileEngine::new(config).run(&spread_inputs(n)).unwrap();
        for configuration in &outcome.configurations {
            assert!(configuration.cured_set().len() <= f, "{model}");
            assert_eq!(configuration.faulty_set().len(), f, "{model}");
        }
    }
}

#[test]
fn validity_envelope_is_the_range_of_non_faulty_inputs() {
    let n = 9;
    let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64)).collect();
    let config = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-4)
        .seed(1)
        .build()
        .unwrap();
    let outcome = MobileEngine::new(config).run(&inputs).unwrap();
    // The envelope is contained in the full input range and is non-trivial.
    assert!(outcome.validity_envelope.lo() >= Value::new(0.0));
    assert!(outcome.validity_envelope.hi() <= Value::new((n - 1) as f64));
    assert!(outcome.validity_envelope.diameter() > 0.0);
}
