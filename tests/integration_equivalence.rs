//! Integration tests for the mobile-vs-static equivalence (Theorem 1): a
//! mobile computation behaves like a static mixed-mode computation with the
//! mapped fault counts, and both converge under the same parameters.

use mbaa::mixed::{FaultAssignment, StaticBehavior, StaticSimulator};
use mbaa::prelude::*;

#[test]
fn static_mixed_mode_baseline_converges_with_mapped_counts() {
    for model in MobileModel::ALL {
        let f = 2;
        let counts = model.mixed_fault_counts(f);
        let n = model.required_processes(f);
        let assignment = FaultAssignment::with_first_processes_faulty(n, counts).unwrap();
        let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64 / n as f64)).collect();
        let outcome = StaticSimulator::new(assignment.clone(), StaticBehavior::spread_attack(), 3)
            .run(
                &MsrFunction::for_fault_counts(counts),
                &inputs,
                Epsilon::new(1e-4),
                400,
            )
            .unwrap();
        assert!(
            outcome.reached_agreement,
            "{model} static image did not converge"
        );
        assert!(
            outcome.validity_holds(&assignment),
            "{model} static image violated validity"
        );
    }
}

#[test]
fn mobile_and_static_computations_both_converge_for_every_model() {
    for model in MobileModel::ALL {
        let f = 2;
        let n = model.required_processes(f) + 1;
        let scenario = Scenario::new(model, n, f).max_rounds(400);
        let points = mobile_vs_static(&scenario, 0..5).unwrap();
        assert_eq!(points.len(), 5);
        for point in points {
            assert!(point.both_converged, "{model} seed {}", point.seed);
            assert!(point.mobile_rounds() > 0);
            assert!(point.static_rounds() > 0);
        }
    }
}

#[test]
fn mobile_trajectories_contract_like_static_ones() {
    // The per-round diameters of the mobile run must be monotonically
    // non-expanding, exactly as in the static case (the single-step
    // convergence property transported by Theorem 1).
    let model = MobileModel::Bonnet;
    let f = 2;
    let n = model.required_processes(f) + 2;
    let scenario = Scenario::new(model, n, f).epsilon(1e-4).max_rounds(400);
    let points = mobile_vs_static(&scenario, 0..6).unwrap();
    for point in points {
        for pair in point.mobile_diameters.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-12,
                "mobile diameter expanded: {pair:?}"
            );
        }
        for pair in point.static_diameters.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-12,
                "static diameter expanded: {pair:?}"
            );
        }
    }
}
