//! Integration tests for the paper's bounds: the Table 2 requirements, the
//! Table 1 mapping, and the Theorems 3–6 lower-bound constructions.

use mbaa::core::bounds::{empirical_threshold, table2, ThresholdSearch};
use mbaa::core::lower_bounds::{all_scenarios, LowerBoundScenario};
use mbaa::core::mapping::{classify_execution, theoretical_table};
use mbaa::prelude::*;

#[test]
fn table2_rows_match_the_paper_for_all_models() {
    let rows = table2(&[1, 2, 3, 4]);
    for row in rows {
        let expected_multiplier = match row.model {
            MobileModel::Garay => 4,
            MobileModel::Bonnet => 5,
            MobileModel::Sasaki => 6,
            MobileModel::Buhrman => 3,
        };
        assert_eq!(row.bound, expected_multiplier * row.f);
        assert_eq!(row.required, expected_multiplier * row.f + 1);
    }
}

#[test]
fn scenarios_below_the_bound_are_rejected_without_opt_in() {
    for model in MobileModel::ALL {
        for f in 1..=3 {
            let just_below = model.required_processes(f) - 1;
            let scenario = Scenario::new(model, just_below, f);
            assert!(!scenario.satisfies_bound());
            assert!(
                scenario.lower(0).is_err(),
                "{model} f={f} accepted n={just_below}"
            );
            assert!(
                scenario.allow_bound_violation().lower(0).is_ok(),
                "{model} f={f} rejected the explicit opt-in"
            );
        }
    }
}

#[test]
fn empirical_thresholds_never_exceed_the_theoretical_requirement() {
    for model in MobileModel::ALL {
        let search = ThresholdSearch {
            seeds: (0..4).collect(),
            epsilon: 1e-3,
            max_rounds: 250,
            ..ThresholdSearch::worst_case(model, 1)
        };
        let result = empirical_threshold(&search, 1).unwrap();
        assert!(
            result.theoretical_is_sufficient(),
            "{model}: empirical {} > theoretical {}",
            result.empirical,
            result.theoretical
        );
    }
}

#[test]
fn theoretical_mapping_is_consistent_with_model_bounds() {
    // Substituting Table 1 into n > 3a + 2s + b must reproduce Table 2.
    for row in theoretical_table() {
        for f in 1..=4 {
            let counts = row.model.mixed_fault_counts(f);
            assert_eq!(counts.min_processes(), row.model.required_processes(f));
        }
    }
}

#[test]
fn observed_behaviour_matches_table1_for_every_model_and_seed() {
    for model in MobileModel::ALL {
        for seed in [1_u64, 2, 3] {
            let f = 2;
            let n = model.required_processes(f);
            let outcome = Scenario::new(model, n, f)
                .epsilon(1e-12)
                .max_rounds(30)
                .adversary(
                    MobilityStrategy::RoundRobin,
                    CorruptionStrategy::split_attack(),
                )
                .workload(Workload::UniformSpread {
                    lo: 0.0,
                    hi: (n - 1) as f64,
                })
                .run(seed)
                .unwrap();
            let mapping = classify_execution(model, &outcome);
            assert!(mapping.matches_theory(), "{model} seed {seed}: {mapping:?}");
        }
    }
}

#[test]
fn lower_bound_scenarios_are_indistinguishable_for_f_up_to_four() {
    for f in 1..=4 {
        for scenario in all_scenarios(f) {
            assert!(scenario.is_indistinguishable(), "{scenario}");
            assert_eq!(scenario.n, scenario.model.impossibility_threshold(f));
        }
    }
}

#[test]
fn no_voting_rule_escapes_the_impossibility_at_the_bound() {
    let rules: Vec<Box<dyn VotingFunction>> = vec![
        Box::new(MsrFunction::dolev_mean(0)),
        Box::new(MsrFunction::dolev_mean(1)),
        Box::new(MsrFunction::dolev_mean(3)),
        Box::new(MsrFunction::fault_tolerant_midpoint(2)),
        Box::new(MsrFunction::reduced_median(2)),
        Box::new(MedianVoting::new()),
    ];
    for f in 1..=3 {
        for scenario in all_scenarios(f) {
            for rule in &rules {
                assert!(
                    scenario.evaluate(rule.as_ref()).violates_specification(),
                    "{} escaped {scenario}",
                    rule.name()
                );
            }
        }
    }
}

#[test]
fn one_extra_process_makes_the_garay_scenario_solvable() {
    // Contrast with the impossibility: at n = 4f + 1 the engine converges
    // against the same adversarial pressure.
    let f = 1;
    let witness = LowerBoundScenario::for_model(MobileModel::Garay, f);
    assert_eq!(witness.n, 4);

    let n = witness.n + 1;
    let inputs: Vec<Value> = (0..n)
        .map(|i| Value::new(if i % 2 == 0 { 0.0 } else { 1.0 }))
        .collect();
    let outcome = Scenario::new(MobileModel::Garay, n, f)
        .epsilon(1e-4)
        .adversary(
            MobilityStrategy::TargetExtremes,
            CorruptionStrategy::split_attack(),
        )
        .inputs(inputs)
        .run(2)
        .unwrap();
    assert!(outcome.reached_agreement);
    assert!(outcome.validity_holds());
}
