//! Property-based tests of the full protocol: for every mobile Byzantine
//! model, random adversary strategies, seeds, and inputs, the run above the
//! replica bound always preserves validity and never expands the diameter,
//! and (with a generous round budget) reaches ε-agreement.

use mbaa::{
    CorruptionStrategy, MobileEngine, MobileModel, MobilityStrategy, ProtocolConfig, Value,
};
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = MobileModel> {
    prop::sample::select(MobileModel::ALL.to_vec())
}

fn mobility_strategy() -> impl Strategy<Value = MobilityStrategy> {
    prop::sample::select(MobilityStrategy::ALL.to_vec())
}

fn corruption_strategy() -> impl Strategy<Value = CorruptionStrategy> {
    prop::sample::select(CorruptionStrategy::all_representative())
}

proptest! {
    // Full protocol runs are comparatively expensive; keep the case count
    // moderate so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Above the bound, every adversary combination preserves validity and
    /// the per-round diameter of non-faulty values never grows.
    #[test]
    fn validity_and_contraction_hold_above_the_bound(
        model in model_strategy(),
        f in 1usize..=2,
        extra in 0usize..=3,
        mobility in mobility_strategy(),
        corruption in corruption_strategy(),
        seed in 0u64..1_000,
        inputs_seed in 0u64..1_000,
    ) {
        let n = model.required_processes(f) + extra;
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-3)
            .max_rounds(250)
            .mobility(mobility)
            .corruption(corruption)
            .seed(seed)
            .build()
            .unwrap();

        // Pseudo-random but deterministic inputs derived from inputs_seed.
        let inputs: Vec<Value> = (0..n)
            .map(|i| {
                let x = ((i as u64 + 1) * (inputs_seed + 1)) % 1_000;
                Value::new(x as f64 / 1_000.0)
            })
            .collect();

        let outcome = MobileEngine::new(config).run(&inputs).unwrap();

        prop_assert!(outcome.validity_holds(), "{model} validity violated");
        prop_assert!(
            outcome.report.is_monotonically_non_expanding(),
            "{model} diameter expanded: {:?}",
            outcome.report.diameters()
        );
        prop_assert!(
            outcome.reached_agreement,
            "{model} n={n} f={f} {mobility}/{corruption} did not converge in 250 rounds \
             (final diameter {})",
            outcome.final_diameter()
        );
    }

    /// The number of faulty processes per round never exceeds f and the
    /// cured set never exceeds f (Corollary 1), whatever the adversary does.
    #[test]
    fn per_round_fault_cardinalities_are_bounded(
        model in model_strategy(),
        f in 1usize..=3,
        mobility in mobility_strategy(),
        seed in 0u64..1_000,
    ) {
        let n = model.required_processes(f);
        let config = ProtocolConfig::builder(model, n, f)
            .epsilon(1e-9)
            .max_rounds(30)
            .mobility(mobility)
            .seed(seed)
            .build()
            .unwrap();
        let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64)).collect();
        let outcome = MobileEngine::new(config).run(&inputs).unwrap();
        for configuration in &outcome.configurations {
            prop_assert_eq!(configuration.faulty_set().len(), f);
            prop_assert!(configuration.cured_set().len() <= f);
            // Faulty and cured sets are disjoint.
            prop_assert!(configuration.faulty_set().is_disjoint(&configuration.cured_set()));
        }
    }
}
