//! Property-style tests of the full protocol: for every mobile Byzantine
//! model, random adversary strategies, seeds, and inputs, the run above the
//! replica bound always preserves validity and never expands the diameter,
//! and (with a generous round budget) reaches ε-agreement. Cases are drawn
//! from a seeded generator (the offline stand-in for the original proptest
//! strategies — same properties, deterministic sampling), and every run
//! goes through the `Scenario` entry point.

use mbaa::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pick<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.random_range(0..options.len())]
}

fn pick_corruption(rng: &mut StdRng) -> CorruptionStrategy {
    let all = CorruptionStrategy::all_representative();
    all[rng.random_range(0..all.len())]
}

/// Pseudo-random but deterministic inputs derived from `inputs_seed`.
fn derived_inputs(n: usize, inputs_seed: u64) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let x = ((i as u64 + 1) * (inputs_seed + 1)) % 1_000;
            Value::new(x as f64 / 1_000.0)
        })
        .collect()
}

/// Above the bound, every adversary combination preserves validity and the
/// per-round diameter of non-faulty values never grows.
#[test]
fn validity_and_contraction_hold_above_the_bound() {
    // Full protocol runs are comparatively expensive; keep the case count
    // moderate so the suite stays fast.
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..24 {
        let model = pick(&mut rng, &MobileModel::ALL);
        let f = rng.random_range(1usize..=2);
        let extra = rng.random_range(0usize..=3);
        let mobility = pick(&mut rng, &MobilityStrategy::ALL);
        let corruption = pick_corruption(&mut rng);
        let seed = rng.random_range(0u64..1_000);
        let inputs_seed = rng.random_range(0u64..1_000);

        let n = model.required_processes(f) + extra;
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-3)
            .max_rounds(250)
            .adversary(mobility, corruption)
            .inputs(derived_inputs(n, inputs_seed))
            .run(seed)
            .unwrap();

        assert!(outcome.validity_holds(), "{model} validity violated");
        assert!(
            outcome.report.is_monotonically_non_expanding(),
            "{model} diameter expanded: {:?}",
            outcome.report.diameters()
        );
        assert!(
            outcome.reached_agreement,
            "{model} n={n} f={f} {mobility}/{corruption} did not converge in 250 rounds \
             (final diameter {})",
            outcome.final_diameter()
        );
    }
}

/// The number of faulty processes per round never exceeds f and the cured
/// set never exceeds f (Corollary 1), whatever the adversary does.
#[test]
fn per_round_fault_cardinalities_are_bounded() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..24 {
        let model = pick(&mut rng, &MobileModel::ALL);
        let f = rng.random_range(1usize..=3);
        let mobility = pick(&mut rng, &MobilityStrategy::ALL);
        let seed = rng.random_range(0u64..1_000);

        let n = model.required_processes(f);
        let inputs: Vec<Value> = (0..n).map(|i| Value::new(i as f64)).collect();
        let outcome = Scenario::new(model, n, f)
            .epsilon(1e-9)
            .max_rounds(30)
            .adversary(mobility, CorruptionStrategy::split_attack())
            .inputs(inputs)
            .run(seed)
            .unwrap();
        for snapshot in &outcome.configurations {
            assert_eq!(snapshot.faulty_set().len(), f);
            assert!(snapshot.cured_set().len() <= f);
            // Faulty and cured sets are disjoint.
            assert!(snapshot.faulty_set().is_disjoint(&snapshot.cured_set()));
        }
    }
}
