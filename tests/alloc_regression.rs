//! Allocation-regression test: steady-state engine rounds must perform
//! **zero heap allocations** under `Observe::Summary` on the complete
//! topology.
//!
//! A counting global allocator wraps the system allocator. Two runs of the
//! same configuration differ only in their round budget (both run to the
//! budget without converging), so the difference in allocation counts is
//! exactly what the extra steady-state rounds allocated — which must be
//! nothing. This pins the round-scratch design: outbox/delivery/multiset/
//! fault-plan buffers are allocated once per run and reused in place.
//!
//! This is a separate integration-test binary on purpose: a global
//! allocator is per-binary state, and the test must not race with parallel
//! test threads (it is the only test in this file).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mbaa::{
    BatchEngine, BatchLane, CorruptionStrategy, MetricsRegistry, MobileEngine, MobileModel,
    MobilityStrategy, Observe, Observer, ProtocolConfig, Topology, TopologySchedule, Value,
};

/// Counts every allocation (not bytes — the assertion is about *count*)
/// made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the only addition is a
// relaxed counter increment on the allocating paths.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A run that cannot converge within `rounds`: under the worst-case
/// adversary (extreme-targeting mobility, split corruption) these models
/// stay above ε = 1e-300 for well over the budgets used here, so every
/// round executes and `rounds_executed == rounds`.
fn run_counting(model: MobileModel, n: usize, rounds: usize, observe: Observe) -> (u64, usize) {
    run_counting_observed(model, n, rounds, observe, &mut mbaa::NoopObserver)
}

/// [`run_counting`] with an observer attached to the measured run (the
/// warm-up run stays unobserved — the observer's own lazily-grown state,
/// e.g. a registry's first histogram fills, is charged to the measurement,
/// which is exactly what the steady-state comparison needs).
fn run_counting_observed<O: Observer>(
    model: MobileModel,
    n: usize,
    rounds: usize,
    observe: Observe,
    observer: &mut O,
) -> (u64, usize) {
    let inputs: Vec<Value> = (0..n)
        .map(|i| Value::new(i as f64 / (n - 1) as f64))
        .collect();
    let config = ProtocolConfig::builder(model, n, 2)
        .epsilon(1e-300)
        .max_rounds(rounds)
        .seed(7)
        .mobility(MobilityStrategy::TargetExtremes)
        .corruption(CorruptionStrategy::split_attack())
        .observe(observe)
        .build()
        .expect("config");
    let engine = MobileEngine::new(config);
    // Warm up once: lazily initialized runtime state (thread-locals, the
    // first pool fills) must not be charged to the measured run.
    engine.run(&inputs).expect("warm-up run");
    let before = allocations();
    let outcome = engine
        .run_observed(&inputs, observer)
        .expect("measured run");
    (allocations() - before, outcome.rounds_executed)
}

#[test]
fn steady_state_rounds_allocate_nothing_under_observe_summary() {
    // The worst-case adversary on the complete topology: the sweep hot
    // path. These three models sustain a positive diameter under the split
    // attack for far longer than the budgets below, so neither run
    // converges early.
    for model in [
        MobileModel::Bonnet,
        MobileModel::Sasaki,
        MobileModel::Buhrman,
    ] {
        let n = model.required_processes(2);
        let (allocs_short, rounds_short) = run_counting(model, n, 6, Observe::Summary);
        let (allocs_long, rounds_long) = run_counting(model, n, 26, Observe::Summary);
        assert_eq!(
            rounds_short, 6,
            "{model}: short run must exhaust its budget"
        );
        assert_eq!(rounds_long, 26, "{model}: long run must exhaust its budget");
        // Both runs share identical setup; the 20 extra steady-state rounds
        // must not have allocated at all.
        assert_eq!(
            allocs_long,
            allocs_short,
            "{model}: {} extra allocations across 20 extra steady-state rounds",
            allocs_long.saturating_sub(allocs_short)
        );

        // Sanity: the same comparison under Observe::Full *does* allocate
        // (snapshots + trace), proving the counter actually measures the
        // engine and the Summary result is not vacuous.
        let (full_short, _) = run_counting(model, n, 6, Observe::Full);
        let (full_long, _) = run_counting(model, n, 26, Observe::Full);
        assert!(
            full_long > full_short,
            "{model}: Full-observability rounds should allocate (got {full_short} vs {full_long})"
        );

        // Pooled Full recording: a recorded round is four flat slot
        // arrays, not one heap object per sender, so the per-round
        // allocation *count* is independent of the system size — buffer
        // sizes scale with n, allocation counts do not. The per-round
        // delta of a larger universe must match exactly. (n + 3 is the
        // largest margin where all three models still exhaust the budget
        // under this adversary; with more slack the diameter collapses to
        // exactly zero before round 26.)
        let (big_short, big_rounds_short) = run_counting(model, n + 3, 6, Observe::Full);
        let (big_long, big_rounds_long) = run_counting(model, n + 3, 26, Observe::Full);
        assert_eq!(
            (big_rounds_short, big_rounds_long),
            (6, 26),
            "{model}: the larger universe must exhaust both budgets"
        );
        assert_eq!(
            full_long - full_short,
            big_long - big_short,
            "{model}: Full-observability per-round allocation count grew with n \
             ({} at n = {n} vs {} at n = {})",
            (full_long - full_short) / 20,
            (big_long - big_short) / 20,
            n + 3
        );
    }
}

/// The general-path analogue of [`run_counting`], on the seed-batched
/// engine: four lanes advance in lockstep over a partial or dynamic
/// network realization shared across the batch. Returns the allocation
/// delta of the measured run and every lane's executed round count.
fn run_batch_counting(
    topology: Topology,
    schedule: Option<TopologySchedule>,
    rounds: usize,
) -> (u64, Vec<usize>) {
    let n = 16;
    let mut builder = ProtocolConfig::builder(MobileModel::Garay, n, 2)
        .epsilon(1e-300)
        .max_rounds(rounds)
        .seed(7)
        .mobility(MobilityStrategy::TargetExtremes)
        .corruption(CorruptionStrategy::split_attack())
        .observe(Observe::Summary)
        .topology(topology);
    if let Some(schedule) = schedule {
        builder = builder.topology_schedule(schedule);
    }
    let config = builder.build().expect("config");
    let engine = BatchEngine::new(config);
    let lanes: Vec<BatchLane> = (1..=4)
        .map(|seed| BatchLane {
            seed,
            inputs: (0..n)
                .map(|i| Value::new(i as f64 / (n - 1) as f64))
                .collect(),
        })
        .collect();
    // Warm up once, exactly as the scalar harness does.
    for outcome in engine.run(&lanes) {
        outcome.expect("warm-up run");
    }
    let before = allocations();
    let executed: Vec<usize> = engine
        .run(&lanes)
        .into_iter()
        .map(|outcome| outcome.expect("measured run").rounds_executed)
        .collect();
    (allocations() - before, executed)
}

#[test]
fn general_path_batch_rounds_allocate_nothing_under_observe_summary() {
    // The batch engine's *general* path — masked static exchange over a
    // ring, and a churned dynamic realization rebuilt every round — with
    // four lanes in lockstep against one shared network realization. Same
    // differential design as the scalar test: both runs share identical
    // setup, so the 20 extra steady-state rounds of the long run must not
    // have allocated at all.
    for (label, topology, schedule) in [
        ("ring", Topology::Ring { k: 4 }, None),
        (
            "churn",
            Topology::Complete,
            Some(TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.15,
            }),
        ),
    ] {
        let (allocs_short, rounds_short) =
            run_batch_counting(topology.clone(), schedule.clone(), 6);
        let (allocs_long, rounds_long) = run_batch_counting(topology, schedule, 26);
        assert!(
            rounds_short.iter().all(|&r| r == 6),
            "{label}: every short lane must exhaust its budget, got {rounds_short:?}"
        );
        assert!(
            rounds_long.iter().all(|&r| r == 26),
            "{label}: every long lane must exhaust its budget, got {rounds_long:?}"
        );
        assert_eq!(
            allocs_long,
            allocs_short,
            "{label}: {} extra allocations across 20 extra general-path batch rounds",
            allocs_long.saturating_sub(allocs_short)
        );
    }
}

#[test]
fn metrics_registry_rounds_allocate_nothing_under_observe_summary() {
    // The telemetry sink of the sweep hot path: a `MetricsRegistry`
    // observes every round (counters + fixed-bucket histograms, all
    // preallocated at construction), so attaching one must not reintroduce
    // per-round allocation. Same differential design as above: the 20
    // extra steady-state rounds of the long run must allocate nothing.
    for model in [
        MobileModel::Bonnet,
        MobileModel::Sasaki,
        MobileModel::Buhrman,
    ] {
        let n = model.required_processes(2);
        let mut short_registry = MetricsRegistry::new();
        let (allocs_short, rounds_short) =
            run_counting_observed(model, n, 6, Observe::Summary, &mut short_registry);
        let mut long_registry = MetricsRegistry::new();
        let (allocs_long, rounds_long) =
            run_counting_observed(model, n, 26, Observe::Summary, &mut long_registry);
        assert_eq!(
            (rounds_short, rounds_long),
            (6, 26),
            "{model}: both observed runs must exhaust their budgets"
        );
        assert_eq!(
            allocs_long,
            allocs_short,
            "{model}: {} extra allocations across 20 extra observed rounds",
            allocs_long.saturating_sub(allocs_short)
        );
        // The registry really did watch the runs.
        assert_eq!(short_registry.rounds_total, 6);
        assert_eq!(long_registry.rounds_total, 26);
    }
}
