//! Stress tests of the work-stealing batch executor: sweeps whose points
//! have wildly uneven run lengths must produce bit-identical results for
//! every worker count and steal order, and the streaming summary mode must
//! agree with the eager path while never holding per-run trajectories.

use std::sync::atomic::{AtomicUsize, Ordering};

use mbaa::prelude::*;

/// A point that converges slowly: the minimal legal system, a tight ε, and
/// the worst-case adversary keep the contraction near its worst bound.
fn near_threshold(model: MobileModel) -> Scenario {
    Scenario::at_bound(model, 2).epsilon(1e-9).max_rounds(600)
}

/// A comfortable point: plenty of replica margin and a loose ε make it
/// finish in a handful of rounds.
fn easy(model: MobileModel) -> Scenario {
    let f = 1;
    Scenario::new(model, model.required_processes(f) + 4, f)
        .epsilon(1e-2)
        .max_rounds(100)
}

/// The uneven sweep of the executor stress tests: slow near-threshold
/// points interleaved with cheap ones — the shape that stalls a static
/// per-core chunking.
fn uneven_sweep() -> Sweep {
    Sweep::over([
        near_threshold(MobileModel::Garay),
        easy(MobileModel::Buhrman),
        near_threshold(MobileModel::Sasaki),
        easy(MobileModel::Garay),
        near_threshold(MobileModel::Bonnet),
        easy(MobileModel::Bonnet),
    ])
    .seeds(0..4)
}

#[test]
fn uneven_sweep_is_identical_across_worker_counts() {
    let reference = uneven_sweep().workers(1).run().unwrap();
    for width in [2usize, 3, 8, 32] {
        let points = uneven_sweep().workers(width).run().unwrap();
        assert_eq!(points, reference, "{width} workers diverged");
    }
    // The ambient pool (whatever the machine width is) agrees too.
    assert_eq!(uneven_sweep().run().unwrap(), reference);
}

#[test]
fn flattened_sweep_points_match_independent_per_point_batches() {
    let points = uneven_sweep().run().unwrap();
    assert_eq!(points.len(), 6);
    for point in &points {
        assert_eq!(
            point.outcome,
            point.scenario.batch(0..4).run().unwrap(),
            "global-pool outcome diverged from the standalone batch at n={} f={} ({})",
            point.scenario.n,
            point.scenario.f,
            point.scenario.model,
        );
    }
    // The slow points really are slower — the unevenness is genuine, not
    // hypothetical.
    let slow = points[0].outcome.mean_rounds().unwrap();
    let fast = points[1].outcome.mean_rounds().unwrap();
    assert!(
        slow >= 4.0 * fast,
        "expected a pronounced imbalance, got {slow:.1} vs {fast:.1} rounds"
    );
}

#[test]
fn uneven_batch_is_identical_across_worker_counts() {
    // Seeds of one near-threshold point: per-seed lengths differ too.
    let scenario = near_threshold(MobileModel::Garay);
    let reference = scenario.batch(0..8).workers(1).run().unwrap();
    for width in [2usize, 7, 16] {
        assert_eq!(
            scenario.batch(0..8).workers(width).run().unwrap(),
            reference,
            "{width} workers diverged"
        );
    }
}

#[test]
fn streamed_sweep_is_identical_across_worker_counts_and_matches_eager() {
    let eager = uneven_sweep().run().unwrap();
    let reference = uneven_sweep().workers(1).stream().unwrap();
    for width in [2usize, 8] {
        assert_eq!(
            uneven_sweep().workers(width).stream().unwrap(),
            reference,
            "{width} workers diverged"
        );
    }
    for (point, summary) in eager.iter().zip(&reference) {
        assert_eq!(point.scenario, summary.scenario);
        assert_eq!(point.outcome.to_experiment_result(), summary.result);
    }
}

#[test]
fn streaming_a_large_seed_batch_matches_the_eager_summary() {
    // ≥ 10k seeds on a deliberately small, fast-converging scenario. The
    // streaming path folds every run into its summary on the worker — no
    // per-run trajectory is ever held — yet the aggregate must equal the
    // eager path's summary bit for bit.
    let scenario = Scenario::new(MobileModel::Buhrman, 6, 1)
        .epsilon(1e-2)
        .max_rounds(60)
        .workload(Workload::RandomUniform { lo: 0.0, hi: 1.0 });
    let seeds = 0..10_000u64;

    let observed = AtomicUsize::new(0);
    let streamed = scenario
        .batch(seeds.clone())
        .stream_with(|_| {
            observed.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    assert_eq!(streamed.runs.len(), 10_000);
    assert_eq!(observed.load(Ordering::Relaxed), 10_000);

    // The summary-only experiment path describes the exact same runs…
    assert_eq!(streamed, scenario.batch(seeds.clone()).summarize().unwrap());
    // …and on a subsample we can afford to materialize, the eager path's
    // to_experiment_result() agrees run for run.
    let eager = scenario.batch(0..512).run().unwrap().to_experiment_result();
    assert_eq!(&streamed.runs[..512], &eager.runs[..]);
    assert!(streamed.success_rate() > 0.99);
}

#[test]
fn streaming_errors_deterministically_on_the_smallest_failing_seed() {
    let scenario = Scenario::new(MobileModel::Garay, 8, 2);
    let eager = scenario.batch(0..4).run().unwrap_err();
    let streamed = scenario.batch(0..4).stream().unwrap_err();
    assert_eq!(format!("{eager}"), format!("{streamed}"));
}
