//! Integration tests of the link-fault & dynamic-topology subsystem: the
//! mobile-network axes (directed links, per-link omission/delay faults,
//! round-indexed topology schedules) must compose with the Scenario API
//! without perturbing the static engine, and must be deterministic across
//! every execution path and worker budget.

use mbaa::prelude::*;

fn garay() -> Scenario {
    Scenario::new(MobileModel::Garay, 9, 1)
        .epsilon(1e-3)
        .max_rounds(400)
}

fn churning(flip_rate: f64) -> Scenario {
    garay().topology_schedule(TopologySchedule::SeededChurn {
        base: Topology::Complete,
        flip_rate,
    })
}

#[test]
fn static_complete_schedule_is_bit_identical_to_the_default_engine() {
    // The whole subsystem must vanish when asked to describe the paper's
    // network: a static complete schedule with a clean link-fault plan is
    // byte-identical to no schedule at all, for every model and seed.
    for model in MobileModel::ALL {
        let default_scenario = Scenario::at_bound(model, 2).max_rounds(400);
        let scheduled = default_scenario
            .clone()
            .topology_schedule(TopologySchedule::Static(Topology::Complete))
            .link_faults(LinkFaultPlan::new());
        for seed in 0..6 {
            let via_default = default_scenario.run(seed).unwrap();
            let via_schedule = scheduled.run(seed).unwrap();
            assert_eq!(via_default, via_schedule, "{model} seed {seed} diverged");
            assert_eq!(
                format!("{via_default:?}").into_bytes(),
                format!("{via_schedule:?}").into_bytes(),
                "{model} seed {seed} renderings diverged"
            );
        }
    }
}

#[test]
fn static_complete_schedule_is_identical_on_every_execution_path() {
    let default_scenario = garay();
    let scheduled = default_scenario
        .clone()
        .topology_schedule(TopologySchedule::Static(Topology::Complete));

    let batch_default = default_scenario.batch(0..6).run().unwrap();
    let batch_scheduled = scheduled.batch(0..6).run().unwrap();
    for ((_, a), (_, b)) in batch_default.iter().zip(batch_scheduled.iter()) {
        assert_eq!(a, b, "batch path diverged");
    }

    for workers in [1usize, 4] {
        assert_eq!(
            default_scenario
                .batch(0..6)
                .workers(workers)
                .stream()
                .unwrap()
                .runs,
            scheduled
                .batch(0..6)
                .workers(workers)
                .stream()
                .unwrap()
                .runs,
            "stream path diverged at {workers} workers"
        );
    }
    assert_eq!(
        default_scenario.batch(0..6).summarize().unwrap().runs,
        scheduled.batch(0..6).summarize().unwrap().runs
    );

    let sweep_default = default_scenario.sweep_n(1).seeds(0..3).run().unwrap();
    let sweep_scheduled = scheduled.sweep_n(1).seeds(0..3).run().unwrap();
    for (a, b) in sweep_default.iter().zip(&sweep_scheduled) {
        assert_eq!(a.outcome.runs, b.outcome.runs, "sweep path diverged");
    }
}

#[test]
fn frozen_churn_over_a_ring_matches_the_static_ring_axis() {
    // flip_rate = 0 freezes the churn: the dynamic path must mask delivery
    // exactly like the static topology axis, outcome for outcome.
    let static_ring = garay().topology(Topology::Ring { k: 3 });
    let frozen = garay().topology_schedule(TopologySchedule::SeededChurn {
        base: Topology::Ring { k: 3 },
        flip_rate: 0.0,
    });
    for seed in 0..4 {
        let a = static_ring.run(seed).unwrap();
        let b = frozen.run(seed).unwrap();
        assert_eq!(a, b, "seed {seed} diverged");
        assert!(!a.network_stats.has_link_faults());
    }
}

#[test]
fn churned_runs_are_deterministic_across_paths_and_worker_counts() {
    let scenario = churning(0.3);
    let reference = scenario.batch(0..8).workers(1).run().unwrap();
    for workers in [2usize, 8] {
        assert_eq!(
            scenario.batch(0..8).workers(workers).run().unwrap(),
            reference,
            "{workers} workers diverged"
        );
    }
    // Batch entries equal standalone runs; streaming equals the eager path.
    for (seed, outcome) in reference.iter() {
        assert_eq!(outcome, &scenario.run(seed).unwrap(), "seed {seed}");
    }
    assert_eq!(
        scenario.batch(0..8).stream().unwrap(),
        reference.to_experiment_result()
    );
    // The runs genuinely exercised the dynamic path.
    assert!(reference
        .iter()
        .all(|(_, o)| o.network_stats.unreachable > 0));
}

#[test]
fn sweep_churn_matches_per_point_batches() {
    let sweep = garay().sweep_churn([0.0, 0.3]).seeds([2, 0, 1]);
    let points = sweep.run().unwrap();
    assert_eq!(points.len(), 2);
    for point in &points {
        assert_eq!(
            point.outcome,
            point.scenario.batch([0, 1, 2]).run().unwrap(),
            "flattened sweep diverged from the standalone batch"
        );
    }
    // The churned point saw structural drops; the frozen one did not.
    assert!(points[1]
        .outcome
        .iter()
        .all(|(_, o)| o.network_stats.unreachable > 0));
    assert!(points[0]
        .outcome
        .iter()
        .all(|(_, o)| o.network_stats.unreachable == 0));
}

#[test]
fn a_two_way_link_cut_computes_exactly_like_the_missing_edge_topology() {
    // Severing 0 <-> 1 with deterministic link omissions delivers the same
    // slots as deleting the edge from the graph, so the protocol computes
    // the same votes — only the *accounting* differs: the cut is a link
    // fault, the missing edge is structure.
    let n = 9;
    let edges = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .filter(|&(a, b)| !(a == 0 && b == 1));
    let punctured = Adjacency::from_edges(n, edges).unwrap();
    let via_topology = garay().topology(Topology::Custom(punctured));
    let via_cut = garay().link_faults(LinkFaultPlan::new().cut(0, 1).cut(1, 0));
    for seed in 0..4 {
        let a = via_topology.run(seed).unwrap();
        let b = via_cut.run(seed).unwrap();
        assert_eq!(a.final_votes, b.final_votes, "seed {seed} votes diverged");
        assert_eq!(a.rounds_executed, b.rounds_executed);
        assert_eq!(a.report, b.report);
        assert_eq!(a.reached_agreement, b.reached_agreement);
        // Structure vs. link fault, never adversary omissions.
        assert!(a.network_stats.unreachable > 0);
        assert_eq!(a.network_stats.link_omissions, 0);
        assert!(b.network_stats.link_omissions > 0);
        assert_eq!(b.network_stats.unreachable, 0);
    }
}

#[test]
fn lossy_and_delayed_links_still_converge_and_are_accounted_separately() {
    let scenario = garay().link_faults(
        LinkFaultPlan::new()
            .omit_all(0.05)
            .delay(0, 1, 1)
            .delay(0, 2, 2),
    );
    let outcome = scenario.run(3).unwrap();
    assert!(outcome.reached_agreement, "faulted links broke convergence");
    assert!(outcome.validity_holds());
    let stats = &outcome.network_stats;
    assert!(stats.link_omissions > 0, "p=0.05 lost nothing");
    assert!(
        stats.link_delayed > 0,
        "delayed links delivered nothing late"
    );
    assert!(stats.link_pending > 0, "delay pipes were never primed");
    assert_eq!(stats.unreachable, 0);
}

#[test]
fn reject_policy_surfaces_transient_partitions_through_the_scenario_api() {
    let scenario = churning(0.9)
        .epsilon(1e-9)
        .disconnection(DisconnectionPolicy::Reject);
    let err = scenario.run(0).unwrap_err();
    assert!(matches!(err, Error::DisconnectedRound { .. }));
    // The default policy records instead and finishes the run.
    let recorded = churning(0.9).epsilon(1e-9).run(0).unwrap();
    assert!(recorded.network_stats.disconnected_rounds > 0);
}

#[test]
fn periodic_matchings_agree_through_their_union() {
    // Two perfect matchings on 4 processes, each disconnected on its own;
    // their union is connected, and under the Record policy the averaging
    // dynamics converge through the alternation — the evolving-graph
    // regime where only the union over a window carries information.
    let odd_pairs = Adjacency::from_edges(4, [(0, 1), (2, 3)]).unwrap();
    let cross_pairs = Adjacency::from_edges(4, [(0, 2), (1, 3)]).unwrap();
    let scenario = Scenario::new(MobileModel::Buhrman, 4, 0)
        .epsilon(1e-3)
        .max_rounds(300)
        .topology_schedule(TopologySchedule::Periodic {
            phases: vec![Topology::Custom(odd_pairs), Topology::Custom(cross_pairs)],
        });
    let outcome = scenario.run(0).unwrap();
    assert!(
        outcome.reached_agreement,
        "union connectivity did not suffice"
    );
    assert!(outcome.validity_holds());
    // Every executed round ran on a disconnected graph.
    assert_eq!(
        outcome.network_stats.disconnected_rounds as usize,
        outcome.rounds_executed
    );
}

#[test]
fn directed_adjacency_round_trips_and_detects_one_way_disconnection() {
    // The symmetric case is exactly Adjacency: lifting and projecting
    // round-trips the graph.
    let ring = Topology::Ring { k: 2 }.realize(7, 0).unwrap();
    let lifted = DirectedAdjacency::from_symmetric(&ring);
    assert!(lifted.is_symmetric());
    assert_eq!(lifted.to_symmetric().unwrap(), ring);
    assert_eq!(lifted.min_in_closed_neighborhood(), 5);

    // One-way links: reachable in one direction only, and strong
    // connectivity sees through it.
    let one_way = DirectedAdjacency::from_arcs(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    assert!(!one_way.is_symmetric());
    assert!(!one_way.is_strongly_connected());
    let cycle = DirectedAdjacency::from_arcs(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    assert!(cycle.is_strongly_connected());
    assert!(cycle.to_symmetric().is_err());
}
