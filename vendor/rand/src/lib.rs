//! Offline stand-in for `rand`, implementing exactly the surface the
//! workspace uses: a seeded deterministic generator (`rngs::StdRng`),
//! `SeedableRng::seed_from_u64`, `Rng` + `RngExt::random_range` over
//! float and integer ranges, and `seq::index::sample`. See
//! `vendor/README.md` for why this exists.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`], exactly like the real crate.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods over [`Rng`]; blanket-implemented.
pub trait RngExt: Rng {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, inverted).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A range that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample inverted range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, and cannot get stuck.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling.
    pub mod index {
        use crate::Rng;

        /// A set of sampled indices.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// The sampled indices as a vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly at
        /// random (partial Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            let mut indices = Vec::new();
            sample_into(rng, length, amount, &mut indices);
            IndexVec(indices)
        }

        /// In-place variant of [`sample`]: fills `out` with `amount`
        /// distinct indices from `0..length`, reusing its allocation. The
        /// draw sequence (and therefore the result) is identical to
        /// [`sample`] for the same generator state — once `out` has grown
        /// to `length`, refilling performs no heap allocation.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample_into<R: Rng + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
            out: &mut Vec<usize>,
        ) {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            out.clear();
            out.extend(0..length);
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (length - i);
                out.swap(i, j);
            }
            out.truncate(amount);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0..=1.0), b.random_range(0.0..=1.0));
        }
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.random_range(-3.0..=3.0);
            assert!((-3.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: usize = rng.random_range(0..10usize);
            assert!(v < 10);
        }
    }

    #[test]
    fn sample_into_matches_sample() {
        let mut scratch = Vec::new();
        for seed in 0..20 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let owned = super::seq::index::sample(&mut a, 11, 5).into_vec();
            super::seq::index::sample_into(&mut b, 11, 5, &mut scratch);
            assert_eq!(owned, scratch);
        }
    }

    #[test]
    fn index_sample_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = sample(&mut rng, 9, 4);
            let v = s.into_vec();
            assert_eq!(v.len(), 4);
            assert!(v.iter().all(|&i| i < 9));
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate index in {v:?}");
        }
    }
}
