//! Offline stand-in for `rayon`, implementing the data-parallel surface
//! the workspace uses — `into_par_iter()` / `par_iter()` followed by
//! `map(..).collect()` — on top of `std::thread::scope`, plus a minimal
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] pair for pinning the
//! worker count.
//!
//! # Scheduling: work stealing over a shared atomic work index
//!
//! Work is **not** split into static per-worker chunks. Every item of the
//! input becomes one slot in a shared pool, and a single atomic cursor
//! ([`AtomicUsize`]) is the head of the remaining work: each worker claims
//! a **batch of consecutive indices** with one `fetch_add(k)`, processes
//! them, and loops. A worker that drew only cheap items therefore keeps
//! pulling work that a static chunking would have left stranded behind a
//! slow neighbour — the classic uneven-run-length problem in threshold
//! sweeps.
//!
//! The claim size `k` amortizes atomic traffic on micro-runs (thousands of
//! sub-millisecond items would otherwise serialize on the cursor's cache
//! line) while staying far smaller than `len / workers`, so the tail of
//! the pool — the *remainder* — is still stolen batch by batch by whichever
//! workers free up first. `k` is chosen per call (`claim_size`): 1 for
//! small inputs (maximum balance), growing logarithmically and capped so
//! every worker sees many batches.
//!
//! Results carry their input index and are reassembled in input order
//! after all workers join, so collection order (and the collected value,
//! for any deterministic `f`) is identical for every worker count and
//! every claim size — asserted by the tests over widths × claim sizes.
//! Panics in workers propagate to the caller, exactly like real rayon. See
//! `vendor/README.md` for why this crate exists.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The customary glob import, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] on the
    /// calling thread (`None` → use all available cores).
    static POOL_WORKERS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads to use for `len` items: the installed
/// [`ThreadPool`] width if one is active on this thread, otherwise the
/// available parallelism, never more than `len` and never zero.
fn worker_count(len: usize) -> usize {
    let configured = POOL_WORKERS.with(Cell::get).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    });
    configured.min(len).max(1)
}

/// The number of worker threads parallel operations on this thread will
/// use for large inputs (mirrors `rayon::current_num_threads`).
#[must_use]
pub fn current_num_threads() -> usize {
    worker_count(usize::MAX)
}

/// The number of consecutive indices one `fetch_add` claims for `len`
/// items on `workers` workers.
///
/// Batching exists purely to cut atomic/cache-line traffic on micro-runs;
/// it must never reintroduce the static-chunking imbalance. Two guards
/// keep it honest: claims grow only logarithmically with the per-worker
/// share (1 below 32 items/worker, then 2, 4, … capped at 32), and a claim
/// never exceeds 1/8 of a worker's share, so every worker has at least ~8
/// opportunities to steal from the remainder of the pool.
fn claim_size(len: usize, workers: usize) -> usize {
    let share = len / workers.max(1);
    let log_growth = (share / 32).next_power_of_two().min(32);
    log_growth.min((share / 8).max(1))
}

/// Runs `f` over `items` in parallel with work stealing, preserving input
/// order in the output.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = worker_count(items.len());
    let claim = claim_size(items.len(), workers);
    par_map_vec_batched(items, f, workers, claim)
}

/// [`par_map_vec`] with an explicit worker count and claim (batch) size —
/// the output is bit-identical for *every* combination, which the tests
/// assert directly.
fn par_map_vec_batched<T, U, F>(items: Vec<T>, f: &F, workers: usize, claim: usize) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let claim = claim.max(1);
    // One slot per item. The per-slot mutex only exists to move the item
    // out safely; `cursor` hands every index to exactly one worker, so the
    // locks are never contended.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        // Claim a batch of `claim` consecutive indices with
                        // one atomic op; the batch may run past the end, in
                        // which case only the in-range prefix exists.
                        let start = cursor.fetch_add(claim, Ordering::Relaxed);
                        if start >= slots.len() {
                            break;
                        }
                        let end = start.saturating_add(claim).min(slots.len());
                        for (offset, slot) in slots[start..end].iter().enumerate() {
                            let item = slot
                                .lock()
                                .expect("no worker panics while holding a slot lock")
                                .take()
                                .expect("every index is claimed exactly once");
                            produced.push((start + offset, f(item)));
                        }
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => per_worker.push(produced),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    // Reassemble in input order: concatenate the workers' (index, value)
    // pairs and sort by index. The sort is the only order-restoring step,
    // so the output is independent of the steal interleaving and the claim
    // size.
    let mut merged: Vec<(usize, U)> = per_worker.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|&(index, _)| index);
    merged.into_iter().map(|(_, value)| value).collect()
}

/// Configures a [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (all available cores).
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (`0` → all available cores).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors the real rayon
    /// signature so call sites port over unchanged.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error building a [`ThreadPool`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped worker-count policy (mirrors `rayon::ThreadPool`).
///
/// [`install`](ThreadPool::install) pins every parallel operation started
/// by the closure (on this thread) to the configured width — the handle the
/// determinism tests use to prove results are identical for 1, 2, and many
/// workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count installed for every parallel
    /// operation `op` starts on the calling thread. Restores the previous
    /// policy on exit (nesting works the obvious way).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let previous = POOL_WORKERS.with(|cell| {
            cell.replace(if self.num_threads == 0 {
                None
            } else {
                Some(self.num_threads)
            })
        });
        // Restore on unwind too, so a panicking `op` cannot leak the
        // override into later work on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0;
                POOL_WORKERS.with(|cell| cell.set(previous));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// The configured worker count (`0` means "all available cores").
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        }
    }
}

/// A parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Executes the parallel map and collects the results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (mirrors `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The item type iterated over.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Borrowing conversion (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1_000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u64> = (0..100).collect();
        let total: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(total.iter().sum::<u64>(), 5_050);
    }

    #[test]
    fn collect_into_result_short_circuit_semantics() {
        let v: Vec<u32> = (0..10).collect();
        let ok: Result<Vec<u32>, String> = v.into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let v: Vec<u32> = (0..10).collect();
        let err: Result<Vec<u32>, String> = v
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_input_under_every_pool_width() {
        for width in [1usize, 2, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let out: Vec<u8> = pool.install(|| Vec::new().into_par_iter().map(|x: u8| x).collect());
            assert!(out.is_empty());
        }
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<u32> = (0..64).collect();
            let _: Vec<u32> = v
                .into_par_iter()
                .map(|x| {
                    assert!(x != 17, "injected worker panic");
                    x
                })
                .collect();
        });
        let panic = caught.expect_err("the worker panic must reach the caller");
        let message = panic
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("injected worker panic"),
            "unexpected panic payload: {message:?}"
        );
    }

    #[test]
    fn panic_on_a_single_worker_pool_propagates_too() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caught = std::panic::catch_unwind(|| {
            pool.install(|| {
                let _: Vec<u32> = vec![1u32].into_par_iter().map(|_| panic!("one")).collect();
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn results_are_identical_for_every_claim_size_and_worker_count() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * 3 + 1).collect();
        for workers in [2usize, 3, 8] {
            for claim in [1usize, 2, 3, 7, 32, 300] {
                let got = par_map_vec_batched(input.clone(), &|x| x * 3 + 1, workers, claim);
                assert_eq!(
                    got, expected,
                    "{workers} workers with claim {claim} diverged"
                );
            }
        }
    }

    #[test]
    fn batched_claims_balance_uneven_costs() {
        // A slow item at the front must not strand the tail: the remainder
        // is stolen batch by batch by the free worker.
        let input: Vec<u64> = (0..96).collect();
        let out = par_map_vec_batched(
            input,
            &|x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x
            },
            4,
            4,
        );
        assert_eq!(out, (0..96).collect::<Vec<u64>>());
    }

    #[test]
    fn claim_size_stays_small_relative_to_the_share() {
        // Tiny inputs claim one item at a time: balance beats batching.
        assert_eq!(claim_size(10, 4), 1);
        assert_eq!(claim_size(100, 4), 1);
        assert_eq!(claim_size(0, 4), 1);
        // Micro-run regime: claims grow, but every worker still sees at
        // least ~8 batches of remainder to steal.
        for (len, workers) in [(1_000usize, 4usize), (10_000, 8), (100_000, 2)] {
            let claim = claim_size(len, workers);
            assert!((1..=32).contains(&claim));
            assert!(
                claim <= (len / workers / 8).max(1),
                "claim {claim} too coarse for {len} items on {workers} workers"
            );
        }
        assert_eq!(claim_size(100_000, 4), 32);
    }

    #[test]
    fn batched_worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<u32> = (0..64).collect();
            let _ = par_map_vec_batched(
                v,
                &|x| {
                    assert!(x != 17, "injected batched panic");
                    x
                },
                4,
                8,
            );
        });
        assert!(caught.is_err());
    }

    #[test]
    fn results_are_identical_for_every_worker_count() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * x + 1).collect();
        for width in [1usize, 2, 3, 8, 64] {
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let got: Vec<u64> =
                pool.install(|| input.clone().into_par_iter().map(|x| x * x + 1).collect());
            assert_eq!(got, expected, "width {width} diverged");
        }
    }

    #[test]
    fn uneven_item_costs_are_balanced_and_ordered() {
        // One pathologically slow item at the front: static chunking would
        // strand the first chunk behind it; stealing lets the other workers
        // drain the rest. Either way the *result* must stay in input order.
        let v: Vec<u64> = (0..128).collect();
        let out: Vec<u64> = v
            .into_par_iter()
            .map(|x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x
            })
            .collect();
        assert_eq!(out, (0..128).collect::<Vec<u64>>());
    }

    #[test]
    fn install_restores_the_previous_width_even_on_panic() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            let caught = std::panic::catch_unwind(|| inner.install(|| panic!("inner")));
            assert!(caught.is_err());
            assert_eq!(current_num_threads(), 3, "override leaked past install");
        });
    }

    #[test]
    fn zero_threads_means_default_width() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
        let out: Vec<u8> = pool.install(|| vec![1u8, 2, 3].into_par_iter().map(|x| x).collect());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<()> = v
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        // On a multi-core box the stealing workers land on distinct threads.
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }
}
