//! Offline stand-in for `rayon`, implementing the data-parallel surface
//! the workspace uses — `into_par_iter()` / `par_iter()` followed by
//! `map(..).collect()` — on top of `std::thread::scope`. Work is split
//! into one contiguous chunk per available core, results are reassembled
//! in input order, and panics in workers propagate to the caller. See
//! `vendor/README.md` for why this exists.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// The customary glob import, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads to use for `len` items.
fn worker_count(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(len)
        .max(1)
}

/// Runs `f` over `items` in parallel, preserving order.
fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mapped) => results.push(mapped),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// A parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Executes the parallel map and collects the results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (mirrors `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The item type iterated over.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Borrowing conversion (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1_000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u64> = (0..100).collect();
        let total: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(total.iter().sum::<u64>(), 5_050);
    }

    #[test]
    fn collect_into_result_short_circuit_semantics() {
        let v: Vec<u32> = (0..10).collect();
        let ok: Result<Vec<u32>, String> = v.into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let v: Vec<u32> = (0..10).collect();
        let err: Result<Vec<u32>, String> = v
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<()> = v
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        // On a multi-core box the chunks land on distinct threads.
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }
}
