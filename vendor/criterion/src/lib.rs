//! Offline stand-in for `criterion`, implementing the benchmarking surface
//! the workspace uses: `criterion_group!` / `criterion_main!`, benchmark
//! groups with throughput/sample-size knobs, and `Bencher::iter` with
//! wall-clock timing and a plain-text mean/min report. No statistics, no
//! HTML — just honest timings. See `vendor/README.md` for why this exists.
//!
//! # CI hooks
//!
//! Two environment variables make the shim usable as a CI smoke check:
//!
//! * `MBAA_BENCH_SAMPLES` — overrides every benchmark's sample count
//!   (clamped to ≥ 1), so the whole suite can run in seconds.
//! * `MBAA_BENCH_JSON` — a directory; when set, `criterion_main!` writes a
//!   `BENCH_<binary>.json` file there after the groups run: a JSON array of
//!   `{group, id, mean_ns, min_ns, samples, unit}` records, one per
//!   benchmark, suitable for uploading as a CI artifact and diffing across
//!   commits.
//!
//! Report-style benches (plain `fn main()` targets that measure *protocol*
//! quantities — rounds, thresholds, contraction factors — rather than wall
//! time) feed the same report through [`record_metric`] and flush it with
//! an explicit [`write_json_report`] call; their rows carry a caller-chosen
//! `unit` instead of `"ns"`, and `scripts/bench_diff.py` diffs them exactly
//! like timing rows.

#![forbid(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// One benchmark result, as recorded for the JSON report: a wall-clock
/// timing (unit `"ns"`) or a report-style metric with its own unit. The
/// field names keep the historical `_ns` suffix so reports diff cleanly
/// across commits.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    id: String,
    mean_ns: f64,
    min_ns: f64,
    samples: u64,
    unit: String,
}

/// Every benchmark timed by this process, in execution order.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// The sample-count override from `MBAA_BENCH_SAMPLES`, if any.
fn sample_override() -> Option<usize> {
    std::env::var("MBAA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(1))
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 50,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut bencher = Bencher::new(50);
        f(&mut bencher);
        bencher.report("", &id.to_string());
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded, not analysed).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Number of timed samples per benchmark (default 50).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmarks `f` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples: sample_override().unwrap_or(samples).max(1),
            total: Duration::ZERO,
            min: Duration::MAX,
            iterations: 0,
        }
    }

    /// Times `routine`, running a short warmup followed by the configured
    /// number of timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iterations += 1;
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.iterations == 0 {
            println!("  {id}: no samples");
            return;
        }
        let mean = self.total / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        println!(
            "  {id}: mean {mean:?}, min {:?} ({} samples)",
            self.min, self.iterations
        );
        RESULTS.lock().unwrap().push(BenchRecord {
            group: group.to_string(),
            id: id.to_string(),
            mean_ns: mean.as_nanos() as f64,
            min_ns: self.min.as_nanos() as f64,
            samples: self.iterations,
            unit: "ns".to_string(),
        });
    }
}

/// Records a report-style metric row (a protocol quantity such as rounds to
/// agreement, an empirical threshold, or a contraction factor) into the
/// same JSON report the timed benchmarks feed. `value` fills both the mean
/// and min fields; non-finite values are dropped with a warning rather than
/// corrupting the report. Benches with a plain `fn main()` must flush with
/// [`write_json_report`] themselves.
pub fn record_metric(group: &str, id: &str, value: f64, unit: &str) {
    if !value.is_finite() {
        eprintln!("warning: skipping non-finite metric {group}/{id} = {value}");
        return;
    }
    RESULTS.lock().unwrap().push(BenchRecord {
        group: group.to_string(),
        id: id.to_string(),
        mean_ns: value,
        min_ns: value,
        samples: 1,
        unit: unit.to_string(),
    });
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The benchmark binary's stem, with cargo's trailing `-<hash>` stripped.
fn binary_stem() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// Renders an f64 as a JSON number: integral values print without a
/// fractional part, exactly like the historical integer nanosecond fields.
fn json_number(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Writes every benchmark this process recorded to
/// `$MBAA_BENCH_JSON/BENCH_<binary>.json` as a valid JSON array, one object
/// per benchmark. A no-op when the variable is unset or nothing was timed.
/// Called by `criterion_main!` after all groups have run; report-style
/// benches with a plain `fn main()` call it explicitly after their
/// [`record_metric`] rows.
pub fn write_json_report() {
    let Ok(dir) = std::env::var("MBAA_BENCH_JSON") else {
        return;
    };
    let records = RESULTS.lock().unwrap();
    if records.is_empty() {
        return;
    }
    let mut body = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            body,
            "  {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}, \"unit\": \"{}\"}}{}",
            json_escape(&r.group),
            json_escape(&r.id),
            json_number(r.mean_ns),
            json_number(r.min_ns),
            r.samples,
            json_escape(&r.unit),
            if i + 1 == records.len() { "" } else { "," }
        );
    }
    body.push_str("]\n");
    let dir = std::path::PathBuf::from(dir);
    let path = dir.join(format!("BENCH_{}.json", binary_stem()));
    if let Err(error) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("warning: could not write {}: {error}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point. After every group has run,
/// the collected timings are written as a JSON report when
/// `MBAA_BENCH_JSON` is set (see [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function(BenchmarkId::new("sum", 8), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_and_groups_run() {
        benches();
        let records = RESULTS.lock().unwrap();
        assert!(records
            .iter()
            .any(|r| r.group == "shim" && r.id == "4" && r.samples == 5
                || sample_override().is_some()));
        assert!(records.iter().any(|r| r.id == "sum/8"));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn json_numbers_keep_integers_clean() {
        assert_eq!(json_number(123.0), "123");
        assert_eq!(json_number(3.5), "3.5");
        assert_eq!(json_number(-2.0), "-2");
    }

    #[test]
    fn metric_rows_join_the_report_with_their_unit() {
        record_metric("report", "mean_rounds", 12.5, "rounds");
        record_metric("report", "nan", f64::NAN, "rounds");
        let records = RESULTS.lock().unwrap();
        let row = records
            .iter()
            .find(|r| r.group == "report" && r.id == "mean_rounds")
            .expect("metric row recorded");
        assert_eq!(row.mean_ns, 12.5);
        assert_eq!(row.unit, "rounds");
        assert_eq!(row.samples, 1);
        assert!(!records.iter().any(|r| r.id == "nan"), "NaN row was kept");
    }
}
