//! Offline stand-in for `criterion`, implementing the benchmarking surface
//! the workspace uses: `criterion_group!` / `criterion_main!`, benchmark
//! groups with throughput/sample-size knobs, and `Bencher::iter` with
//! wall-clock timing and a plain-text mean/min report. No statistics, no
//! HTML — just honest timings. See `vendor/README.md` for why this exists.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 50,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut bencher = Bencher::new(50);
        f(&mut bencher);
        bencher.report(&id.to_string());
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded, not analysed).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Number of timed samples per benchmark (default 50).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmarks `f` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&id.to_string());
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&id.to_string());
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples: samples.max(1),
            total: Duration::ZERO,
            min: Duration::MAX,
            iterations: 0,
        }
    }

    /// Times `routine`, running a short warmup followed by the configured
    /// number of timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iterations += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iterations == 0 {
            println!("  {id}: no samples");
            return;
        }
        let mean = self.total / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        println!(
            "  {id}: mean {mean:?}, min {:?} ({} samples)",
            self.min, self.iterations
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function(BenchmarkId::new("sum", 8), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_and_groups_run() {
        benches();
    }
}
