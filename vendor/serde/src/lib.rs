//! Offline stand-in for `serde`: re-exports the no-op derives and declares
//! the two marker traits so trait bounds written against serde still
//! compile. See `vendor/README.md` for why this exists.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
