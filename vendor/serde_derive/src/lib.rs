//! Offline stand-in for `serde_derive`: the derives parse (including
//! `#[serde(...)]` helper attributes) and expand to nothing. See
//! `vendor/README.md` for why this exists.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
