#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json reports and emit a Markdown diff.

Usage: bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Each BENCH_<binary>.json (written by the vendored criterion shim under
MBAA_BENCH_JSON) is an array of {group, id, mean_ns, min_ns, samples}
records. Benchmarks are matched by (file name, group, id); mean_ns is
compared and any regression above the threshold (default 15%) is flagged.

The Markdown goes to stdout (append it to $GITHUB_STEP_SUMMARY in CI). The
exit code is always 0: CI smoke runners are noisy, so regressions are
flagged for humans, not used to fail the build.
"""

import argparse
import json
import sys
from pathlib import Path


def load_records(directory: Path) -> dict:
    """Map (file, group, id) -> record for every BENCH_*.json in directory."""
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            entries = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"<!-- skipping unreadable {path.name}: {err} -->")
            continue
        for entry in entries:
            if not isinstance(entry, dict) or not isinstance(entry.get("mean_ns"), (int, float)):
                print(f"<!-- skipping malformed record in {path.name}: {entry!r} -->")
                continue
            key = (path.name, entry.get("group", ""), entry.get("id", ""))
            records[key] = entry
    return records


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent (default 15)")
    args = parser.parse_args()

    print("## Benchmark diff")
    print()

    if not args.baseline.is_dir():
        print(f"No baseline directory at `{args.baseline}` "
              "(first run, or the previous artifact expired) — nothing to compare.")
        return 0

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    if not baseline or not current:
        print("Baseline or current run holds no BENCH_*.json records — nothing to compare.")
        return 0

    rows = []
    regressions = 0
    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        name = f"{key[1]}/{key[2]}"
        if base is None or not base.get("mean_ns"):
            rows.append((name, "-", cur["mean_ns"], "new", ""))
            continue
        change = (cur["mean_ns"] - base["mean_ns"]) / base["mean_ns"] * 100.0
        flag = ""
        if change > args.threshold:
            flag = f"⚠️ regression > {args.threshold:.0f}%"
            regressions += 1
        elif change < -args.threshold:
            flag = "✅ improvement"
        rows.append((name, base["mean_ns"], cur["mean_ns"], f"{change:+.1f}%", flag))

    removed = sorted(set(baseline) - set(current))

    print("| benchmark | baseline mean | current mean | change | |")
    print("|---|---|---|---|---|")
    for name, base_ns, cur_ns, change, flag in rows:
        base_cell = f"{base_ns:,.0f} ns" if isinstance(base_ns, (int, float)) else base_ns
        cur_cell = f"{cur_ns:,.0f} ns" if isinstance(cur_ns, (int, float)) else cur_ns
        print(f"| {name} | {base_cell} | {cur_cell} | {change} | {flag} |")
    for key in removed:
        print(f"| {key[1]}/{key[2]} | - | - | removed | |")
    print()
    if regressions:
        print(f"**{regressions} benchmark(s) regressed by more than "
              f"{args.threshold:.0f}% — worth a look before merging.**")
    else:
        print(f"No regression above {args.threshold:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
