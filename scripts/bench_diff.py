#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json reports and emit a Markdown diff.

Usage: bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Each BENCH_<binary>.json (written by the vendored criterion shim under
MBAA_BENCH_JSON) is an array of {group, id, mean_ns, min_ns, samples, unit}
records — wall-clock timings (unit "ns") from the criterion-style benches
and report-style metrics (rounds, thresholds, contraction factors, with
their own units) from the table1/table2/convergence benches. *Every*
BENCH_*.json file in the two directories is diffed; benchmarks are matched
by (file name, group, id), mean_ns is compared, and any regression above
the threshold (default 15%) is flagged. The "unit" field is optional (old
baselines without it read as "ns") and decides the regression direction:
timings and counts regress upward, throughput units ("…/s", e.g. the
hot-path bench's "rounds/s") regress downward.

The Markdown goes to stdout (append it to $GITHUB_STEP_SUMMARY in CI). The
exit code is always 0: CI smoke runners are noisy, so regressions are
flagged for humans, not used to fail the build.
"""

import argparse
import json
import sys
from pathlib import Path


def load_records(directory: Path) -> dict:
    """Map (file, group, id) -> record for every BENCH_*.json in directory."""
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            entries = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"<!-- skipping unreadable {path.name}: {err} -->")
            continue
        for entry in entries:
            if not isinstance(entry, dict) or not isinstance(entry.get("mean_ns"), (int, float)):
                print(f"<!-- skipping malformed record in {path.name}: {entry!r} -->")
                continue
            key = (path.name, entry.get("group", ""), entry.get("id", ""))
            records[key] = entry
    return records


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent (default 15)")
    args = parser.parse_args()

    print("## Benchmark diff")
    print()

    # Missing artifacts are expected states, not failures: the first run of
    # a branch has no baseline, artifact retention expires old ones, and a
    # skipped bench step leaves no current results. Each case gets its own
    # note and a clean exit so CI summaries say *why* there is no table.
    if not args.baseline.is_dir():
        print(f"No baseline directory at `{args.baseline}` "
              "(first run, or the previous artifact expired) — nothing to compare.")
        return 0
    if not args.current.is_dir():
        print(f"No current-results directory at `{args.current}` "
              "(bench step skipped or artifact path changed) — nothing to compare.")
        return 0

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    if not baseline:
        print(f"`{args.baseline}` holds no BENCH_*.json records — nothing to compare.")
        return 0
    if not current:
        print(f"`{args.current}` holds no BENCH_*.json records — nothing to compare.")
        return 0

    files = sorted({key[0] for key in current} | {key[0] for key in baseline})
    print(f"Diffing {len(files)} report file(s): " + ", ".join(f"`{f}`" for f in files))
    print()

    rows = []
    regressions = 0
    added = 0
    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        name = f"{key[1]}/{key[2]}"
        unit = cur.get("unit", "ns")
        base_mean = base.get("mean_ns") if base is not None else None
        # A row present only in the current run (a freshly added bench,
        # e.g. a new phase-breakdown metric) has nothing to diff against:
        # it must be reported as "new", never flagged as a regression.
        if not isinstance(base_mean, (int, float)):
            added += 1
            rows.append((name, "-", cur["mean_ns"], "new", "", unit))
            continue
        # Report-style metric rows (counts, thresholds) may legitimately be
        # zero; a move away from zero has no percentage but is exactly the
        # kind of change worth flagging.
        if base_mean == 0:
            if cur["mean_ns"] == 0:
                rows.append((name, base_mean, cur["mean_ns"], "+0.0%", "", unit))
            else:
                regressions += 1
                rows.append((name, base_mean, cur["mean_ns"], "from 0", "⚠️ changed from 0", unit))
            continue
        change = (cur["mean_ns"] - base_mean) / base_mean * 100.0
        # Timings and counts regress upward; throughput units (anything
        # per second, e.g. the hot-path bench's "rounds/s") and lane
        # occupancy ("occ%", the packing scheduler's fill rate) regress
        # downward.
        higher_is_better = unit.endswith("/s") or unit == "occ%"
        regressed = change < -args.threshold if higher_is_better else change > args.threshold
        improved = change > args.threshold if higher_is_better else change < -args.threshold
        flag = ""
        if regressed:
            flag = f"⚠️ regression > {args.threshold:.0f}%"
            regressions += 1
        elif improved:
            flag = "✅ improvement"
        rows.append((name, base_mean, cur["mean_ns"], f"{change:+.1f}%", flag, unit))

    removed = sorted(set(baseline) - set(current))

    def fmt(value, unit):
        if not isinstance(value, (int, float)):
            return value
        if unit == "ns":
            return f"{value:,.0f} ns"
        return f"{value:g} {unit}"

    print("| benchmark | baseline mean | current mean | change | |")
    print("|---|---|---|---|---|")
    for name, base_ns, cur_ns, change, flag, unit in rows:
        print(f"| {name} | {fmt(base_ns, unit)} | {fmt(cur_ns, unit)} | {change} | {flag} |")
    # Rows present only in the baseline (a deleted or renamed bench) keep
    # their last known value in the table so the summary records what
    # disappeared, not just that something did.
    for key in removed:
        base = baseline[key]
        unit = base.get("unit", "ns")
        print(f"| {key[1]}/{key[2]} | {fmt(base['mean_ns'], unit)} | - | removed | |")
    print()
    notes = []
    if added:
        notes.append(f"{added} new row(s)")
    if removed:
        notes.append(f"{len(removed)} removed row(s)")
    churn = f" ({', '.join(notes)})" if notes else ""
    if regressions:
        print(f"**{regressions} benchmark(s) regressed by more than "
              f"{args.threshold:.0f}% — worth a look before merging.**{churn}")
    else:
        print(f"No regression above {args.threshold:.0f}%.{churn}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
