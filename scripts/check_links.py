#!/usr/bin/env python3
"""Check that relative Markdown links in the repository's docs resolve.

Usage: check_links.py [FILE_OR_DIR ...]   (default: docs/ plus the
top-level README.md, ROADMAP.md, CHANGES.md if present)

Every inline link or image `[text](target)` whose target is not an
absolute URL (`http://`, `https://`, `mailto:`) is resolved relative to
the file containing it; a target that does not exist on disk is an
error. Pure-fragment links (`#section`) are accepted without checking
the heading, and a `path#fragment` target is checked for the path part
only. Angle-bracketed autolinks and code spans are ignored.

Exit code: 0 when every link resolves, 1 otherwise (one line per broken
link, `file:line: target`).
"""

import re
import sys
from pathlib import Path

# Inline links/images. Deliberately simple: no nesting, no titles —
# matching the style the docs actually use.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`[^`]*`")
FENCE = re.compile(r"^(```|~~~)")


def iter_markdown(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md" and path.exists():
            yield path


def check_file(path: Path) -> list:
    broken = []
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(CODE_SPAN.sub("``", line)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not (path.parent / file_part).exists():
                broken.append(f"{path}:{number}: {target}")
    return broken


def main(argv) -> int:
    roots = argv or [
        p for p in ("docs", "README.md", "ROADMAP.md", "CHANGES.md") if Path(p).exists()
    ]
    broken = []
    checked = 0
    for path in iter_markdown(roots):
        checked += 1
        broken.extend(check_file(path))
    for line in broken:
        print(line)
    print(f"{checked} file(s) checked, {len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
