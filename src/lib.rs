//! Workspace root crate.
//!
//! This package only exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The library API lives in
//! the [`mbaa`] facade crate and the `mbaa-*` workspace crates.

pub use mbaa;
