//! Synchronous round-based message-passing substrate.
//!
//! The paper assumes a fully connected, authenticated, reliable synchronous
//! network: every round is divided into a *send* phase, a *receive* phase
//! (where every message sent at the beginning of the round is delivered) and
//! a *compute* phase. This crate provides that substrate as an in-process
//! simulator, generalized to partial connectivity: every exchange is
//! mediated by a [`Topology`] (complete by default, reproducing the paper's
//! network exactly), and slots between non-neighbours become *structural*
//! non-deliveries, accounted separately from omission faults:
//!
//! * [`Outbox`] — what one process hands to the network in the send phase:
//!   for each destination, either a value or an omission. A correct process
//!   broadcasts the same value to everyone; a Byzantine process may put a
//!   different value (or nothing) in every slot.
//! * [`RoundDelivery`] — what one process receives in the receive phase:
//!   for each sender, either the delivered value or an omission. Because the
//!   network is authenticated, the sender identity attached to each slot is
//!   always genuine.
//! * [`SyncNetwork`] — the exchange engine that turns `n` outboxes into `n`
//!   deliveries while enforcing the reliability guarantees (no loss, no
//!   duplication, no creation) and recording a [`RoundTrace`]. Built
//!   [`with_topology`](SyncNetwork::with_topology), it masks delivery by
//!   adjacency.
//! * [`Topology`] / [`Adjacency`] — the communication graph: complete,
//!   ring lattice, random regular, grid, or an explicit validated
//!   adjacency matrix, with connectivity and degree queries.
//! * [`faults`] — the link-fault & dynamic-topology subsystem:
//!   [`DirectedAdjacency`] (one-way links), [`LinkFaultPlan`] (per-link
//!   omission probability and fixed delays with in-order buffering), and
//!   [`TopologySchedule`] (a possibly different realized graph per round —
//!   static, periodic, or seeded churn), with link-attributable
//!   non-deliveries accounted separately from adversary omissions.
//! * [`RoundTrace`] / [`NetworkTrace`] — per-round observation records used
//!   to classify the behaviour of each sender (benign / symmetric /
//!   asymmetric), which is how the Table 1 mapping is validated
//!   experimentally.
//! * [`NetworkStats`] — message accounting.
//!
//! # Example
//!
//! ```
//! use mbaa_net::{Outbox, SyncNetwork};
//! use mbaa_types::{ProcessId, Round, Value};
//!
//! let mut net = SyncNetwork::new(3);
//! let round = Round::ZERO;
//!
//! // Every process broadcasts its own index as its vote.
//! let outboxes: Vec<Outbox> = (0..3)
//!     .map(|i| Outbox::broadcast(3, ProcessId::new(i), Value::new(i as f64)))
//!     .collect();
//!
//! let deliveries = net.exchange(round, outboxes).unwrap();
//! // Process 0 heard 0.0, 1.0 and 2.0.
//! let heard = deliveries[0].received_multiset();
//! assert_eq!(heard.len(), 3);
//! assert_eq!(heard.max(), Some(Value::new(2.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod delivery;
pub mod faults;
mod network;
mod outbox;
mod stats;
mod topology;
mod trace;

pub use batch::{DeliveryRows, LaneDelivery, LaneSend, SharedRealization};
pub use delivery::{DeliveryMatrix, RoundDelivery};
pub use faults::{
    CompiledLinkFaults, DirectedAdjacency, DisconnectionPolicy, LinkFaultPlan, LinkFaultRule,
    RealizedSchedule, TopologySchedule,
};
pub use network::SyncNetwork;
pub use outbox::Outbox;
pub use stats::NetworkStats;
pub use topology::{Adjacency, Topology};
pub use trace::{NetworkTrace, ObservedBehavior, RoundTrace, SenderObservation};
