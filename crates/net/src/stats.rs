//! Message accounting for the synchronous network.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters describing the traffic handled by a [`SyncNetwork`](crate::SyncNetwork).
///
/// # Example
///
/// ```
/// use mbaa_net::{Outbox, SyncNetwork};
/// use mbaa_types::{ProcessId, Round, Value};
///
/// let mut net = SyncNetwork::new(2);
/// let outboxes = vec![
///     Outbox::broadcast(2, ProcessId::new(0), Value::new(1.0)),
///     Outbox::silent(2, ProcessId::new(1)),
/// ];
/// net.exchange(Round::ZERO, outboxes).unwrap();
/// let stats = net.stats();
/// assert_eq!(stats.rounds, 1);
/// assert_eq!(stats.messages_delivered, 2);
/// assert_eq!(stats.omissions, 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of rounds exchanged.
    pub rounds: u64,
    /// Number of point-to-point messages actually delivered.
    pub messages_delivered: u64,
    /// Number of omitted (never sent) point-to-point messages between
    /// *neighbours* — detected benign faults, attributable to the sender.
    pub omissions: u64,
    /// Number of sender/receiver slots with no link between the pair —
    /// structural non-deliveries on a partial
    /// [`Topology`](crate::Topology), **not** faults. Always zero on a
    /// fully connected network.
    pub unreachable: u64,
}

impl NetworkStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of sender/receiver slots processed (delivered, omitted,
    /// and structurally unreachable).
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.messages_delivered + self.omissions + self.unreachable
    }

    /// Average number of messages delivered per round, or `0.0` before the
    /// first round.
    #[must_use]
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.rounds as f64
        }
    }

    /// Merges counters from another stats record.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.rounds += other.rounds;
        self.messages_delivered += other.messages_delivered;
        self.omissions += other.omissions;
        self.unreachable += other.unreachable;
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages delivered, {} omissions, {} unreachable",
            self.rounds, self.messages_delivered, self.omissions, self.unreachable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = NetworkStats::new();
        assert_eq!(s.rounds, 0);
        assert_eq!(s.total_slots(), 0);
        assert_eq!(s.messages_per_round(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetworkStats {
            rounds: 2,
            messages_delivered: 10,
            omissions: 1,
            unreachable: 4,
        };
        let b = NetworkStats {
            rounds: 3,
            messages_delivered: 5,
            omissions: 2,
            unreachable: 1,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages_delivered, 15);
        assert_eq!(a.omissions, 3);
        assert_eq!(a.unreachable, 5);
        assert_eq!(a.total_slots(), 23);
        assert_eq!(a.messages_per_round(), 3.0);
    }

    #[test]
    fn display() {
        let s = NetworkStats {
            rounds: 1,
            messages_delivered: 4,
            omissions: 0,
            unreachable: 2,
        };
        assert_eq!(
            s.to_string(),
            "1 rounds, 4 messages delivered, 0 omissions, 2 unreachable"
        );
    }
}
