//! Message accounting for the synchronous network.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters describing the traffic handled by a [`SyncNetwork`](crate::SyncNetwork).
///
/// # Example
///
/// ```
/// use mbaa_net::{Outbox, SyncNetwork};
/// use mbaa_types::{ProcessId, Round, Value};
///
/// let mut net = SyncNetwork::new(2);
/// let outboxes = vec![
///     Outbox::broadcast(2, ProcessId::new(0), Value::new(1.0)),
///     Outbox::silent(2, ProcessId::new(1)),
/// ];
/// net.exchange(Round::ZERO, outboxes).unwrap();
/// let stats = net.stats();
/// assert_eq!(stats.rounds, 1);
/// assert_eq!(stats.messages_delivered, 2);
/// assert_eq!(stats.omissions, 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of rounds exchanged.
    pub rounds: u64,
    /// Number of point-to-point messages actually delivered.
    pub messages_delivered: u64,
    /// Number of omitted (never sent) point-to-point messages between
    /// *neighbours* — detected benign faults, attributable to the sender.
    pub omissions: u64,
    /// Number of sender/receiver slots with no link between the pair —
    /// structural non-deliveries on a partial
    /// [`Topology`](crate::Topology), **not** faults. Always zero on a
    /// fully connected network.
    pub unreachable: u64,
    /// Number of messages lost to a per-link omission fault
    /// ([`LinkFaultPlan`](crate::LinkFaultPlan)) — infrastructure faults
    /// attributable to the *link*, counted separately from the
    /// sender-attributable [`omissions`](NetworkStats::omissions).
    pub link_omissions: u64,
    /// Number of delivered messages that arrived at least one round after
    /// they were sent (a delayed link's in-order buffer handed them over
    /// late). A subset of
    /// [`messages_delivered`](NetworkStats::messages_delivered).
    pub link_delayed: u64,
    /// Number of receiver slots still empty because the link's delay
    /// buffer has not delivered yet (the message — or the send-phase
    /// outcome — is in flight). Slots in flight when a run terminates are
    /// never counted anywhere else.
    pub link_pending: u64,
    /// Number of rounds whose realized communication graph was
    /// disconnected, under the
    /// [`DisconnectionPolicy::Record`](crate::DisconnectionPolicy) policy
    /// of a dynamic [`TopologySchedule`](crate::TopologySchedule).
    pub disconnected_rounds: u64,
}

impl NetworkStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of sender/receiver slots processed: delivered, omitted
    /// (by the sender or by a faulty link), structurally unreachable, or
    /// still pending in a delay buffer.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.messages_delivered
            + self.omissions
            + self.unreachable
            + self.link_omissions
            + self.link_pending
    }

    /// Average number of messages delivered per round, or `0.0` before the
    /// first round.
    #[must_use]
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.rounds as f64
        }
    }

    /// Merges counters from another stats record.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.rounds += other.rounds;
        self.messages_delivered += other.messages_delivered;
        self.omissions += other.omissions;
        self.unreachable += other.unreachable;
        self.link_omissions += other.link_omissions;
        self.link_delayed += other.link_delayed;
        self.link_pending += other.link_pending;
        self.disconnected_rounds += other.disconnected_rounds;
    }

    /// Returns `true` when any counter attributable to the link-fault
    /// subsystem is non-zero.
    #[must_use]
    pub fn has_link_faults(&self) -> bool {
        self.link_omissions > 0
            || self.link_delayed > 0
            || self.link_pending > 0
            || self.disconnected_rounds > 0
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages delivered, {} omissions, {} unreachable",
            self.rounds, self.messages_delivered, self.omissions, self.unreachable
        )?;
        if self.has_link_faults() {
            write!(
                f,
                ", {} link-omitted, {} delayed, {} pending, {} disconnected rounds",
                self.link_omissions, self.link_delayed, self.link_pending, self.disconnected_rounds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = NetworkStats::new();
        assert_eq!(s.rounds, 0);
        assert_eq!(s.total_slots(), 0);
        assert_eq!(s.messages_per_round(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetworkStats {
            rounds: 2,
            messages_delivered: 10,
            omissions: 1,
            unreachable: 4,
            link_omissions: 2,
            link_delayed: 1,
            link_pending: 3,
            disconnected_rounds: 1,
        };
        let b = NetworkStats {
            rounds: 3,
            messages_delivered: 5,
            omissions: 2,
            unreachable: 1,
            link_omissions: 1,
            link_delayed: 2,
            link_pending: 0,
            disconnected_rounds: 0,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages_delivered, 15);
        assert_eq!(a.omissions, 3);
        assert_eq!(a.unreachable, 5);
        assert_eq!(a.link_omissions, 3);
        assert_eq!(a.link_delayed, 3);
        assert_eq!(a.link_pending, 3);
        assert_eq!(a.disconnected_rounds, 1);
        assert_eq!(a.total_slots(), 29);
        assert_eq!(a.messages_per_round(), 3.0);
        assert!(a.has_link_faults());
    }

    #[test]
    fn display() {
        let s = NetworkStats {
            rounds: 1,
            messages_delivered: 4,
            omissions: 0,
            unreachable: 2,
            ..NetworkStats::default()
        };
        assert!(!s.has_link_faults());
        assert_eq!(
            s.to_string(),
            "1 rounds, 4 messages delivered, 0 omissions, 2 unreachable"
        );
        let faulted = NetworkStats {
            link_omissions: 3,
            link_delayed: 1,
            link_pending: 2,
            disconnected_rounds: 1,
            ..s
        };
        assert_eq!(
            faulted.to_string(),
            "1 rounds, 4 messages delivered, 0 omissions, 2 unreachable, \
             3 link-omitted, 1 delayed, 2 pending, 1 disconnected rounds"
        );
    }
}
