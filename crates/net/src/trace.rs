//! Observation traces: what every receiver saw from every sender.
//!
//! Traces exist for two reasons. First, they are the raw material of the
//! **Table 1 reproduction**: by looking at what one sender delivered to the
//! different receivers in one round, we can classify its *observed*
//! behaviour as benign (omitted everywhere), symmetric (same value
//! everywhere) or asymmetric (different values to different receivers).
//! Second, they feed the network statistics used by the benchmarks.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{ProcessId, Round, Value};

use crate::{Adjacency, DirectedAdjacency, Outbox};

/// The behaviour of a sender in one round, as perceived by the receivers.
///
/// This is the *observable* counterpart of
/// [`MixedFaultClass`](mbaa_types::MixedFaultClass): a correct broadcast is
/// indistinguishable from a symmetric fault by looking at one round alone, so
/// the classification carries a separate `CorrectBroadcast` variant for
/// senders whose uniform value matches their expected correct vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservedBehavior {
    /// The sender omitted its message to every receiver (self-incriminating,
    /// i.e. benign).
    Benign,
    /// The sender delivered the same value to every receiver, and it equals
    /// the vote a correct process would have sent.
    CorrectBroadcast,
    /// The sender delivered the same (unexpected) value to every receiver.
    Symmetric,
    /// The sender delivered different values (or a mix of values and
    /// omissions) to different receivers.
    Asymmetric,
}

impl fmt::Display for ObservedBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObservedBehavior::Benign => "benign",
            ObservedBehavior::CorrectBroadcast => "correct",
            ObservedBehavior::Symmetric => "symmetric",
            ObservedBehavior::Asymmetric => "asymmetric",
        };
        f.write_str(name)
    }
}

/// What one sender delivered to each receiver in one round, together with
/// which receivers the sender could structurally reach at all.
///
/// On a partial [`Topology`](crate::Topology) a non-neighbour's slot is
/// always empty — that is a property of the graph, not of the sender's
/// behaviour, so [`classify`](SenderObservation::classify) only looks at
/// the reachable slots and unreachable receivers are flagged separately
/// (see [`reaches`](SenderObservation::reaches)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SenderObservation {
    sender: ProcessId,
    delivered: Vec<Option<Value>>,
    /// `reachable[r]` is `false` when the sender shares no link with `r`
    /// (all `true` on a fully connected network).
    reachable: Vec<bool>,
    /// `link_faulted[r]` is `true` when the slot to `r` was governed by a
    /// per-link fault this round (the link omitted the message, or a delay
    /// buffer shifted it to a later round) — a property of the *link*, not
    /// of the sender, so classification skips these slots. All `false` on a
    /// fault-free network.
    link_faulted: Vec<bool>,
}

impl SenderObservation {
    /// Builds the observation of a sender from its outbox (what the network
    /// actually delivered, since the network is reliable) on a fully
    /// connected network.
    #[must_use]
    pub fn from_outbox(outbox: &Outbox) -> Self {
        SenderObservation {
            sender: outbox.sender(),
            delivered: (0..outbox.universe())
                .map(|i| outbox.get(ProcessId::new(i)))
                .collect(),
            reachable: vec![true; outbox.universe()],
            link_faulted: vec![false; outbox.universe()],
        }
    }

    /// Builds the observation of a sender whose delivery was masked by a
    /// partial adjacency: non-neighbour slots become structural `None`s and
    /// are flagged unreachable.
    #[must_use]
    pub fn from_outbox_masked(outbox: &Outbox, adjacency: &Adjacency) -> Self {
        let sender = outbox.sender();
        let reachable: Vec<bool> = (0..outbox.universe())
            .map(|i| adjacency.connected(sender, ProcessId::new(i)))
            .collect();
        Self::from_reachability(outbox, reachable)
    }

    /// Builds the observation of a sender whose delivery was masked by a
    /// **directed** graph: slots to receivers outside the sender's
    /// out-neighbourhood become structural `None`s and are flagged
    /// unreachable.
    #[must_use]
    pub fn from_outbox_directed(outbox: &Outbox, directed: &DirectedAdjacency) -> Self {
        let sender = outbox.sender();
        let reachable: Vec<bool> = (0..outbox.universe())
            .map(|i| directed.delivers(sender, ProcessId::new(i)))
            .collect();
        Self::from_reachability(outbox, reachable)
    }

    fn from_reachability(outbox: &Outbox, reachable: Vec<bool>) -> Self {
        SenderObservation {
            sender: outbox.sender(),
            delivered: reachable
                .iter()
                .enumerate()
                .map(|(i, &linked)| {
                    if linked {
                        outbox.get(ProcessId::new(i))
                    } else {
                        None
                    }
                })
                .collect(),
            reachable,
            link_faulted: vec![false; outbox.universe()],
        }
    }

    /// Builds the observation of a sender on a dynamic, link-faulted
    /// network: `reachable` is the structural mask of the round's realized
    /// graph, and `link_faulted` flags the slots whose outcome was decided
    /// by a per-link fault (omission draw or delay buffer) rather than by
    /// the sender — those slots read as `None` and are excluded from
    /// [`classify`](SenderObservation::classify).
    ///
    /// # Panics
    ///
    /// Panics if the flag vectors do not cover the outbox's universe.
    #[must_use]
    pub fn from_outbox_with_faults(
        outbox: &Outbox,
        reachable: Vec<bool>,
        link_faulted: Vec<bool>,
    ) -> Self {
        let n = outbox.universe();
        assert!(
            reachable.len() == n && link_faulted.len() == n,
            "flag vectors must cover the outbox universe"
        );
        SenderObservation {
            sender: outbox.sender(),
            delivered: (0..n)
                .map(|i| {
                    if reachable[i] && !link_faulted[i] {
                        outbox.get(ProcessId::new(i))
                    } else {
                        None
                    }
                })
                .collect(),
            reachable,
            link_faulted,
        }
    }

    /// The observed sender.
    #[must_use]
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// What the given receiver got from this sender (`None` for both
    /// omissions and structurally unreachable receivers; disambiguate with
    /// [`reaches`](SenderObservation::reaches)).
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    #[must_use]
    pub fn delivered_to(&self, receiver: ProcessId) -> Option<Value> {
        self.delivered[receiver.index()]
    }

    /// Returns `true` when the sender shares a link with `receiver` (always
    /// `true` on a fully connected network).
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    #[must_use]
    pub fn reaches(&self, receiver: ProcessId) -> bool {
        self.reachable[receiver.index()]
    }

    /// Returns `true` when the slot to `receiver` was governed by a
    /// per-link fault this round (omitted by the link or shifted by a delay
    /// buffer) — always `false` on a fault-free network. A link with a
    /// fixed delay is flagged in *every* round, not just during warm-up:
    /// its slot always carries another round's value, so classification
    /// abstains on it for the run's duration rather than judging a sender
    /// across rounds.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    #[must_use]
    pub fn link_faulted(&self, receiver: ProcessId) -> bool {
        self.link_faulted[receiver.index()]
    }

    /// The receivers the sender shares no link with, in ascending order
    /// (empty on a fully connected network).
    #[must_use]
    pub fn unreachable_receivers(&self) -> Vec<ProcessId> {
        self.reachable
            .iter()
            .enumerate()
            .filter_map(|(i, &linked)| (!linked).then_some(ProcessId::new(i)))
            .collect()
    }

    /// Classifies the sender's behaviour this round, considering only the
    /// receivers it can structurally reach over link-fault-free slots: a
    /// message the *link* dropped or delayed says nothing about the sender,
    /// so those slots are skipped exactly like unreachable ones.
    ///
    /// `expected` is the vote a correct process in the sender's position
    /// would have broadcast (when known); it separates
    /// [`ObservedBehavior::CorrectBroadcast`] from
    /// [`ObservedBehavior::Symmetric`]. Pass `None` when no expectation is
    /// available, in which case any uniform broadcast is reported as
    /// `CorrectBroadcast`.
    #[must_use]
    pub fn classify(&self, expected: Option<Value>) -> ObservedBehavior {
        let mut slots = self
            .delivered
            .iter()
            .zip(self.reachable.iter().zip(&self.link_faulted))
            .filter_map(|(slot, (&linked, &faulted))| (linked && !faulted).then_some(*slot));
        let Some(first) = slots.next() else {
            // No reachable receiver at all (an isolated sender): nothing
            // observable beyond silence.
            return ObservedBehavior::Benign;
        };
        if !slots.all(|d| d == first) {
            return ObservedBehavior::Asymmetric;
        }
        // Uniform: either omitted everywhere it reaches (benign) or the
        // same value everywhere it reaches.
        let Some(value) = first else {
            return ObservedBehavior::Benign;
        };
        match expected {
            Some(e) if e != value => ObservedBehavior::Symmetric,
            _ => ObservedBehavior::CorrectBroadcast,
        }
    }
}

/// All sender observations of a single round.
///
/// Internally the round is four flat, sender-major slot arrays (`senders`,
/// plus `n × n` `delivered` / `reachable` / `link_faulted` grids) rather
/// than one heap object per sender: recording a round costs a **fixed
/// number** of buffer allocations no matter how large the universe is,
/// which keeps `Observe::Full` runs allocation-flat. The per-sender
/// [`SenderObservation`] view is assembled on demand by
/// [`observation`](RoundTrace::observation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    round: Round,
    universe: usize,
    senders: Vec<ProcessId>,
    /// `delivered[s * n + r]` is what receiver `r` got from sender `s`.
    delivered: Vec<Option<Value>>,
    /// `reachable[s * n + r]` is `false` when `s` shares no link with `r`.
    reachable: Vec<bool>,
    /// `link_faulted[s * n + r]` flags slots governed by a per-link fault.
    link_faulted: Vec<bool>,
}

impl RoundTrace {
    /// Allocates the flat slot arrays for `outboxes.len()` senders — the
    /// only allocations a recorded round performs, regardless of `n` —
    /// initialized to the fully connected, fault-free defaults.
    ///
    /// # Panics
    ///
    /// Panics if an outbox does not cover the sender universe.
    fn with_dimensions(round: Round, outboxes: &[Outbox]) -> Self {
        let n = outboxes.len();
        assert!(
            outboxes.iter().all(|o| o.universe() == n),
            "every outbox must cover the sender universe"
        );
        RoundTrace {
            round,
            universe: n,
            senders: outboxes.iter().map(Outbox::sender).collect(),
            delivered: vec![None; n * n],
            reachable: vec![true; n * n],
            link_faulted: vec![false; n * n],
        }
    }

    /// Builds the round trace from every outbox handed to the network.
    ///
    /// # Panics
    ///
    /// Panics if an outbox does not cover the sender universe.
    #[must_use]
    pub fn from_outboxes(round: Round, outboxes: &[Outbox]) -> Self {
        let mut trace = Self::with_dimensions(round, outboxes);
        let n = trace.universe;
        // mbaa: alloc-free
        {
            for (s, outbox) in outboxes.iter().enumerate() {
                let row = &mut trace.delivered[s * n..(s + 1) * n];
                for (r, slot) in row.iter_mut().enumerate() {
                    *slot = outbox.get(ProcessId::new(r));
                }
            }
        }
        trace
    }

    /// Builds the round trace of a topology-mediated exchange: every
    /// observation is masked by the adjacency and flags its unreachable
    /// receivers.
    ///
    /// # Panics
    ///
    /// Panics if an outbox does not cover the sender universe.
    #[must_use]
    pub fn from_outboxes_masked(round: Round, outboxes: &[Outbox], adjacency: &Adjacency) -> Self {
        let mut trace = Self::with_dimensions(round, outboxes);
        let n = trace.universe;
        // mbaa: alloc-free
        {
            for (s, outbox) in outboxes.iter().enumerate() {
                let sender = outbox.sender();
                for r in 0..n {
                    let receiver = ProcessId::new(r);
                    let linked = adjacency.connected(sender, receiver);
                    trace.reachable[s * n + r] = linked;
                    trace.delivered[s * n + r] = if linked { outbox.get(receiver) } else { None };
                }
            }
        }
        trace
    }

    /// Builds the round trace of a **directed**-topology exchange.
    ///
    /// # Panics
    ///
    /// Panics if an outbox does not cover the sender universe.
    #[must_use]
    pub fn from_outboxes_directed(
        round: Round,
        outboxes: &[Outbox],
        directed: &DirectedAdjacency,
    ) -> Self {
        let mut trace = Self::with_dimensions(round, outboxes);
        let n = trace.universe;
        // mbaa: alloc-free
        {
            for (s, outbox) in outboxes.iter().enumerate() {
                let sender = outbox.sender();
                for r in 0..n {
                    let receiver = ProcessId::new(r);
                    let delivers = directed.delivers(sender, receiver);
                    trace.reachable[s * n + r] = delivers;
                    trace.delivered[s * n + r] = if delivers { outbox.get(receiver) } else { None };
                }
            }
        }
        trace
    }

    /// Builds the round trace of a dynamic, link-faulted exchange from the
    /// network's flat per-round flag scratch: `reach_flags[s * n + r]` is
    /// the round's realized adjacency and `link_flags[s * n + r]` marks
    /// slots governed by a per-link fault (omission draw or delay buffer).
    /// The flags are copied wholesale into the trace's slot grids — no
    /// per-sender buffers are ever materialized.
    ///
    /// # Panics
    ///
    /// Panics if an outbox does not cover the sender universe, or if a flag
    /// slice does not cover the `n × n` slot grid.
    #[must_use]
    pub fn from_outboxes_with_flags(
        round: Round,
        outboxes: &[Outbox],
        reach_flags: &[bool],
        link_flags: &[bool],
    ) -> Self {
        let mut trace = Self::with_dimensions(round, outboxes);
        let n = trace.universe;
        assert!(
            reach_flags.len() == n * n && link_flags.len() == n * n,
            "flag slices must cover the n × n slot grid"
        );
        // mbaa: alloc-free
        {
            trace.reachable.copy_from_slice(reach_flags);
            trace.link_faulted.copy_from_slice(link_flags);
            for (s, outbox) in outboxes.iter().enumerate() {
                for r in 0..n {
                    let slot = s * n + r;
                    trace.delivered[slot] = if reach_flags[slot] && !link_flags[slot] {
                        outbox.get(ProcessId::new(r))
                    } else {
                        None
                    };
                }
            }
        }
        trace
    }

    /// The round this trace describes.
    #[must_use]
    pub fn round(&self) -> Round {
        self.round
    }

    /// The observation of the given sender, assembled from the flat slot
    /// grids. This is the inspection API — it allocates the per-sender
    /// view, so classification loops should hoist it out of per-receiver
    /// code; the recording side never builds these.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is outside the universe.
    #[must_use]
    pub fn observation(&self, sender: ProcessId) -> SenderObservation {
        let n = self.universe;
        let s = sender.index();
        SenderObservation {
            sender: self.senders[s],
            delivered: self.delivered[s * n..(s + 1) * n].to_vec(),
            reachable: self.reachable[s * n..(s + 1) * n].to_vec(),
            link_faulted: self.link_faulted[s * n..(s + 1) * n].to_vec(),
        }
    }

    /// Iterates over all sender observations (assembled per sender, see
    /// [`observation`](RoundTrace::observation)).
    pub fn iter(&self) -> impl Iterator<Item = SenderObservation> + '_ {
        (0..self.universe).map(|s| self.observation(ProcessId::new(s)))
    }

    /// Number of senders covered.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }
}

/// The accumulated traces of a whole execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkTrace {
    rounds: Vec<RoundTrace>,
}

impl NetworkTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the trace of one round.
    pub fn push(&mut self, round_trace: RoundTrace) {
        self.rounds.push(round_trace);
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` when no round has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The trace of the given recorded round (by position, not round index).
    #[must_use]
    pub fn get(&self, position: usize) -> Option<&RoundTrace> {
        self.rounds.get(position)
    }

    /// Iterates over all recorded rounds.
    pub fn iter(&self) -> impl Iterator<Item = &RoundTrace> {
        self.rounds.iter()
    }

    /// The most recent round trace, if any.
    #[must_use]
    pub fn last(&self) -> Option<&RoundTrace> {
        self.rounds.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn benign_classification_for_silence() {
        let outbox = Outbox::silent(3, pid(0));
        let obs = SenderObservation::from_outbox(&outbox);
        assert_eq!(
            obs.classify(Some(Value::new(1.0))),
            ObservedBehavior::Benign
        );
        assert_eq!(obs.classify(None), ObservedBehavior::Benign);
    }

    #[test]
    fn correct_broadcast_matches_expectation() {
        let outbox = Outbox::broadcast(3, pid(1), Value::new(2.0));
        let obs = SenderObservation::from_outbox(&outbox);
        assert_eq!(
            obs.classify(Some(Value::new(2.0))),
            ObservedBehavior::CorrectBroadcast
        );
        assert_eq!(obs.classify(None), ObservedBehavior::CorrectBroadcast);
    }

    #[test]
    fn symmetric_when_uniform_but_wrong() {
        let outbox = Outbox::broadcast(3, pid(1), Value::new(42.0));
        let obs = SenderObservation::from_outbox(&outbox);
        assert_eq!(
            obs.classify(Some(Value::new(2.0))),
            ObservedBehavior::Symmetric
        );
    }

    #[test]
    fn asymmetric_when_values_differ() {
        let outbox = Outbox::per_receiver(
            pid(0),
            vec![
                Some(Value::new(0.0)),
                Some(Value::new(1.0)),
                Some(Value::new(0.0)),
            ],
        );
        let obs = SenderObservation::from_outbox(&outbox);
        assert_eq!(obs.classify(None), ObservedBehavior::Asymmetric);
    }

    #[test]
    fn partial_omission_is_asymmetric() {
        let outbox = Outbox::per_receiver(pid(0), vec![Some(Value::new(0.0)), None]);
        let obs = SenderObservation::from_outbox(&outbox);
        assert_eq!(obs.classify(None), ObservedBehavior::Asymmetric);
    }

    #[test]
    fn observation_delivered_to() {
        let outbox = Outbox::per_receiver(pid(3), vec![Some(Value::new(5.0)), None]);
        let obs = SenderObservation::from_outbox(&outbox);
        assert_eq!(obs.sender(), pid(3));
        assert_eq!(obs.delivered_to(pid(0)), Some(Value::new(5.0)));
        assert_eq!(obs.delivered_to(pid(1)), None);
    }

    #[test]
    fn round_trace_collects_all_senders() {
        let outboxes = vec![
            Outbox::broadcast(2, pid(0), Value::new(1.0)),
            Outbox::silent(2, pid(1)),
        ];
        let trace = RoundTrace::from_outboxes(Round::new(7), &outboxes);
        assert_eq!(trace.round(), Round::new(7));
        assert_eq!(trace.universe(), 2);
        assert_eq!(
            trace.observation(pid(1)).classify(None),
            ObservedBehavior::Benign
        );
        assert_eq!(trace.iter().count(), 2);
    }

    #[test]
    fn network_trace_accumulates_rounds() {
        let mut trace = NetworkTrace::new();
        assert!(trace.is_empty());
        let outboxes = vec![Outbox::broadcast(1, pid(0), Value::new(0.0))];
        trace.push(RoundTrace::from_outboxes(Round::ZERO, &outboxes));
        trace.push(RoundTrace::from_outboxes(Round::new(1), &outboxes));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.get(0).unwrap().round(), Round::ZERO);
        assert_eq!(trace.last().unwrap().round(), Round::new(1));
        assert_eq!(trace.iter().count(), 2);
    }

    #[test]
    fn masked_observation_ignores_unreachable_slots() {
        // 0 — 1 linked, 2 unreachable from 0.
        let adjacency = Adjacency::from_edges(3, [(0, 1)]).unwrap();
        let outbox = Outbox::broadcast(3, pid(0), Value::new(1.0));
        let obs = SenderObservation::from_outbox_masked(&outbox, &adjacency);
        // The masked slot reads as None but is flagged structural…
        assert_eq!(obs.delivered_to(pid(2)), None);
        assert!(!obs.reaches(pid(2)));
        assert!(obs.reaches(pid(1)));
        assert_eq!(obs.unreachable_receivers(), vec![pid(2)]);
        // …and the classification only judges the reachable audience: a
        // uniform broadcast stays a broadcast, not an asymmetric fault.
        assert_eq!(
            obs.classify(Some(Value::new(1.0))),
            ObservedBehavior::CorrectBroadcast
        );
        assert_eq!(
            obs.classify(Some(Value::new(2.0))),
            ObservedBehavior::Symmetric
        );
    }

    #[test]
    fn masked_silence_is_benign_and_masked_mixture_is_asymmetric() {
        let adjacency = Adjacency::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let silent = SenderObservation::from_outbox_masked(&Outbox::silent(3, pid(0)), &adjacency);
        assert_eq!(silent.classify(None), ObservedBehavior::Benign);

        let mixed = SenderObservation::from_outbox_masked(
            &Outbox::per_receiver(
                pid(0),
                vec![Some(Value::new(0.0)), Some(Value::new(1.0)), None],
            ),
            &adjacency,
        );
        assert_eq!(mixed.classify(None), ObservedBehavior::Asymmetric);
    }

    #[test]
    fn fully_connected_observation_reaches_everyone() {
        let outbox = Outbox::broadcast(2, pid(0), Value::new(1.0));
        let obs = SenderObservation::from_outbox(&outbox);
        assert!(obs.reaches(pid(0)) && obs.reaches(pid(1)));
        assert!(obs.unreachable_receivers().is_empty());
    }

    #[test]
    fn masked_round_trace_carries_reachability() {
        let adjacency = Adjacency::from_edges(2, []).unwrap();
        let outboxes = vec![
            Outbox::broadcast(2, pid(0), Value::new(1.0)),
            Outbox::broadcast(2, pid(1), Value::new(2.0)),
        ];
        let trace = RoundTrace::from_outboxes_masked(Round::ZERO, &outboxes, &adjacency);
        assert!(!trace.observation(pid(0)).reaches(pid(1)));
        assert!(trace.observation(pid(0)).reaches(pid(0)));
    }

    #[test]
    fn link_faulted_slots_are_excluded_from_classification() {
        // A correct broadcast whose slot to p2 was eaten by the link: still
        // a correct broadcast, not an asymmetric fault.
        let outbox = Outbox::broadcast(3, pid(0), Value::new(1.0));
        let obs = SenderObservation::from_outbox_with_faults(
            &outbox,
            vec![true, true, true],
            vec![false, false, true],
        );
        assert!(obs.link_faulted(pid(2)));
        assert!(!obs.link_faulted(pid(1)));
        assert!(obs.reaches(pid(2)));
        assert_eq!(obs.delivered_to(pid(2)), None);
        assert_eq!(
            obs.classify(Some(Value::new(1.0))),
            ObservedBehavior::CorrectBroadcast
        );
        // Every judgeable slot gone: nothing observable beyond silence.
        let dark = SenderObservation::from_outbox_with_faults(
            &outbox,
            vec![true, true, true],
            vec![true, true, true],
        );
        assert_eq!(dark.classify(None), ObservedBehavior::Benign);
    }

    #[test]
    fn directed_observation_uses_out_reachability() {
        let directed = DirectedAdjacency::from_arcs(3, [(0, 1)]).unwrap();
        let outbox = Outbox::broadcast(3, pid(0), Value::new(2.0));
        let obs = SenderObservation::from_outbox_directed(&outbox, &directed);
        assert!(obs.reaches(pid(1)));
        assert!(!obs.reaches(pid(2)));
        assert_eq!(obs.classify(None), ObservedBehavior::CorrectBroadcast);
        // p1 cannot reach anyone but itself.
        let back = SenderObservation::from_outbox_directed(
            &Outbox::broadcast(3, pid(1), Value::new(3.0)),
            &directed,
        );
        assert!(!back.reaches(pid(0)));
        assert_eq!(back.unreachable_receivers(), vec![pid(0), pid(2)]);
    }

    #[test]
    fn observed_behavior_display() {
        assert_eq!(ObservedBehavior::Benign.to_string(), "benign");
        assert_eq!(ObservedBehavior::CorrectBroadcast.to_string(), "correct");
        assert_eq!(ObservedBehavior::Symmetric.to_string(), "symmetric");
        assert_eq!(ObservedBehavior::Asymmetric.to_string(), "asymmetric");
    }
}
