//! Network topologies: which process pairs share a link.
//!
//! The paper assumes a fully connected network, but an entire family of
//! results (partial-broadcast and bounded-connectivity regimes in the style
//! of Li–Hurfin–Wang, arXiv:1206.0089) lives on sparser graphs. This module
//! makes the communication graph a first-class, serializable description:
//!
//! * [`Topology`] — a *description* of the graph family (complete, ring
//!   lattice, random regular, grid, or an explicit adjacency matrix) that
//!   [`realize`](Topology::realize)s into a concrete graph for a given
//!   system size and seed.
//! * [`Adjacency`] — the realized, validated graph: a symmetric boolean
//!   matrix with connectivity and degree queries. Self-delivery is always
//!   on (every process hears its own broadcast), matching the paper's
//!   all-to-all exchange on the complete graph.
//!
//! A [`SyncNetwork`](crate::SyncNetwork) built
//! [`with_topology`](crate::SyncNetwork::with_topology) masks delivery by
//! adjacency: slots between non-neighbours become *structural* `None`s,
//! counted separately from omission faults in
//! [`NetworkStats`](crate::NetworkStats) and flagged in the trace.
//!
//! # Example
//!
//! ```
//! use mbaa_net::Topology;
//!
//! // A ring lattice where every process hears its 2 nearest neighbours on
//! // each side: degree 4, connected for every n.
//! let adjacency = Topology::Ring { k: 2 }.realize(9, 0)?;
//! assert!(adjacency.is_connected());
//! assert_eq!(adjacency.min_degree(), 4);
//! assert_eq!(adjacency.min_closed_neighborhood(), 5);
//!
//! // The complete topology realizes to the all-to-all graph.
//! assert!(Topology::Complete.realize(9, 0)?.is_complete());
//! # Ok::<(), mbaa_types::Error>(())
//! ```

use std::fmt;

use rand::{rngs::StdRng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use mbaa_types::{Error, ProcessId, Result};

/// How many stub-matching attempts [`Topology::RandomRegular`] makes before
/// giving up on realizing a connected simple regular graph.
const RANDOM_REGULAR_ATTEMPTS: usize = 1_000;

/// A description of the communication graph connecting the processes.
///
/// A topology is *scenario-level plain data*: it does not know the system
/// size until it is [`realize`](Topology::realize)d into an [`Adjacency`].
/// [`Topology::Complete`] is the default everywhere and reproduces the
/// paper's fully connected network bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of processes shares a link (the paper's assumption).
    #[default]
    Complete,
    /// A ring lattice (circulant graph): process `i` is linked to its `k`
    /// nearest neighbours on each side, `i ± 1, …, i ± k` (mod `n`). With
    /// `2k + 1 >= n` the lattice covers every pair and normalizes to the
    /// complete graph.
    Ring {
        /// Neighbours on each side of the ring (degree is `2k`, clamped).
        k: usize,
    },
    /// A random `degree`-regular simple graph, realized by greedy stub
    /// matching and re-drawn (deterministically from the seed) until it is
    /// simple and connected.
    RandomRegular {
        /// The degree of every process.
        degree: usize,
    },
    /// A nearly square two-dimensional grid with 4-neighbourhoods, laid out
    /// row-major; the last row may be partial.
    Grid,
    /// An explicit adjacency matrix (see [`Adjacency::from_matrix`]).
    Custom(Adjacency),
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Complete => f.write_str("complete"),
            Topology::Ring { k } => write!(f, "ring(k={k})"),
            Topology::RandomRegular { degree } => write!(f, "random-regular(d={degree})"),
            Topology::Grid => f.write_str("grid"),
            Topology::Custom(adjacency) => write!(f, "custom(n={})", adjacency.n()),
        }
    }
}

impl Topology {
    /// Returns `true` for the [`Topology::Complete`] description. Note that
    /// other descriptions may still *realize* to a complete graph (a ring
    /// with `2k + 1 >= n`); use [`Adjacency::is_complete`] to detect that.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Topology::Complete)
    }

    /// Realizes this description into a concrete validated graph over `n`
    /// processes. `seed` only matters for [`Topology::RandomRegular`]
    /// (same seed, same graph); every other family is deterministic in `n`
    /// alone.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `n == 0`, when a custom matrix
    ///   covers a different universe than `n`, when a random-regular degree
    ///   is infeasible (`degree >= n` or `n * degree` odd), or when no
    ///   connected simple regular graph was found within the attempt
    ///   budget.
    ///
    /// Realization does **not** reject disconnected graphs (a `Ring { k: 0
    /// }` realizes to isolated vertices); the protocol configuration layer
    /// does, with the typed [`Error::DisconnectedTopology`].
    pub fn realize(&self, n: usize, seed: u64) -> Result<Adjacency> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "a topology needs at least one process".into(),
            ));
        }
        match self {
            Topology::Complete => Ok(Adjacency::complete(n)),
            Topology::Ring { k } => Ok(Adjacency::ring(n, *k)),
            Topology::RandomRegular { degree } => Adjacency::random_regular(n, *degree, seed),
            Topology::Grid => Ok(Adjacency::grid(n)),
            Topology::Custom(adjacency) => {
                if adjacency.n() != n {
                    return Err(Error::InvalidParameter(format!(
                        "custom adjacency covers {} processes, expected {n}",
                        adjacency.n()
                    )));
                }
                Ok(adjacency.clone())
            }
        }
    }
}

/// A realized, validated communication graph: a symmetric `n × n` boolean
/// matrix whose diagonal is always set (self-delivery is structural).
///
/// Constructed by [`Topology::realize`] or directly from
/// [`Adjacency::from_matrix`] / [`Adjacency::from_edges`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    n: usize,
    /// Row-major `n * n` link matrix; `bits[a * n + b]` means `a` and `b`
    /// share a link. Symmetric, diagonal always `true`.
    bits: Vec<bool>,
}

impl Adjacency {
    /// The all-to-all graph over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn complete(n: usize) -> Self {
        assert!(n > 0, "a graph needs at least one process");
        Adjacency {
            n,
            bits: vec![true; n * n],
        }
    }

    /// The ring lattice over `n` processes with `k` neighbours on each
    /// side. `k >= n` is clamped (offsets wrap), so an over-wide ring
    /// normalizes to the complete graph; `k == 0` yields isolated vertices.
    #[must_use]
    pub fn ring(n: usize, k: usize) -> Self {
        assert!(n > 0, "a graph needs at least one process");
        let mut adjacency = Adjacency::empty(n);
        let k = k.min(n.saturating_sub(1));
        for i in 0..n {
            for offset in 1..=k {
                adjacency.link(i, (i + offset) % n);
            }
        }
        adjacency
    }

    /// The nearly square 2D grid over `n` processes with 4-neighbourhoods.
    /// Rows are `⌊√n⌋`-by-`⌈n / ⌊√n⌋⌉` row-major; the last row may be
    /// partial. Connected for every `n >= 1`.
    #[must_use]
    pub fn grid(n: usize) -> Self {
        assert!(n > 0, "a graph needs at least one process");
        let rows = (1..=n).take_while(|r| r * r <= n).last().unwrap_or(1);
        let cols = n.div_ceil(rows);
        let mut adjacency = Adjacency::empty(n);
        for i in 0..n {
            if (i + 1) % cols != 0 && i + 1 < n {
                adjacency.link(i, i + 1);
            }
            if i + cols < n {
                adjacency.link(i, i + cols);
            }
        }
        adjacency
    }

    /// A random `degree`-regular simple connected graph over `n`
    /// processes, drawn by greedy stub matching and re-drawn (from a
    /// deterministic seed stream) until simple and connected.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when `degree >= n`, when `n * degree` is
    /// odd (no regular graph exists), or when no connected simple graph was
    /// found within the attempt budget.
    pub fn random_regular(n: usize, degree: usize, seed: u64) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "a graph needs at least one process".into(),
            ));
        }
        if degree >= n {
            return Err(Error::InvalidParameter(format!(
                "a {degree}-regular graph needs more than {degree} processes, got n={n}"
            )));
        }
        if !(n * degree).is_multiple_of(2) {
            return Err(Error::InvalidParameter(format!(
                "no {degree}-regular graph on {n} processes exists (n * degree must be even)"
            )));
        }
        if degree == 0 {
            // Isolated vertices: legal as a graph; rejected downstream as
            // disconnected whenever n > 1.
            return Ok(Adjacency::empty(n));
        }
        // Decorrelate the graph stream from the adversary/workload streams
        // that consume the same run seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7093_A5B0_C41D_22E7);
        for _ in 0..RANDOM_REGULAR_ATTEMPTS {
            if let Some(adjacency) = Adjacency::pairing_attempt(n, degree, &mut rng) {
                // A 1-regular matching can never be connected beyond n = 2:
                // hand it back as drawn and let the configuration layer
                // reject it with the typed disconnection error.
                if degree < 2 || adjacency.is_connected() {
                    return Ok(adjacency);
                }
            }
        }
        Err(Error::InvalidParameter(format!(
            "could not realize a connected {degree}-regular graph on {n} processes \
             within {RANDOM_REGULAR_ATTEMPTS} attempts"
        )))
    }

    /// One stub-matching draw: greedily pair random stubs, skipping
    /// self-loops and duplicate edges, and give up (return `None`) when the
    /// remaining stubs admit no legal pairing — unlike the plain pairing
    /// model, this keeps the per-attempt success probability high even for
    /// dense degrees.
    fn pairing_attempt(n: usize, degree: usize, rng: &mut StdRng) -> Option<Adjacency> {
        let mut stubs: Vec<usize> = (0..n)
            .flat_map(|i| std::iter::repeat_n(i, degree))
            .collect();
        let mut adjacency = Adjacency::empty(n);
        let mut stalls = 0usize;
        while stubs.len() >= 2 {
            let i = (rng.next_u64() as usize) % stubs.len();
            let j = (rng.next_u64() as usize) % stubs.len();
            let (a, b) = (stubs[i], stubs[j]);
            if i == j || a == b || adjacency.connected(ProcessId::new(a), ProcessId::new(b)) {
                // Tolerate a bounded streak of illegal draws before
                // declaring the tail unmatchable and restarting the
                // attempt.
                stalls += 1;
                if stalls > 64 + stubs.len() * stubs.len() {
                    return None;
                }
                continue;
            }
            stalls = 0;
            adjacency.link(a, b);
            let (hi, lo) = (i.max(j), i.min(j));
            stubs.swap_remove(hi);
            stubs.swap_remove(lo);
        }
        Some(adjacency)
    }

    /// Builds a graph from an explicit boolean matrix, one row per process.
    ///
    /// The diagonal may be given either way (self-delivery is forced on);
    /// off-diagonal entries must be symmetric.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the matrix is empty, not square, or
    /// not symmetric.
    pub fn from_matrix(matrix: Vec<Vec<bool>>) -> Result<Self> {
        let n = matrix.len();
        if n == 0 {
            return Err(Error::InvalidParameter(
                "adjacency matrix must cover at least one process".into(),
            ));
        }
        if let Some(row) = matrix.iter().find(|row| row.len() != n) {
            return Err(Error::InvalidParameter(format!(
                "adjacency matrix must be square: a row covers {} of {n} processes",
                row.len()
            )));
        }
        for (a, row) in matrix.iter().enumerate() {
            for (b, &cell) in row.iter().enumerate().skip(a + 1) {
                if cell != matrix[b][a] {
                    return Err(Error::InvalidParameter(format!(
                        "adjacency matrix must be symmetric: ({a}, {b}) disagrees with ({b}, {a})"
                    )));
                }
            }
        }
        let mut adjacency = Adjacency::empty(n);
        for (a, row) in matrix.iter().enumerate() {
            for (b, &linked) in row.iter().enumerate() {
                if linked && a != b {
                    adjacency.link(a, b);
                }
            }
        }
        Ok(adjacency)
    }

    /// Builds a graph over `n` processes from an explicit undirected edge
    /// list.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when `n == 0`, and
    /// [`Error::UnknownProcess`] when an endpoint is outside `[0, n)`.
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "a graph needs at least one process".into(),
            ));
        }
        let mut adjacency = Adjacency::empty(n);
        for (a, b) in edges {
            for endpoint in [a, b] {
                if endpoint >= n {
                    return Err(Error::UnknownProcess {
                        process: ProcessId::new(endpoint),
                        n,
                    });
                }
            }
            if a != b {
                adjacency.link(a, b);
            }
        }
        Ok(adjacency)
    }

    /// The edgeless graph (diagonal only).
    fn empty(n: usize) -> Self {
        let mut bits = vec![false; n * n];
        for i in 0..n {
            bits[i * n + i] = true;
        }
        Adjacency { n, bits }
    }

    /// Sets the undirected link `a — b`.
    fn link(&mut self, a: usize, b: usize) {
        self.bits[a * self.n + b] = true;
        self.bits[b * self.n + a] = true;
    }

    /// The number of processes this graph covers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` when `a` and `b` share a link (always `true` for
    /// `a == b`: self-delivery is structural).
    ///
    /// # Panics
    ///
    /// Panics if either process is outside the universe.
    #[must_use]
    pub fn connected(&self, a: ProcessId, b: ProcessId) -> bool {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "process outside the universe"
        );
        self.bits[a.index() * self.n + b.index()]
    }

    /// The neighbours of `p`, excluding `p` itself, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn neighbors(&self, p: ProcessId) -> Vec<ProcessId> {
        let row = &self.bits[p.index() * self.n..(p.index() + 1) * self.n];
        row.iter()
            .enumerate()
            .filter_map(|(i, &linked)| (linked && i != p.index()).then_some(ProcessId::new(i)))
            .collect()
    }

    /// The degree of `p` (neighbours excluding itself).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn degree(&self, p: ProcessId) -> usize {
        let row = &self.bits[p.index() * self.n..(p.index() + 1) * self.n];
        row.iter().filter(|&&linked| linked).count() - 1
    }

    /// The smallest degree over all processes.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        (0..self.n)
            .map(|i| self.degree(ProcessId::new(i)))
            .min()
            .expect("a graph covers at least one process")
    }

    /// The smallest *closed* neighbourhood size (`degree + 1`): the number
    /// of processes the worst-placed process hears each round, itself
    /// included. This is the quantity the degree-dependent resilience
    /// checks compare against the model's replica requirement.
    #[must_use]
    pub fn min_closed_neighborhood(&self) -> usize {
        self.min_degree() + 1
    }

    /// The number of undirected links (self-links excluded).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        (0..self.n)
            .map(|i| self.degree(ProcessId::new(i)))
            .sum::<usize>()
            / 2
    }

    /// Returns `true` when every pair of processes shares a link.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.bits.iter().all(|&linked| linked)
    }

    /// Returns `true` when the graph has a single connected component.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.component_count() == 1
    }

    /// The number of connected components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        let mut visited = vec![false; self.n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..self.n {
            if visited[start] {
                continue;
            }
            components += 1;
            visited[start] = true;
            stack.push(start);
            while let Some(node) = stack.pop() {
                let row = &self.bits[node * self.n..(node + 1) * self.n];
                for (next, &linked) in row.iter().enumerate() {
                    if linked && !visited[next] {
                        visited[next] = true;
                        stack.push(next);
                    }
                }
            }
        }
        components
    }

    /// One row of the matrix as reachability flags: `row(p)[q]` is `true`
    /// when `q` hears (equivalently, is heard by) `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn row(&self, p: ProcessId) -> &[bool] {
        &self.bits[p.index() * self.n..(p.index() + 1) * self.n]
    }
}

impl fmt::Display for Adjacency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} processes, {} links, min degree {}",
            self.n,
            self.edge_count(),
            self.min_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn complete_graph_is_complete_and_connected() {
        let adjacency = Topology::Complete.realize(5, 0).unwrap();
        assert!(adjacency.is_complete());
        assert!(adjacency.is_connected());
        assert_eq!(adjacency.min_degree(), 4);
        assert_eq!(adjacency.edge_count(), 10);
        assert_eq!(adjacency.neighbors(pid(0)).len(), 4);
    }

    #[test]
    fn ring_has_degree_2k_and_is_connected() {
        let adjacency = Topology::Ring { k: 2 }.realize(9, 0).unwrap();
        assert!(adjacency.is_connected());
        assert!(!adjacency.is_complete());
        assert_eq!(adjacency.min_degree(), 4);
        assert_eq!(adjacency.min_closed_neighborhood(), 5);
        // Neighbours of 0 on a 9-ring with k=2: 1, 2, 7, 8.
        assert_eq!(
            adjacency.neighbors(pid(0)),
            vec![pid(1), pid(2), pid(7), pid(8)]
        );
    }

    #[test]
    fn over_wide_ring_normalizes_to_complete() {
        for k in [4, 5, 9, 100] {
            let adjacency = Topology::Ring { k }.realize(9, 0).unwrap();
            assert!(adjacency.is_complete(), "ring k={k} should be complete");
        }
        // k = (n-1)/2 on odd n is the widest non-complete... n=9, k=3 gives
        // degree 6 < 8, so still incomplete.
        assert!(!Topology::Ring { k: 3 }.realize(9, 0).unwrap().is_complete());
    }

    #[test]
    fn zero_width_ring_is_disconnected_unless_singleton() {
        let adjacency = Topology::Ring { k: 0 }.realize(4, 0).unwrap();
        assert!(!adjacency.is_connected());
        assert_eq!(adjacency.component_count(), 4);
        assert!(Topology::Ring { k: 0 }
            .realize(1, 0)
            .unwrap()
            .is_connected());
    }

    #[test]
    fn grid_is_connected_for_every_size() {
        for n in 1..=30 {
            let adjacency = Topology::Grid.realize(n, 0).unwrap();
            assert!(adjacency.is_connected(), "grid n={n} disconnected");
        }
        // A 3x3 grid: corner degree 2, centre degree 4.
        let nine = Topology::Grid.realize(9, 0).unwrap();
        assert_eq!(nine.degree(pid(0)), 2);
        assert_eq!(nine.degree(pid(4)), 4);
        assert_eq!(nine.min_degree(), 2);
    }

    #[test]
    fn random_regular_is_regular_connected_and_seed_deterministic() {
        let a = Topology::RandomRegular { degree: 4 }
            .realize(10, 7)
            .unwrap();
        let b = Topology::RandomRegular { degree: 4 }
            .realize(10, 7)
            .unwrap();
        assert_eq!(a, b);
        assert!(a.is_connected());
        for i in 0..10 {
            assert_eq!(a.degree(pid(i)), 4, "process {i} is not 4-regular");
        }
        // A different seed draws a different graph (overwhelmingly likely
        // for this size; this specific pair is fixed by determinism).
        let c = Topology::RandomRegular { degree: 4 }
            .realize(10, 8)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_regular_realizes_every_feasible_degree() {
        // Greedy stub matching must not fall over on dense degrees, where
        // the plain pairing model's rejection rate explodes.
        for n in [8usize, 9, 12] {
            for degree in 1..n {
                if !(n * degree).is_multiple_of(2) {
                    continue;
                }
                let adjacency = Topology::RandomRegular { degree }.realize(n, 3).unwrap();
                for i in 0..n {
                    assert_eq!(adjacency.degree(pid(i)), degree, "n={n} d={degree}");
                }
                if degree >= 2 {
                    assert!(adjacency.is_connected(), "n={n} d={degree} disconnected");
                }
            }
        }
        // Degree n-1 is the complete graph.
        assert!(Topology::RandomRegular { degree: 7 }
            .realize(8, 0)
            .unwrap()
            .is_complete());
    }

    #[test]
    fn random_regular_rejects_infeasible_degrees() {
        assert!(matches!(
            Topology::RandomRegular { degree: 9 }.realize(9, 0),
            Err(Error::InvalidParameter(_))
        ));
        // n * degree odd: no 3-regular graph on 9 vertices.
        assert!(matches!(
            Topology::RandomRegular { degree: 3 }.realize(9, 0),
            Err(Error::InvalidParameter(_))
        ));
        assert!(Topology::RandomRegular { degree: 3 }.realize(10, 0).is_ok());
    }

    #[test]
    fn from_matrix_validates_shape_and_symmetry() {
        assert!(matches!(
            Adjacency::from_matrix(vec![]),
            Err(Error::InvalidParameter(_))
        ));
        assert!(matches!(
            Adjacency::from_matrix(vec![vec![true, false], vec![false]]),
            Err(Error::InvalidParameter(_))
        ));
        assert!(matches!(
            Adjacency::from_matrix(vec![
                vec![true, true, false],
                vec![false, true, false],
                vec![false, false, true],
            ]),
            Err(Error::InvalidParameter(_))
        ));
        let path = Adjacency::from_matrix(vec![
            vec![false, true, false],
            vec![true, false, true],
            vec![false, true, false],
        ])
        .unwrap();
        assert!(path.is_connected());
        // The diagonal is forced on regardless of the input.
        assert!(path.connected(pid(0), pid(0)));
        assert_eq!(path.degree(pid(1)), 2);
    }

    #[test]
    fn from_edges_validates_endpoints() {
        let path = Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(path.is_connected());
        assert_eq!(path.edge_count(), 2);
        assert!(matches!(
            Adjacency::from_edges(3, [(0, 3)]),
            Err(Error::UnknownProcess { n: 3, .. })
        ));
        // Self-loops are ignored (self-delivery is structural anyway).
        assert_eq!(Adjacency::from_edges(2, [(0, 0)]).unwrap().edge_count(), 0);
    }

    #[test]
    fn custom_realization_checks_the_universe() {
        let two = Adjacency::from_edges(2, [(0, 1)]).unwrap();
        let topology = Topology::Custom(two);
        assert!(topology.realize(2, 0).is_ok());
        assert!(matches!(
            topology.realize(3, 0),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn singleton_universe_is_connected_under_every_family() {
        for topology in [
            Topology::Complete,
            Topology::Ring { k: 3 },
            Topology::Grid,
            Topology::RandomRegular { degree: 0 },
        ] {
            let adjacency = topology.realize(1, 0).unwrap();
            assert!(adjacency.is_connected(), "{topology} disconnected at n=1");
            assert_eq!(adjacency.min_degree(), 0);
            assert_eq!(adjacency.min_closed_neighborhood(), 1);
        }
    }

    #[test]
    fn zero_processes_is_rejected() {
        assert!(Topology::Complete.realize(0, 0).is_err());
    }

    #[test]
    fn display_names_the_family() {
        assert_eq!(Topology::Complete.to_string(), "complete");
        assert_eq!(Topology::Ring { k: 2 }.to_string(), "ring(k=2)");
        assert_eq!(
            Topology::RandomRegular { degree: 4 }.to_string(),
            "random-regular(d=4)"
        );
        assert_eq!(Topology::Grid.to_string(), "grid");
        let custom = Topology::Custom(Adjacency::complete(3));
        assert_eq!(custom.to_string(), "custom(n=3)");
        let adjacency = Adjacency::ring(5, 1);
        assert_eq!(adjacency.to_string(), "5 processes, 5 links, min degree 2");
    }

    #[test]
    fn component_count_tracks_disconnection() {
        let two_islands = Adjacency::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(two_islands.component_count(), 2);
        assert!(!two_islands.is_connected());
    }
}
