//! Link faults and dynamic topologies: directed links, per-link omission
//! and delay, and round-indexed churn.
//!
//! The paper's mobile Byzantine adversary moves between *processes*; this
//! module makes the *network itself* mobile, in the style of Li–Hurfin–Wang
//! (arXiv:1206.0089) and of agreement on evolving graphs (arXiv:1706.06789):
//!
//! * [`DirectedAdjacency`] — an asymmetric link matrix with the same
//!   validation and connectivity queries as [`Adjacency`], which becomes
//!   the symmetric special case ([`DirectedAdjacency::from_symmetric`] /
//!   [`DirectedAdjacency::to_symmetric`] round-trip it losslessly).
//! * [`LinkFaultPlan`] — per-link behaviours layered on the structural
//!   mask: deterministic or seeded-random omission probability, and fixed
//!   delays in rounds served by an in-order delivery buffer inside
//!   [`SyncNetwork::exchange`](crate::SyncNetwork::exchange).
//! * [`TopologySchedule`] — a (possibly different) realized communication
//!   graph per round: [`Static`](TopologySchedule::Static),
//!   [`Periodic`](TopologySchedule::Periodic) (rotating graph phases), and
//!   [`SeededChurn`](TopologySchedule::SeededChurn) (every base link is
//!   down each round with a seeded probability).
//! * [`DisconnectionPolicy`] — what a dynamic exchange does when the
//!   realized graph of some round is disconnected: record it in
//!   [`NetworkStats`](crate::NetworkStats) or reject the round with the
//!   typed [`Error::DisconnectedRound`].
//!
//! Everything here is deterministic in `(description, n, seed)`: the same
//! schedule realizes to the same per-round graphs and the same omission
//! draws no matter which worker, batch, or streaming path executes the run.
//!
//! # Example
//!
//! ```
//! use mbaa_net::{DirectedAdjacency, LinkFaultPlan, Topology, TopologySchedule};
//! use mbaa_types::{ProcessId, Round};
//!
//! // A directed graph where p0 -> p1 exists but p1 -> p0 does not.
//! let one_way = DirectedAdjacency::from_arcs(2, [(0, 1)])?;
//! assert!(one_way.delivers(ProcessId::new(0), ProcessId::new(1)));
//! assert!(!one_way.delivers(ProcessId::new(1), ProcessId::new(0)));
//! assert!(!one_way.is_symmetric());
//!
//! // A churn schedule: each link of the complete graph is down 30% of the
//! // time, deterministically per (seed, round, link).
//! let schedule = TopologySchedule::SeededChurn {
//!     base: Topology::Complete,
//!     flip_rate: 0.3,
//! };
//! let realized = schedule.realize(9, 7)?;
//! assert_eq!(
//!     realized.adjacency_at(Round::new(3)),
//!     realized.adjacency_at(Round::new(3)),
//! );
//!
//! // A link-fault plan: drop p0 -> p1 half the time, delay p2 -> p3 by two
//! // rounds.
//! let plan = LinkFaultPlan::new().omit(0, 1, 0.5).delay(2, 3, 2);
//! assert!(!plan.is_clean());
//! assert_eq!(plan.max_delay(), 2);
//! # Ok::<(), mbaa_types::Error>(())
//! ```

use std::borrow::Cow;
use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{Error, ProcessId, Result, Round};

use crate::{Adjacency, Topology};

/// Stream constant decorrelating churn draws from the omission draws that
/// consume the same run seed.
const CHURN_STREAM: u64 = 0x5DEE_CE66_D1A4_F8B5;

/// Stream constant for per-link omission draws.
const OMIT_STREAM: u64 = 0xA24B_AED4_963E_E407;

/// One SplitMix64 step (Steele–Lea–Flood 2014) folding `v` into the running
/// hash `h` — the primitive behind every deterministic per-(round, link)
/// draw here. Inlined rather than routed through `rand` so the draw stream
/// is pinned to this algorithm no matter which `rand` implementation the
/// workspace links (swapping the vendored shim for the real crate must not
/// silently re-randomize every seeded network).
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from 53 hashed mantissa bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The deterministic churn draw: returns `true` when the base link
/// `a — b` is *down* in `round` under `flip_rate`. Shared with the
/// batch-delivery path, which replays the exact per-lane draw stream
/// without materializing per-round adjacencies.
pub(crate) fn churn_link_down(seed: u64, round: u64, a: usize, b: usize, flip_rate: f64) -> bool {
    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
    let h = mix(mix(mix(seed ^ CHURN_STREAM, round), lo), hi);
    unit(h) < flip_rate
}

/// The deterministic omission draw: returns `true` when the message sent on
/// the directed link `from -> to` in `round` is lost under `probability`.
pub(crate) fn omission_lost(
    seed: u64,
    round: u64,
    from: usize,
    to: usize,
    probability: f64,
) -> bool {
    if probability <= 0.0 {
        return false;
    }
    if probability >= 1.0 {
        return true;
    }
    let h = mix(mix(mix(seed ^ OMIT_STREAM, round), from as u64), to as u64);
    unit(h) < probability
}

/// A realized, validated **directed** communication graph: an `n × n`
/// boolean matrix whose diagonal is always set (self-delivery is
/// structural), with no symmetry requirement — `a -> b` may exist without
/// `b -> a`.
///
/// [`Adjacency`] is the symmetric special case:
/// [`from_symmetric`](DirectedAdjacency::from_symmetric) and
/// [`to_symmetric`](DirectedAdjacency::to_symmetric) round-trip it exactly.
///
/// # Example
///
/// ```
/// use mbaa_net::{Adjacency, DirectedAdjacency};
/// use mbaa_types::ProcessId;
///
/// let symmetric = Adjacency::from_edges(3, [(0, 1), (1, 2)])?;
/// let directed = DirectedAdjacency::from_symmetric(&symmetric);
/// assert!(directed.is_symmetric());
/// assert_eq!(directed.to_symmetric()?, symmetric);
/// assert_eq!(directed.out_degree(ProcessId::new(1)), 2);
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectedAdjacency {
    n: usize,
    /// Row-major `n * n` arc matrix; `bits[from * n + to]` means messages
    /// from `from` reach `to`. Diagonal always `true`.
    bits: Vec<bool>,
}

impl DirectedAdjacency {
    /// The all-to-all graph over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn complete(n: usize) -> Self {
        assert!(n > 0, "a graph needs at least one process");
        DirectedAdjacency {
            n,
            bits: vec![true; n * n],
        }
    }

    /// The arcless graph (diagonal only).
    fn empty(n: usize) -> Self {
        let mut bits = vec![false; n * n];
        for i in 0..n {
            bits[i * n + i] = true;
        }
        DirectedAdjacency { n, bits }
    }

    /// Lifts a symmetric graph into the directed representation: every
    /// undirected link becomes a pair of opposite arcs.
    #[must_use]
    pub fn from_symmetric(adjacency: &Adjacency) -> Self {
        let n = adjacency.n();
        let mut directed = DirectedAdjacency::empty(n);
        for a in 0..n {
            for (b, &linked) in adjacency.row(ProcessId::new(a)).iter().enumerate() {
                if linked {
                    directed.bits[a * n + b] = true;
                }
            }
        }
        directed
    }

    /// Builds a graph from an explicit boolean matrix, one row per sender.
    /// Unlike [`Adjacency::from_matrix`] there is **no** symmetry
    /// requirement; the diagonal is forced on either way.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the matrix is empty or not square.
    pub fn from_matrix(matrix: Vec<Vec<bool>>) -> Result<Self> {
        let n = matrix.len();
        if n == 0 {
            return Err(Error::InvalidParameter(
                "adjacency matrix must cover at least one process".into(),
            ));
        }
        if let Some(row) = matrix.iter().find(|row| row.len() != n) {
            return Err(Error::InvalidParameter(format!(
                "adjacency matrix must be square: a row covers {} of {n} processes",
                row.len()
            )));
        }
        let mut directed = DirectedAdjacency::empty(n);
        for (a, row) in matrix.iter().enumerate() {
            for (b, &linked) in row.iter().enumerate() {
                if linked && a != b {
                    directed.bits[a * n + b] = true;
                }
            }
        }
        Ok(directed)
    }

    /// Builds a graph over `n` processes from an explicit directed arc
    /// list (`(from, to)` pairs). Self-arcs are ignored (self-delivery is
    /// structural anyway).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when `n == 0`, and
    /// [`Error::UnknownProcess`] when an endpoint is outside `[0, n)`.
    pub fn from_arcs<I: IntoIterator<Item = (usize, usize)>>(n: usize, arcs: I) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidParameter(
                "a graph needs at least one process".into(),
            ));
        }
        let mut directed = DirectedAdjacency::empty(n);
        for (from, to) in arcs {
            for endpoint in [from, to] {
                if endpoint >= n {
                    return Err(Error::UnknownProcess {
                        process: ProcessId::new(endpoint),
                        n,
                    });
                }
            }
            if from != to {
                directed.bits[from * n + to] = true;
            }
        }
        Ok(directed)
    }

    /// The number of processes this graph covers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` when messages from `from` reach `to` (always `true`
    /// for `from == to`: self-delivery is structural).
    ///
    /// # Panics
    ///
    /// Panics if either process is outside the universe.
    #[must_use]
    pub fn delivers(&self, from: ProcessId, to: ProcessId) -> bool {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "process outside the universe"
        );
        self.bits[from.index() * self.n + to.index()]
    }

    /// The receivers `p` can reach, excluding `p` itself, in ascending
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn out_neighbors(&self, p: ProcessId) -> Vec<ProcessId> {
        let row = &self.bits[p.index() * self.n..(p.index() + 1) * self.n];
        row.iter()
            .enumerate()
            .filter_map(|(i, &linked)| (linked && i != p.index()).then_some(ProcessId::new(i)))
            .collect()
    }

    /// The senders `p` hears, excluding `p` itself, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn in_neighbors(&self, p: ProcessId) -> Vec<ProcessId> {
        (0..self.n)
            .filter(|&i| i != p.index() && self.bits[i * self.n + p.index()])
            .map(ProcessId::new)
            .collect()
    }

    /// The number of receivers `p` can reach (itself excluded).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn out_degree(&self, p: ProcessId) -> usize {
        let row = &self.bits[p.index() * self.n..(p.index() + 1) * self.n];
        row.iter().filter(|&&linked| linked).count() - 1
    }

    /// The number of senders `p` hears (itself excluded).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn in_degree(&self, p: ProcessId) -> usize {
        (0..self.n)
            .filter(|&i| i != p.index() && self.bits[i * self.n + p.index()])
            .count()
    }

    /// The smallest *closed in-neighbourhood* size (`in_degree + 1`): the
    /// number of processes the worst-placed receiver hears each round,
    /// itself included — the quantity the degree-dependent resilience
    /// checks compare against the model's replica requirement.
    #[must_use]
    pub fn min_in_closed_neighborhood(&self) -> usize {
        (0..self.n)
            .map(|i| self.in_degree(ProcessId::new(i)) + 1)
            .min()
            .expect("a graph covers at least one process")
    }

    /// The number of directed arcs (self-arcs excluded).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        (0..self.n)
            .map(|i| self.out_degree(ProcessId::new(i)))
            .sum()
    }

    /// Returns `true` when every ordered pair shares an arc.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.bits.iter().all(|&linked| linked)
    }

    /// Returns `true` when every arc has its reverse — the graph is an
    /// [`Adjacency`] in directed clothing.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|a| {
            (a + 1..self.n).all(|b| self.bits[a * self.n + b] == self.bits[b * self.n + a])
        })
    }

    /// Projects a symmetric directed graph back onto [`Adjacency`] — the
    /// inverse of [`from_symmetric`](DirectedAdjacency::from_symmetric).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when some arc lacks its reverse.
    pub fn to_symmetric(&self) -> Result<Adjacency> {
        if !self.is_symmetric() {
            return Err(Error::InvalidParameter(
                "directed graph has one-way arcs; no symmetric projection exists".into(),
            ));
        }
        let edges = (0..self.n).flat_map(|a| {
            (a + 1..self.n).filter_map(move |b| self.bits[a * self.n + b].then_some((a, b)))
        });
        Adjacency::from_edges(self.n, edges)
    }

    /// Returns `true` when every process can reach every other along
    /// directed arcs (strong connectivity) — the directed analogue of
    /// [`Adjacency::is_connected`]. A one-way link between two otherwise
    /// separated halves leaves the graph weakly but not strongly connected.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        self.reachable_from(0).iter().all(|&r| r) && self.reaching(0).iter().all(|&r| r)
    }

    /// The number of strongly connected components — the directed analogue
    /// of [`Adjacency::component_count`]. `1` iff
    /// [`is_strongly_connected`](DirectedAdjacency::is_strongly_connected).
    #[must_use]
    pub fn strong_component_count(&self) -> usize {
        let mut assigned = vec![false; self.n];
        let mut components = 0;
        for v in 0..self.n {
            if assigned[v] {
                continue;
            }
            components += 1;
            // v's strong component is exactly the processes both reachable
            // from v and reaching v.
            let forward = self.reachable_from(v);
            let backward = self.reaching(v);
            for (slot, both) in assigned
                .iter_mut()
                .zip(forward.iter().zip(&backward).map(|(&fwd, &bwd)| fwd && bwd))
            {
                *slot |= both;
            }
        }
        components
    }

    /// Returns a copy with the given directed arcs removed. Self-arcs are
    /// untouchable (self-delivery is structural) and arcs already absent
    /// are no-ops — this is how a deterministic one-way cut of a
    /// [`LinkFaultPlan`] projects onto the structural graph.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is outside the universe.
    #[must_use]
    pub fn without_arcs<I: IntoIterator<Item = (usize, usize)>>(&self, arcs: I) -> Self {
        let mut pruned = self.clone();
        for (from, to) in arcs {
            assert!(from < self.n && to < self.n, "process outside the universe");
            if from != to {
                pruned.bits[from * self.n + to] = false;
            }
        }
        pruned
    }

    /// Which processes are reachable from `start` along arcs (including
    /// `start`).
    fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut visited = vec![false; self.n];
        let mut stack = vec![start];
        visited[start] = true;
        while let Some(node) = stack.pop() {
            let row = &self.bits[node * self.n..(node + 1) * self.n];
            for (next, &linked) in row.iter().enumerate() {
                if linked && !visited[next] {
                    visited[next] = true;
                    stack.push(next);
                }
            }
        }
        visited
    }

    /// Which processes can reach `target` along arcs (including `target`).
    fn reaching(&self, target: usize) -> Vec<bool> {
        let mut visited = vec![false; self.n];
        let mut stack = vec![target];
        visited[target] = true;
        while let Some(node) = stack.pop() {
            let mut discovered = Vec::new();
            for (prev, was_visited) in visited.iter_mut().enumerate() {
                if self.bits[prev * self.n + node] && !*was_visited {
                    *was_visited = true;
                    discovered.push(prev);
                }
            }
            stack.extend(discovered);
        }
        visited
    }

    /// One row of the matrix as reachability flags: `row(p)[q]` is `true`
    /// when messages from `p` reach `q`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn row(&self, p: ProcessId) -> &[bool] {
        &self.bits[p.index() * self.n..(p.index() + 1) * self.n]
    }
}

impl From<Adjacency> for DirectedAdjacency {
    fn from(adjacency: Adjacency) -> Self {
        DirectedAdjacency::from_symmetric(&adjacency)
    }
}

impl fmt::Display for DirectedAdjacency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} processes, {} arcs, min in-neighbourhood {}",
            self.n,
            self.arc_count(),
            self.min_in_closed_neighborhood()
        )
    }
}

/// What a dynamic exchange does when the realized communication graph of a
/// round is disconnected.
///
/// Only dynamic schedules consult this: a *static* disconnected topology is
/// always rejected at configuration time (agreement is meaningless across
/// permanent components), but a churning graph may be transiently
/// disconnected while its union over a window still carries information.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisconnectionPolicy {
    /// Count the round in
    /// [`NetworkStats::disconnected_rounds`](crate::NetworkStats) and carry
    /// on — the Li–Hurfin–Wang evolving-graph reading, where only the union
    /// over a window needs connectivity.
    #[default]
    Record,
    /// Fail the exchange with the typed
    /// [`Error::DisconnectedRound`], treating any transient partition as a
    /// configuration error.
    Reject,
}

impl fmt::Display for DisconnectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DisconnectionPolicy::Record => "record",
            DisconnectionPolicy::Reject => "reject",
        })
    }
}

/// One rule of a [`LinkFaultPlan`]: a (possibly wildcarded) directed link
/// selector together with the behaviour it sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LinkRule {
    /// Sending endpoint, or `None` for every sender.
    from: Option<usize>,
    /// Receiving endpoint, or `None` for every receiver.
    to: Option<usize>,
    /// Omission probability to set, if any.
    omit: Option<f64>,
    /// Delivery delay (in rounds) to set, if any.
    delay: Option<usize>,
}

impl LinkRule {
    fn matches(&self, from: usize, to: usize) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// The public inspection form of one [`LinkFaultPlan`] rule: a (possibly
/// wildcarded) directed-link selector together with the omission
/// probability and/or delay it sets.
///
/// Rules are ordered: later rules override the fields they set on the
/// links they match. [`LinkFaultPlan::rules`] walks a plan's rules in
/// application order and [`LinkFaultPlan::with_rule`] appends one, so a
/// plan round-trips losslessly through this form — the scenario-file
/// (de)serializer in `mbaa-json` is built on exactly that pair.
///
/// # Example
///
/// ```
/// use mbaa_net::{LinkFaultPlan, LinkFaultRule};
///
/// let plan = LinkFaultPlan::new().omit_all(0.05).delay(1, 2, 3);
/// let rules: Vec<LinkFaultRule> = plan.rules().collect();
/// assert_eq!(rules.len(), 2);
/// assert_eq!(rules[0].omit, Some(0.05));
/// assert_eq!((rules[1].from, rules[1].delay), (Some(1), Some(3)));
///
/// let rebuilt = rules
///     .into_iter()
///     .fold(LinkFaultPlan::new(), LinkFaultPlan::with_rule);
/// assert_eq!(rebuilt, plan);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultRule {
    /// Sending endpoint, or `None` for every sender.
    pub from: Option<usize>,
    /// Receiving endpoint, or `None` for every receiver.
    pub to: Option<usize>,
    /// Omission probability to set, if any.
    pub omit: Option<f64>,
    /// Delivery delay (in rounds) to set, if any.
    pub delay: Option<usize>,
}

/// Per-link fault behaviours layered on the structural topology mask:
/// seeded-random (or, at probability 1, deterministic) message omission and
/// fixed delivery delays with in-order buffering.
///
/// A plan is *scenario-level plain data*: rules name directed links (or
/// wildcards) and are applied in order, later rules overriding the field
/// they set on the links they match. It is validated and compiled against a
/// concrete universe when the network is built. Self-links are never
/// faulted — self-delivery stays structural, as in the paper.
///
/// Omission draws are deterministic in `(seed, round, link)`, so two runs of
/// the same configuration lose exactly the same messages. Delayed links
/// deliver in order: a message sent on a `delay = d` link in round `r`
/// arrives in round `r + d`, behind every earlier message on that link.
/// Lost or delayed messages are accounted in the dedicated
/// [`NetworkStats`](crate::NetworkStats) fields — never as adversary
/// omissions.
///
/// # Example
///
/// ```
/// use mbaa_net::LinkFaultPlan;
///
/// let plan = LinkFaultPlan::new()
///     .omit_all(0.05)      // a lossy fabric: every link drops 5%
///     .cut(0, 3)           // p0 -> p3 severed outright (one-way cut)
///     .delay(1, 2, 3);     // p1 -> p2 delivers three rounds late
/// assert!(!plan.is_clean());
/// assert_eq!(plan.max_delay(), 3);
/// assert!(plan.validate(5).is_ok());
/// assert!(plan.validate(2).is_err()); // p3 is outside a 2-process universe
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultPlan {
    rules: Vec<LinkRule>,
}

impl LinkFaultPlan {
    /// The clean plan: every link delivers immediately and losslessly.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the omission probability of the directed link `from -> to`.
    /// `1.0` severs the link deterministically; values in `(0, 1)` lose
    /// each message independently with that probability, seeded by the run.
    #[must_use]
    pub fn omit(mut self, from: usize, to: usize, probability: f64) -> Self {
        self.rules.push(LinkRule {
            from: Some(from),
            to: Some(to),
            omit: Some(probability),
            delay: None,
        });
        self
    }

    /// Sets the omission probability of **every** link at once.
    #[must_use]
    pub fn omit_all(mut self, probability: f64) -> Self {
        self.rules.push(LinkRule {
            from: None,
            to: None,
            omit: Some(probability),
            delay: None,
        });
        self
    }

    /// Severs the directed link `from -> to` outright (sugar for
    /// [`omit`](LinkFaultPlan::omit) at probability 1): together with the
    /// intact reverse direction this expresses a one-way link.
    #[must_use]
    pub fn cut(self, from: usize, to: usize) -> Self {
        self.omit(from, to, 1.0)
    }

    /// Sets the fixed delivery delay (in rounds) of the directed link
    /// `from -> to`. Delay 0 restores immediate delivery.
    ///
    /// A delayed link surfaces round `r`'s value in round `r + d`, so its
    /// slot never reflects the sender's *current* round: the trace flags
    /// it `link_faulted` every round and behaviour classification
    /// deliberately abstains on it for the whole run (judging round-`r`
    /// behaviour against round-`r + d` expectations would mis-attribute
    /// across rounds). Keep the links feeding a Table 1-style
    /// classification delay-free.
    #[must_use]
    pub fn delay(mut self, from: usize, to: usize, rounds: usize) -> Self {
        self.rules.push(LinkRule {
            from: Some(from),
            to: Some(to),
            omit: None,
            delay: Some(rounds),
        });
        self
    }

    /// Sets the fixed delivery delay of **every** link at once.
    #[must_use]
    pub fn delay_all(mut self, rounds: usize) -> Self {
        self.rules.push(LinkRule {
            from: None,
            to: None,
            omit: None,
            delay: Some(rounds),
        });
        self
    }

    /// Returns `true` when the plan holds no rules at all — the network
    /// lowers onto the fault-free fast path.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.rules.is_empty()
    }

    /// Walks the plan's rules in application order, in the public
    /// [`LinkFaultRule`] form. Together with
    /// [`with_rule`](LinkFaultPlan::with_rule) this makes a plan
    /// losslessly inspectable and reconstructible — the scenario-file
    /// serializer relies on it.
    pub fn rules(&self) -> impl Iterator<Item = LinkFaultRule> + '_ {
        self.rules.iter().map(|r| LinkFaultRule {
            from: r.from,
            to: r.to,
            omit: r.omit,
            delay: r.delay,
        })
    }

    /// Appends one rule in the public [`LinkFaultRule`] form — the general
    /// constructor behind [`omit`](LinkFaultPlan::omit) /
    /// [`omit_all`](LinkFaultPlan::omit_all) /
    /// [`delay`](LinkFaultPlan::delay) /
    /// [`delay_all`](LinkFaultPlan::delay_all), used to rebuild a plan
    /// from its serialized rules.
    #[must_use]
    pub fn with_rule(mut self, rule: LinkFaultRule) -> Self {
        self.rules.push(LinkRule {
            from: rule.from,
            to: rule.to,
            omit: rule.omit,
            delay: rule.delay,
        });
        self
    }

    /// The largest delay any rule sets (0 for a clean plan).
    #[must_use]
    pub fn max_delay(&self) -> usize {
        self.rules.iter().filter_map(|r| r.delay).max().unwrap_or(0)
    }

    /// Checks every rule against a universe of `n` processes.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownProcess`] when a rule names an endpoint outside
    ///   `[0, n)`.
    /// * [`Error::InvalidParameter`] when an omission probability is not a
    ///   finite value in `[0, 1]`.
    pub fn validate(&self, n: usize) -> Result<()> {
        for rule in &self.rules {
            for endpoint in [rule.from, rule.to].into_iter().flatten() {
                if endpoint >= n {
                    return Err(Error::UnknownProcess {
                        process: ProcessId::new(endpoint),
                        n,
                    });
                }
            }
            if let Some(p) = rule.omit {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(Error::InvalidParameter(format!(
                        "link omission probability must be a finite value in [0, 1], got {p}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Compiles the plan into per-link omission/delay matrices over `n`
    /// processes. Self-links stay clean regardless of wildcards.
    ///
    /// # Errors
    ///
    /// Propagates [`validate`](LinkFaultPlan::validate).
    pub fn compile(&self, n: usize) -> Result<CompiledLinkFaults> {
        self.validate(n)?;
        let mut omit = vec![0.0f64; n * n];
        let mut delay = vec![0usize; n * n];
        for rule in &self.rules {
            for from in 0..n {
                for to in 0..n {
                    if from == to || !rule.matches(from, to) {
                        continue;
                    }
                    if let Some(p) = rule.omit {
                        omit[from * n + to] = p;
                    }
                    if let Some(d) = rule.delay {
                        delay[from * n + to] = d;
                    }
                }
            }
        }
        Ok(CompiledLinkFaults { n, omit, delay })
    }
}

impl fmt::Display for LinkFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        write!(f, "{} link-fault rule(s)", self.rules.len())
    }
}

/// A [`LinkFaultPlan`] compiled against a concrete universe: one omission
/// probability and one delay per directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledLinkFaults {
    n: usize,
    omit: Vec<f64>,
    delay: Vec<usize>,
}

impl CompiledLinkFaults {
    /// The universe size the plan was compiled against.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The omission probability of the directed link `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either process is outside the universe.
    #[must_use]
    pub fn omit_probability(&self, from: ProcessId, to: ProcessId) -> f64 {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "process outside the universe"
        );
        self.omit[from.index() * self.n + to.index()]
    }

    /// The fixed delivery delay (in rounds) of the directed link
    /// `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either process is outside the universe.
    #[must_use]
    pub fn delay(&self, from: ProcessId, to: ProcessId) -> usize {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "process outside the universe"
        );
        self.delay[from.index() * self.n + to.index()]
    }

    /// Returns `true` when no link carries any fault — the compiled form of
    /// an (effectively) clean plan.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.omit.iter().all(|&p| p == 0.0) && self.delay.iter().all(|&d| d == 0)
    }

    /// The directed links whose omission probability is 1 — severed
    /// deterministically, i.e. structural one-way cuts in link-fault
    /// clothing. The configuration layer subtracts these from the realized
    /// graph before its connectivity and resilience checks, so a plan
    /// cannot smuggle in a permanent partition that an equivalent
    /// [`Topology::Custom`] would be rejected for.
    #[must_use]
    pub fn severed_arcs(&self) -> Vec<(usize, usize)> {
        (0..self.n)
            .flat_map(|from| (0..self.n).map(move |to| (from, to)))
            .filter(|&(from, to)| from != to && self.omit[from * self.n + to] >= 1.0)
            .collect()
    }

    pub(crate) fn omit_at(&self, from: usize, to: usize) -> f64 {
        self.omit[from * self.n + to]
    }

    pub(crate) fn delay_at(&self, from: usize, to: usize) -> usize {
        self.delay[from * self.n + to]
    }

    /// The largest delay any compiled link carries — 0 means no exchange
    /// ever buffers, so the delay pipes can be skipped wholesale.
    pub(crate) fn compiled_max_delay(&self) -> usize {
        self.delay.iter().copied().max().unwrap_or(0)
    }
}

/// A description of how the communication graph evolves over rounds.
///
/// Like [`Topology`], a schedule is scenario-level plain data: it does not
/// know the system size until [`realize`](TopologySchedule::realize)d, and
/// realization is deterministic in `(n, seed)` — the per-round graphs are a
/// pure function of the round index, independent of execution order, worker
/// count, or batch/stream path.
///
/// # Example
///
/// ```
/// use mbaa_net::{Topology, TopologySchedule};
/// use mbaa_types::Round;
///
/// // Alternate between two half-rings; their union is the k=2 ring.
/// let schedule = TopologySchedule::Periodic {
///     phases: vec![Topology::Ring { k: 1 }, Topology::Ring { k: 2 }],
/// };
/// let realized = schedule.realize(9, 0)?;
/// assert_eq!(realized.adjacency_at(Round::new(0)).min_degree(), 2);
/// assert_eq!(realized.adjacency_at(Round::new(1)).min_degree(), 4);
/// // Period 2: round 2 repeats round 0.
/// assert_eq!(
///     realized.adjacency_at(Round::new(2)),
///     realized.adjacency_at(Round::new(0)),
/// );
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySchedule {
    /// The same graph every round — the degenerate schedule, equivalent to
    /// the plain [`Topology`] axis and lowered onto the same fast paths.
    Static(Topology),
    /// A rotating cycle of graph phases: round `r` uses
    /// `phases[r % phases.len()]`. Each phase is realized once, with a
    /// per-phase seed, so rotating random-regular phases yields *different*
    /// regular graphs.
    Periodic {
        /// The graph families cycled through, one per round.
        phases: Vec<Topology>,
    },
    /// Round-indexed churn: every link of the realized `base` graph is
    /// independently **down** each round with probability `flip_rate`,
    /// deterministically in `(seed, round, link)`. The union of the
    /// realized graphs over a window of `w` rounds misses a base link with
    /// probability `flip_rate^w` — the evolving-graph regime where the
    /// union, not any single round, meets the degree bound.
    SeededChurn {
        /// The graph being churned.
        base: Topology,
        /// Per-round, per-link down-probability in `[0, 1]`.
        flip_rate: f64,
    },
}

impl Default for TopologySchedule {
    fn default() -> Self {
        TopologySchedule::Static(Topology::Complete)
    }
}

impl fmt::Display for TopologySchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySchedule::Static(topology) => write!(f, "static({topology})"),
            TopologySchedule::Periodic { phases } => {
                write!(f, "periodic(")?;
                for (i, phase) in phases.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{phase}")?;
                }
                write!(f, ")")
            }
            TopologySchedule::SeededChurn { base, flip_rate } => {
                write!(f, "churn({base}, flip_rate={flip_rate})")
            }
        }
    }
}

impl TopologySchedule {
    /// Returns `true` for the static complete schedule — the description
    /// that lowers onto the unmasked fast path, bit-identical to no
    /// schedule at all.
    #[must_use]
    pub fn is_static_complete(&self) -> bool {
        matches!(self, TopologySchedule::Static(t) if t.is_complete())
    }

    /// Realizes the schedule over `n` processes. Every phase (and the churn
    /// base) is realized exactly once;
    /// [`SeededChurn`](TopologySchedule::SeededChurn) derives its per-round
    /// drops lazily from `(seed, round, link)`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when a phase cannot be realized, when
    ///   a periodic schedule has no phases, or when a churn `flip_rate` is
    ///   not a finite value in `[0, 1]`.
    ///
    /// Like [`Topology::realize`], this does **not** reject disconnected
    /// graphs; the protocol configuration layer does, honouring the
    /// [`DisconnectionPolicy`].
    pub fn realize(&self, n: usize, seed: u64) -> Result<RealizedSchedule> {
        let kind = match self {
            TopologySchedule::Static(topology) => RealizedKind::Static(topology.realize(n, seed)?),
            TopologySchedule::Periodic { phases } => {
                if phases.is_empty() {
                    return Err(Error::InvalidParameter(
                        "a periodic schedule needs at least one phase".into(),
                    ));
                }
                let realized = phases
                    .iter()
                    .enumerate()
                    .map(|(i, phase)| phase.realize(n, mix(seed, i as u64)))
                    .collect::<Result<Vec<_>>>()?;
                RealizedKind::Periodic(realized)
            }
            TopologySchedule::SeededChurn { base, flip_rate } => {
                if !flip_rate.is_finite() || !(0.0..=1.0).contains(flip_rate) {
                    return Err(Error::InvalidParameter(format!(
                        "churn flip_rate must be a finite value in [0, 1], got {flip_rate}"
                    )));
                }
                RealizedKind::Churn {
                    base: base.realize(n, seed)?,
                    flip_rate: *flip_rate,
                }
            }
        };
        Ok(RealizedSchedule { n, seed, kind })
    }
}

/// The realized forms behind a [`RealizedSchedule`]. Crate-visible so the
/// shared batch realization can mirror the per-round graph rule without
/// re-deriving it from the description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum RealizedKind {
    Static(Adjacency),
    Periodic(Vec<Adjacency>),
    Churn { base: Adjacency, flip_rate: f64 },
}

/// A [`TopologySchedule`] realized over a concrete universe: a pure,
/// deterministic mapping from round index to communication graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealizedSchedule {
    n: usize,
    seed: u64,
    kind: RealizedKind,
}

impl RealizedSchedule {
    /// The number of processes every per-round graph covers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The communication graph of `round`. Static and periodic schedules
    /// hand back their pre-realized phases; churn builds the round's
    /// subgraph of the base on demand (borrowed vs. owned is an
    /// implementation detail the [`Cow`] hides).
    #[must_use]
    pub fn adjacency_at(&self, round: Round) -> Cow<'_, Adjacency> {
        match &self.kind {
            RealizedKind::Static(adjacency) => Cow::Borrowed(adjacency),
            RealizedKind::Periodic(phases) => {
                Cow::Borrowed(&phases[(round.index() % phases.len() as u64) as usize])
            }
            RealizedKind::Churn { base, flip_rate } => {
                if *flip_rate == 0.0 {
                    return Cow::Borrowed(base);
                }
                let surviving = (0..self.n).flat_map(|a| {
                    (a + 1..self.n).filter_map(move |b| {
                        (base.connected(ProcessId::new(a), ProcessId::new(b))
                            && !churn_link_down(self.seed, round.index(), a, b, *flip_rate))
                        .then_some((a, b))
                    })
                });
                Cow::Owned(
                    Adjacency::from_edges(self.n, surviving)
                        .expect("surviving edges stay inside the universe"),
                )
            }
        }
    }

    /// The single graph of a static schedule, or `None` for a genuinely
    /// dynamic one.
    #[must_use]
    pub fn static_adjacency(&self) -> Option<&Adjacency> {
        match &self.kind {
            RealizedKind::Static(adjacency) => Some(adjacency),
            _ => None,
        }
    }

    /// The graphs configuration-time validation inspects: the static graph,
    /// every periodic phase, or the churn base.
    #[must_use]
    pub fn validation_graphs(&self) -> &[Adjacency] {
        match &self.kind {
            RealizedKind::Static(adjacency) => std::slice::from_ref(adjacency),
            RealizedKind::Periodic(phases) => phases,
            RealizedKind::Churn { base, .. } => std::slice::from_ref(base),
        }
    }

    /// The realized kind, for the shared batch realization.
    pub(crate) fn kind(&self) -> &RealizedKind {
        &self.kind
    }

    /// Returns `true` when per-round graphs can differ from one another
    /// (periodic with more than one distinct phase, or churn with a
    /// positive flip rate).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        match &self.kind {
            RealizedKind::Static(_) => false,
            RealizedKind::Periodic(phases) => phases.iter().any(|p| p != &phases[0]),
            RealizedKind::Churn { flip_rate, .. } => *flip_rate > 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn directed_complete_and_symmetric_roundtrip() {
        let symmetric = Adjacency::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let directed = DirectedAdjacency::from_symmetric(&symmetric);
        assert!(directed.is_symmetric());
        assert!(directed.is_strongly_connected());
        assert_eq!(directed.to_symmetric().unwrap(), symmetric);
        assert_eq!(directed.arc_count(), 2 * symmetric.edge_count());
        assert!(DirectedAdjacency::complete(3).is_complete());
        assert_eq!(
            DirectedAdjacency::from(Adjacency::complete(3)),
            DirectedAdjacency::complete(3)
        );
    }

    #[test]
    fn one_way_arcs_break_symmetry_and_strong_connectivity() {
        let one_way = DirectedAdjacency::from_arcs(3, [(0, 1), (1, 2), (2, 1), (1, 0)]).unwrap();
        // 2 hears 1 and 1 hears 2, but nothing reaches 0 except via 1.
        assert!(one_way.is_strongly_connected());
        let severed = DirectedAdjacency::from_arcs(3, [(0, 1), (1, 2)]).unwrap();
        assert!(!severed.is_symmetric());
        assert!(!severed.is_strongly_connected());
        assert!(severed.to_symmetric().is_err());
        assert_eq!(severed.out_neighbors(pid(0)), vec![pid(1)]);
        assert_eq!(severed.in_neighbors(pid(0)), vec![]);
        assert_eq!(severed.in_degree(pid(2)), 1);
        assert_eq!(severed.out_degree(pid(2)), 0);
        assert_eq!(severed.min_in_closed_neighborhood(), 1);
    }

    #[test]
    fn directed_from_matrix_accepts_asymmetry_but_validates_shape() {
        let asym =
            DirectedAdjacency::from_matrix(vec![vec![false, true], vec![false, false]]).unwrap();
        assert!(asym.delivers(pid(0), pid(1)));
        assert!(!asym.delivers(pid(1), pid(0)));
        // Diagonal forced on.
        assert!(asym.delivers(pid(0), pid(0)));
        assert!(DirectedAdjacency::from_matrix(vec![]).is_err());
        assert!(DirectedAdjacency::from_matrix(vec![vec![true], vec![true]]).is_err());
        assert!(matches!(
            DirectedAdjacency::from_arcs(2, [(0, 5)]),
            Err(Error::UnknownProcess { n: 2, .. })
        ));
    }

    #[test]
    fn link_fault_plan_compiles_rules_in_order() {
        let plan = LinkFaultPlan::new()
            .omit_all(0.1)
            .omit(0, 1, 0.9)
            .delay(1, 0, 2);
        let compiled = plan.compile(3).unwrap();
        assert_eq!(compiled.omit_probability(pid(0), pid(1)), 0.9);
        assert_eq!(compiled.omit_probability(pid(0), pid(2)), 0.1);
        assert_eq!(compiled.delay(pid(1), pid(0)), 2);
        assert_eq!(compiled.delay(pid(0), pid(1)), 0);
        // Self-links are never faulted, wildcards notwithstanding.
        assert_eq!(compiled.omit_probability(pid(1), pid(1)), 0.0);
        assert!(!compiled.is_clean());
        assert!(LinkFaultPlan::new().compile(3).unwrap().is_clean());
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn compiled_faults_panic_on_out_of_universe_lookups() {
        let compiled = LinkFaultPlan::new().compile(3).unwrap();
        let _ = compiled.omit_probability(pid(0), pid(5));
    }

    #[test]
    fn link_fault_plan_validates_probabilities_and_endpoints() {
        assert!(LinkFaultPlan::new().omit(0, 1, 1.5).validate(3).is_err());
        assert!(LinkFaultPlan::new()
            .omit(0, 1, f64::NAN)
            .validate(3)
            .is_err());
        assert!(matches!(
            LinkFaultPlan::new().delay(0, 7, 1).validate(3),
            Err(Error::UnknownProcess { n: 3, .. })
        ));
        assert!(LinkFaultPlan::new().cut(0, 1).validate(2).is_ok());
    }

    #[test]
    fn omission_draw_is_deterministic_and_respects_extremes() {
        assert!(!omission_lost(7, 3, 0, 1, 0.0));
        assert!(omission_lost(7, 3, 0, 1, 1.0));
        for round in 0..50 {
            assert_eq!(
                omission_lost(7, round, 0, 1, 0.5),
                omission_lost(7, round, 0, 1, 0.5)
            );
        }
        // Roughly half the draws land on each side for p = 0.5.
        let lost = (0..1000)
            .filter(|&r| omission_lost(11, r, 2, 3, 0.5))
            .count();
        assert!((350..=650).contains(&lost), "p=0.5 lost {lost}/1000");
    }

    #[test]
    fn static_schedule_realizes_to_one_graph() {
        let realized = TopologySchedule::Static(Topology::Ring { k: 2 })
            .realize(9, 0)
            .unwrap();
        assert!(!realized.is_dynamic());
        assert_eq!(realized.validation_graphs().len(), 1);
        let r0 = realized.adjacency_at(Round::ZERO);
        let r9 = realized.adjacency_at(Round::new(9));
        assert_eq!(r0, r9);
        assert_eq!(realized.static_adjacency(), Some(&*r0));
        assert!(TopologySchedule::default().is_static_complete());
    }

    #[test]
    fn periodic_schedule_rotates_phases() {
        let schedule = TopologySchedule::Periodic {
            phases: vec![Topology::Ring { k: 1 }, Topology::Complete],
        };
        let realized = schedule.realize(6, 3).unwrap();
        assert!(realized.is_dynamic());
        assert!(realized.static_adjacency().is_none());
        assert!(!realized.adjacency_at(Round::ZERO).is_complete());
        assert!(realized.adjacency_at(Round::new(1)).is_complete());
        assert_eq!(
            realized.adjacency_at(Round::new(4)),
            realized.adjacency_at(Round::ZERO)
        );
        assert!(matches!(
            TopologySchedule::Periodic { phases: vec![] }.realize(6, 3),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn periodic_random_regular_phases_draw_distinct_graphs() {
        let schedule = TopologySchedule::Periodic {
            phases: vec![
                Topology::RandomRegular { degree: 4 },
                Topology::RandomRegular { degree: 4 },
            ],
        };
        let realized = schedule.realize(10, 7).unwrap();
        assert_ne!(
            realized.adjacency_at(Round::ZERO),
            realized.adjacency_at(Round::new(1)),
            "per-phase seeds should decorrelate identical families"
        );
    }

    #[test]
    fn churn_is_deterministic_per_round_and_bounded_by_base() {
        let schedule = TopologySchedule::SeededChurn {
            base: Topology::Ring { k: 2 },
            flip_rate: 0.4,
        };
        let a = schedule.realize(9, 5).unwrap();
        let b = schedule.realize(9, 5).unwrap();
        let base = Topology::Ring { k: 2 }.realize(9, 5).unwrap();
        let mut saw_a_drop = false;
        for round in 0..30 {
            let ga = a.adjacency_at(Round::new(round));
            assert_eq!(*ga, *b.adjacency_at(Round::new(round)));
            for x in 0..9 {
                for y in 0..9 {
                    if ga.connected(pid(x), pid(y)) {
                        assert!(base.connected(pid(x), pid(y)), "churn invented a link");
                    }
                }
            }
            if ga.edge_count() < base.edge_count() {
                saw_a_drop = true;
            }
        }
        assert!(
            saw_a_drop,
            "flip_rate 0.4 never dropped a link in 30 rounds"
        );
        // Different seeds draw different evolutions (overwhelmingly).
        let c = schedule.realize(9, 6).unwrap();
        assert!((0..30).any(|r| *a.adjacency_at(Round::new(r)) != *c.adjacency_at(Round::new(r))));
    }

    #[test]
    fn churn_extremes_and_validation() {
        let frozen = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.0,
        }
        .realize(5, 0)
        .unwrap();
        assert!(!frozen.is_dynamic());
        assert!(frozen.adjacency_at(Round::new(9)).is_complete());

        let dark = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 1.0,
        }
        .realize(5, 0)
        .unwrap();
        assert_eq!(dark.adjacency_at(Round::ZERO).edge_count(), 0);

        assert!(matches!(
            TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 1.5,
            }
            .realize(5, 0),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn churn_union_over_a_window_recovers_the_base() {
        let realized = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.5,
        }
        .realize(7, 2)
        .unwrap();
        let mut union = [false; 7 * 7];
        for round in 0..12 {
            let g = realized.adjacency_at(Round::new(round));
            for a in 0..7 {
                for b in 0..7 {
                    if g.connected(pid(a), pid(b)) {
                        union[a * 7 + b] = true;
                    }
                }
            }
        }
        assert!(
            union.iter().all(|&present| present),
            "union of 12 churned rounds at flip_rate 0.5 should cover the complete base"
        );
    }

    #[test]
    fn displays_name_the_families() {
        assert_eq!(
            TopologySchedule::Static(Topology::Complete).to_string(),
            "static(complete)"
        );
        assert_eq!(
            TopologySchedule::Periodic {
                phases: vec![Topology::Ring { k: 1 }, Topology::Grid],
            }
            .to_string(),
            "periodic(ring(k=1), grid)"
        );
        assert_eq!(
            TopologySchedule::SeededChurn {
                base: Topology::Complete,
                flip_rate: 0.25,
            }
            .to_string(),
            "churn(complete, flip_rate=0.25)"
        );
        assert_eq!(LinkFaultPlan::new().to_string(), "clean");
        assert_eq!(
            LinkFaultPlan::new().cut(0, 1).to_string(),
            "1 link-fault rule(s)"
        );
        assert_eq!(DisconnectionPolicy::Record.to_string(), "record");
        assert_eq!(DisconnectionPolicy::Reject.to_string(), "reject");
        assert_eq!(
            DirectedAdjacency::complete(3).to_string(),
            "3 processes, 6 arcs, min in-neighbourhood 3"
        );
    }

    #[test]
    fn singleton_universe_is_strongly_connected() {
        let one = DirectedAdjacency::complete(1);
        assert!(one.is_strongly_connected());
        assert!(one.is_symmetric());
        assert_eq!(one.min_in_closed_neighborhood(), 1);
        assert_eq!(one.arc_count(), 0);
    }
}
