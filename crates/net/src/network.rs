//! The synchronous exchange engine.

use mbaa_types::{Error, ProcessId, Result, Round};

use crate::{NetworkStats, NetworkTrace, Outbox, RoundDelivery, RoundTrace};

/// A fully connected, authenticated, reliable synchronous network of `n`
/// processes.
///
/// One call to [`SyncNetwork::exchange`] performs the send and receive
/// phases of a round: it takes one [`Outbox`] per process and returns one
/// [`RoundDelivery`] per process, guaranteeing that
///
/// * every non-omitted slot is delivered exactly once (*reliability*),
/// * a delivered value is attributed to its true sender (*authentication*),
/// * no value is delivered that was not sent (*no creation*).
///
/// The engine also keeps a [`NetworkTrace`] of everything that was delivered
/// (used by the Table 1 behaviour classification) and running
/// [`NetworkStats`].
///
/// # Example
///
/// ```
/// use mbaa_net::{Outbox, SyncNetwork};
/// use mbaa_types::{ProcessId, Round, Value};
///
/// let mut net = SyncNetwork::new(2);
/// let outboxes = vec![
///     Outbox::broadcast(2, ProcessId::new(0), Value::new(0.25)),
///     Outbox::broadcast(2, ProcessId::new(1), Value::new(0.75)),
/// ];
/// let deliveries = net.exchange(Round::ZERO, outboxes)?;
/// assert_eq!(deliveries[1].from_sender(ProcessId::new(0)), Some(Value::new(0.25)));
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyncNetwork {
    n: usize,
    stats: NetworkStats,
    trace: NetworkTrace,
    record_trace: bool,
}

impl SyncNetwork {
    /// Creates a network connecting `n` processes, with tracing enabled.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a network needs at least one process");
        SyncNetwork {
            n,
            stats: NetworkStats::new(),
            trace: NetworkTrace::new(),
            record_trace: true,
        }
    }

    /// Creates a network that does not record per-round traces (cheaper for
    /// long benchmark runs).
    #[must_use]
    pub fn without_trace(n: usize) -> Self {
        let mut net = Self::new(n);
        net.record_trace = false;
        net
    }

    /// The number of connected processes.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The accumulated traffic statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// The recorded trace (empty when tracing is disabled).
    #[must_use]
    pub fn trace(&self) -> &NetworkTrace {
        &self.trace
    }

    /// Performs the send + receive phases of `round`.
    ///
    /// `outboxes` must contain exactly one outbox per process, ordered by
    /// process index, each covering the full universe.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when the number of outboxes is not
    /// `n`, and [`Error::InvalidParameter`] when an outbox is mis-ordered
    /// (authentication would be violated) or covers the wrong universe.
    pub fn exchange(&mut self, round: Round, outboxes: Vec<Outbox>) -> Result<Vec<RoundDelivery>> {
        if outboxes.len() != self.n {
            return Err(Error::WrongInputCount {
                provided: outboxes.len(),
                expected: self.n,
            });
        }
        for (i, outbox) in outboxes.iter().enumerate() {
            if outbox.sender() != ProcessId::new(i) {
                return Err(Error::InvalidParameter(format!(
                    "outbox at position {i} claims sender {} (authentication violation)",
                    outbox.sender()
                )));
            }
            if outbox.universe() != self.n {
                return Err(Error::InvalidParameter(format!(
                    "outbox of {} covers {} receivers, expected {}",
                    outbox.sender(),
                    outbox.universe(),
                    self.n
                )));
            }
        }

        // Receive phase: transpose the outbox matrix. Slot [receiver][sender]
        // of the delivery matrix is slot [sender][receiver] of the outboxes.
        let deliveries: Vec<RoundDelivery> = (0..self.n)
            .map(|r| {
                let receiver = ProcessId::new(r);
                let slots = outboxes.iter().map(|outbox| outbox.get(receiver)).collect();
                RoundDelivery::from_slots(receiver, slots)
            })
            .collect();

        // Bookkeeping.
        self.stats.rounds += 1;
        for delivery in &deliveries {
            let delivered = delivery.delivered_count() as u64;
            self.stats.messages_delivered += delivered;
            self.stats.omissions += self.n as u64 - delivered;
        }
        if self.record_trace {
            self.trace.push(RoundTrace::from_outboxes(round, &outboxes));
        }

        Ok(deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::Value;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn exchange_transposes_outboxes() {
        let mut net = SyncNetwork::new(3);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::per_receiver(
                pid(1),
                vec![
                    Some(Value::new(10.0)),
                    Some(Value::new(11.0)),
                    Some(Value::new(12.0)),
                ],
            ),
            Outbox::silent(3, pid(2)),
        ];
        let deliveries = net.exchange(Round::ZERO, outboxes).unwrap();
        assert_eq!(deliveries.len(), 3);

        // Receiver 0: hears 0.0 from p0, 10.0 from p1, nothing from p2.
        assert_eq!(deliveries[0].from_sender(pid(0)), Some(Value::new(0.0)));
        assert_eq!(deliveries[0].from_sender(pid(1)), Some(Value::new(10.0)));
        assert_eq!(deliveries[0].from_sender(pid(2)), None);

        // Receiver 2 hears the asymmetric sender's third slot.
        assert_eq!(deliveries[2].from_sender(pid(1)), Some(Value::new(12.0)));
    }

    #[test]
    fn exchange_rejects_wrong_count() {
        let mut net = SyncNetwork::new(3);
        let outboxes = vec![Outbox::broadcast(3, pid(0), Value::new(0.0))];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(
            err,
            Error::WrongInputCount {
                provided: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn exchange_rejects_forged_sender() {
        let mut net = SyncNetwork::new(2);
        // Position 0 claims to be p1: identity forging is impossible in the
        // authenticated model, so the engine rejects it.
        let outboxes = vec![
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
        ];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn exchange_rejects_wrong_universe() {
        let mut net = SyncNetwork::new(2);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
        ];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn stats_accumulate() {
        let mut net = SyncNetwork::new(2);
        let round_outboxes = || {
            vec![
                Outbox::broadcast(2, pid(0), Value::new(1.0)),
                Outbox::silent(2, pid(1)),
            ]
        };
        net.exchange(Round::ZERO, round_outboxes()).unwrap();
        net.exchange(Round::new(1), round_outboxes()).unwrap();
        let stats = net.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages_delivered, 4);
        assert_eq!(stats.omissions, 4);
        assert_eq!(stats.messages_per_round(), 2.0);
    }

    #[test]
    fn trace_records_rounds_unless_disabled() {
        let outboxes = || vec![Outbox::broadcast(1, pid(0), Value::new(1.0))];

        let mut traced = SyncNetwork::new(1);
        traced.exchange(Round::ZERO, outboxes()).unwrap();
        assert_eq!(traced.trace().len(), 1);

        let mut untraced = SyncNetwork::without_trace(1);
        untraced.exchange(Round::ZERO, outboxes()).unwrap();
        assert!(untraced.trace().is_empty());
        assert_eq!(untraced.stats().rounds, 1);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_network_panics() {
        let _ = SyncNetwork::new(0);
    }
}
