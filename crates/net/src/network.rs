//! The synchronous exchange engine.

use std::collections::VecDeque;

use mbaa_types::{Error, ProcessId, Result, Round, Value};

use crate::faults::omission_lost;
use crate::{
    Adjacency, CompiledLinkFaults, DeliveryMatrix, DirectedAdjacency, DisconnectionPolicy,
    LinkFaultPlan, NetworkStats, NetworkTrace, Outbox, RealizedSchedule, RoundDelivery, RoundTrace,
};

/// An authenticated, reliable synchronous network of `n` processes — fully
/// connected by default, or mediated by a partial [`Adjacency`] when built
/// [`with_topology`](SyncNetwork::with_topology).
///
/// One call to [`SyncNetwork::exchange`] performs the send and receive
/// phases of a round: it takes one [`Outbox`] per process and returns one
/// [`RoundDelivery`] per process, guaranteeing that
///
/// * every non-omitted slot between neighbours is delivered exactly once
///   (*reliability*),
/// * a delivered value is attributed to its true sender (*authentication*),
/// * no value is delivered that was not sent (*no creation*),
/// * nothing crosses a missing link: non-neighbour slots are *structural*
///   `None`s, counted in [`NetworkStats::unreachable`] (never as omission
///   faults) and flagged per receiver in the trace.
///
/// The engine also keeps a [`NetworkTrace`] of everything that was delivered
/// (used by the Table 1 behaviour classification) and running
/// [`NetworkStats`].
///
/// # Example
///
/// ```
/// use mbaa_net::{Outbox, SyncNetwork};
/// use mbaa_types::{ProcessId, Round, Value};
///
/// let mut net = SyncNetwork::new(2);
/// let outboxes = vec![
///     Outbox::broadcast(2, ProcessId::new(0), Value::new(0.25)),
///     Outbox::broadcast(2, ProcessId::new(1), Value::new(0.75)),
/// ];
/// let deliveries = net.exchange(Round::ZERO, outboxes)?;
/// assert_eq!(deliveries[1].from_sender(ProcessId::new(0)), Some(Value::new(0.25)));
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyncNetwork {
    n: usize,
    /// `None` means fully connected (the legacy fast path, bit-identical to
    /// the pre-topology engine); `Some` masks delivery by adjacency.
    topology: Option<Adjacency>,
    /// `Some` masks delivery by a *directed* graph — one-way links deliver
    /// one way only. Mutually exclusive with `topology` and `dynamics`.
    directed: Option<DirectedAdjacency>,
    /// `Some` routes every exchange through the dynamic path: per-round
    /// realized graphs and per-link omission/delay faults. A static
    /// schedule with a clean fault plan lowers onto the legacy fields
    /// instead, so this is only populated when genuinely needed.
    dynamics: Option<Dynamics>,
    stats: NetworkStats,
    trace: NetworkTrace,
    record_trace: bool,
}

/// The machinery of a dynamic, link-faulted exchange.
#[derive(Debug, Clone)]
struct Dynamics {
    schedule: RealizedSchedule,
    faults: CompiledLinkFaults,
    policy: DisconnectionPolicy,
    /// Seed of every omission draw (decorrelated from the schedule's own
    /// stream inside the draw functions).
    seed: u64,
    /// One in-order delivery buffer per directed link, indexed
    /// `from * n + to`; only links with a positive delay ever hold
    /// entries. A message pushed in round `r` on a `delay = d` link is
    /// popped in round `r + d`, behind every earlier message on that link.
    pipes: Vec<VecDeque<SendOutcome>>,
    /// The round the next exchange must carry. The pipes advance once per
    /// exchange while draws and realized graphs key on the caller's round
    /// index, so the dynamic path only stays coherent when rounds arrive
    /// in order from zero — enforced, not assumed.
    next_round: u64,
    /// Reused per-round scratch: `link_flags[s * n + r]` marks the slot of
    /// sender `s` to receiver `r` as governed by a link fault this round,
    /// `reach_flags` records the round's structural mask. Kept here so the
    /// dynamic path, like the static ones, allocates nothing per round.
    link_flags: Vec<bool>,
    /// See [`Dynamics::link_flags`].
    reach_flags: Vec<bool>,
}

/// What the send phase put on one directed link in one round — classified
/// at send time, accounted at delivery time. Crate-visible so the shared
/// batch realization's delay pipes buffer the identical classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SendOutcome {
    /// A value was sent and survived the link.
    Value(Value),
    /// The sender omitted (an adversary/benign fault, attributable to the
    /// sender).
    SenderOmitted,
    /// The pair shared no link in the send round (structural).
    Unreachable,
    /// The link's omission draw lost the message (a link fault).
    LinkOmitted,
}

impl SyncNetwork {
    /// Creates a fully connected network of `n` processes, with tracing
    /// enabled.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a network needs at least one process");
        SyncNetwork {
            n,
            topology: None,
            directed: None,
            dynamics: None,
            stats: NetworkStats::new(),
            trace: NetworkTrace::new(),
            record_trace: true,
        }
    }

    /// Creates a network that does not record per-round traces (cheaper for
    /// long benchmark runs).
    #[must_use]
    pub fn without_trace(n: usize) -> Self {
        Self::new(n).with_trace_recording(false)
    }

    /// Enables or disables per-round trace recording on any network form —
    /// the knob the engine's `Observe` level lowers onto. With recording
    /// off, [`trace`](SyncNetwork::trace) stays empty and exchanges never
    /// allocate observation records; delivery and statistics are
    /// unaffected.
    #[must_use]
    pub fn with_trace_recording(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Creates a network whose delivery is masked by the given adjacency:
    /// slots between non-neighbours are structurally undeliverable. A
    /// complete adjacency is recognized and lowered to the unmasked fast
    /// path, so `with_topology(Adjacency::complete(n))` behaves
    /// bit-identically to [`SyncNetwork::new`].
    #[must_use]
    pub fn with_topology(adjacency: Adjacency) -> Self {
        let mut net = Self::new(adjacency.n());
        if !adjacency.is_complete() {
            net.topology = Some(adjacency);
        }
        net
    }

    /// Creates a network whose delivery is masked by a **directed** graph:
    /// a message crosses `a -> b` only when the arc exists, so one-way
    /// links deliver one way only. A symmetric directed graph is lowered
    /// to the equivalent [`with_topology`](SyncNetwork::with_topology)
    /// mask (and a complete one all the way to the unmasked fast path), so
    /// `with_directed_topology(DirectedAdjacency::from_symmetric(&a))`
    /// behaves bit-identically to `with_topology(a)`.
    #[must_use]
    pub fn with_directed_topology(directed: DirectedAdjacency) -> Self {
        if let Ok(symmetric) = directed.to_symmetric() {
            return Self::with_topology(symmetric);
        }
        let mut net = Self::new(directed.n());
        net.directed = Some(directed);
        net
    }

    /// Creates a network with a per-round topology schedule and a per-link
    /// fault plan — the fully dynamic form. A schedule whose per-round
    /// graphs cannot differ (static, frozen churn, constant periodic —
    /// [`RealizedSchedule::is_dynamic`] is `false`) with a clean plan
    /// lowers onto the corresponding static path ([`SyncNetwork::new`] for
    /// the complete graph, [`with_topology`](SyncNetwork::with_topology)
    /// otherwise), staying bit-identical to it; anything else routes every
    /// exchange through the dynamic path: the round's realized graph masks
    /// delivery, link omission draws (deterministic in
    /// `(seed, round, link)`) lose messages, and delayed links buffer them
    /// in order. The dynamic path requires rounds to be exchanged in
    /// order, starting at [`Round::ZERO`] — the delay buffers advance once
    /// per round.
    ///
    /// Disconnected *per-round* graphs are handled per `policy`; a static
    /// disconnected graph is the configuration layer's concern, exactly as
    /// with [`with_topology`](SyncNetwork::with_topology).
    ///
    /// # Errors
    ///
    /// Propagates [`LinkFaultPlan::compile`] validation errors.
    pub fn with_dynamics(
        schedule: RealizedSchedule,
        link_faults: &LinkFaultPlan,
        policy: DisconnectionPolicy,
        seed: u64,
    ) -> Result<Self> {
        let n = schedule.n();
        let faults = link_faults.compile(n)?;
        if faults.is_clean() && !schedule.is_dynamic() {
            // Every round realizes the same graph: round 0 describes the
            // whole run, and the static machinery is both cheaper and
            // proven bit-identical.
            return Ok(Self::with_topology(
                schedule.adjacency_at(Round::ZERO).into_owned(),
            ));
        }
        let mut net = Self::new(n);
        net.dynamics = Some(Dynamics {
            schedule,
            faults,
            policy,
            seed,
            pipes: vec![VecDeque::new(); n * n],
            next_round: 0,
            link_flags: vec![false; n * n],
            reach_flags: vec![false; n * n],
        });
        Ok(net)
    }

    /// The number of connected processes.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The symmetric adjacency masking delivery, or `None` for a fully
    /// connected network, a directed mask, or a dynamic schedule.
    #[must_use]
    pub fn topology(&self) -> Option<&Adjacency> {
        self.topology.as_ref()
    }

    /// The directed graph masking delivery, or `None` when the mask is
    /// symmetric (or absent, or dynamic).
    #[must_use]
    pub fn directed_topology(&self) -> Option<&DirectedAdjacency> {
        self.directed.as_ref()
    }

    /// Returns `true` when exchanges run through the dynamic path
    /// (a genuinely dynamic schedule or a non-clean link-fault plan).
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        self.dynamics.is_some()
    }

    /// The accumulated traffic statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// The recorded trace (empty when tracing is disabled).
    #[must_use]
    pub fn trace(&self) -> &NetworkTrace {
        &self.trace
    }

    /// Consumes the network, returning the recorded trace and the final
    /// statistics **by move**. This is how a finished run hands its trace
    /// to the outcome without cloning the n²-per-round observation records.
    #[must_use]
    pub fn into_parts(self) -> (NetworkTrace, NetworkStats) {
        (self.trace, self.stats)
    }

    /// Performs the send + receive phases of `round`.
    ///
    /// `outboxes` must contain exactly one outbox per process, ordered by
    /// process index, each covering the full universe.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when the number of outboxes is not
    /// `n`, [`Error::InvalidParameter`] when an outbox is mis-ordered
    /// (authentication would be violated), covers the wrong universe, or a
    /// dynamic network's rounds arrive out of order (the delay buffers
    /// advance once per round, so a dynamic exchange must run `r0, r1, …`
    /// sequentially), and [`Error::DisconnectedRound`] when a dynamic
    /// schedule realizes a disconnected graph under the
    /// [`DisconnectionPolicy::Reject`] policy.
    pub fn exchange(&mut self, round: Round, outboxes: Vec<Outbox>) -> Result<Vec<RoundDelivery>> {
        let mut matrix = DeliveryMatrix::new(self.n);
        self.exchange_into(round, &outboxes, &mut matrix)?;
        Ok((0..self.n)
            .map(|r| matrix.to_round_delivery(ProcessId::new(r)))
            .collect())
    }

    /// In-place form of [`SyncNetwork::exchange`]: performs the send +
    /// receive phases of `round`, writing every `[receiver][sender]` slot
    /// into `out` instead of materializing per-receiver [`RoundDelivery`]
    /// vectors. On the static paths (complete, masked, or directed graph)
    /// a steady-state exchange performs **no heap allocation**: the caller
    /// reuses one [`DeliveryMatrix`] across rounds and trace recording, if
    /// enabled, is the only remaining per-round allocation.
    ///
    /// Slot contents, statistics, and the recorded trace are bit-identical
    /// to [`SyncNetwork::exchange`] — `exchange` is implemented on top of
    /// this method.
    ///
    /// # Errors
    ///
    /// Exactly as [`SyncNetwork::exchange`].
    // mbaa: alloc-free
    pub fn exchange_into(
        &mut self,
        round: Round,
        outboxes: &[Outbox],
        out: &mut DeliveryMatrix,
    ) -> Result<()> {
        if outboxes.len() != self.n {
            return Err(Error::WrongInputCount {
                provided: outboxes.len(),
                expected: self.n,
            });
        }
        for (i, outbox) in outboxes.iter().enumerate() {
            if outbox.sender() != ProcessId::new(i) {
                // mbaa: allow(hot-path/allocation, cold validation error path)
                return Err(Error::InvalidParameter(format!(
                    "outbox at position {i} claims sender {} (authentication violation)",
                    outbox.sender()
                )));
            }
            if outbox.universe() != self.n {
                // mbaa: allow(hot-path/allocation, cold validation error path)
                return Err(Error::InvalidParameter(format!(
                    "outbox of {} covers {} receivers, expected {}",
                    outbox.sender(),
                    outbox.universe(),
                    self.n
                )));
            }
        }
        out.reset(self.n);
        if self.dynamics.is_some() {
            return self.exchange_dynamic(round, outboxes, out);
        }
        if self.directed.is_some() {
            return self.exchange_directed(round, outboxes, out);
        }

        // Receive phase: transpose the outbox matrix. Slot [receiver][sender]
        // of the delivery matrix is slot [sender][receiver] of the outboxes,
        // masked to a structural None when the pair shares no link.
        // Bookkeeping rides along: undeliverable slots are structural, not
        // faults — they go to `unreachable`, never to `omissions`.
        self.stats.rounds += 1;
        for r in 0..self.n {
            let receiver = ProcessId::new(r);
            let row = out.row_mut(r);
            let mut delivered = 0u64;
            match &self.topology {
                None => {
                    for (slot, outbox) in row.iter_mut().zip(outboxes) {
                        *slot = outbox.get(receiver);
                        delivered += u64::from(slot.is_some());
                    }
                }
                Some(adjacency) => {
                    for (slot, outbox) in row.iter_mut().zip(outboxes) {
                        *slot = adjacency
                            .connected(outbox.sender(), receiver)
                            .then(|| outbox.get(receiver))
                            .flatten();
                        delivered += u64::from(slot.is_some());
                    }
                }
            }
            let reachable = match &self.topology {
                None => self.n as u64,
                // The closed neighbourhood: the receiver always hears itself.
                Some(adjacency) => adjacency.degree(receiver) as u64 + 1,
            };
            self.stats.messages_delivered += delivered;
            self.stats.omissions += reachable - delivered;
            self.stats.unreachable += self.n as u64 - reachable;
        }
        if self.record_trace {
            let round_trace = match &self.topology {
                None => RoundTrace::from_outboxes(round, outboxes),
                Some(adjacency) => RoundTrace::from_outboxes_masked(round, outboxes, adjacency),
            };
            // mbaa: allow(hot-path/vec-growth, trace recording is opt-in observability off the Summary hot path)
            self.trace.push(round_trace);
        }

        Ok(())
    }

    /// The receive phase of a directed-topology exchange: a slot delivers
    /// only when the sender's arc to the receiver exists. Structural
    /// non-deliveries count as `unreachable`, exactly like the symmetric
    /// mask.
    fn exchange_directed(
        &mut self,
        round: Round,
        outboxes: &[Outbox],
        out: &mut DeliveryMatrix,
    ) -> Result<()> {
        let directed = self.directed.as_ref().expect("directed mask present");
        self.stats.rounds += 1;
        for r in 0..self.n {
            let receiver = ProcessId::new(r);
            let row = out.row_mut(r);
            let mut delivered = 0u64;
            for (slot, outbox) in row.iter_mut().zip(outboxes) {
                *slot = directed
                    .delivers(outbox.sender(), receiver)
                    .then(|| outbox.get(receiver))
                    .flatten();
                delivered += u64::from(slot.is_some());
            }
            // The closed in-neighbourhood: the receiver always hears itself.
            let reachable = directed.in_degree(receiver) as u64 + 1;
            self.stats.messages_delivered += delivered;
            self.stats.omissions += reachable - delivered;
            self.stats.unreachable += self.n as u64 - reachable;
        }
        if self.record_trace {
            self.trace.push(RoundTrace::from_outboxes_directed(
                round, outboxes, directed,
            ));
        }
        Ok(())
    }

    /// The receive phase of a dynamic, link-faulted exchange: the round's
    /// realized graph masks delivery, omission draws lose messages, and
    /// delayed links serve their in-order buffers. Each slot's outcome is
    /// classified at *send* time and accounted at *delivery* time, so a
    /// sender omission travelling a delayed link is still charged to the
    /// sender in the round it surfaces, never to the link.
    fn exchange_dynamic(
        &mut self,
        round: Round,
        outboxes: &[Outbox],
        out: &mut DeliveryMatrix,
    ) -> Result<()> {
        let n = self.n;
        let Dynamics {
            schedule,
            faults,
            policy,
            seed,
            pipes,
            next_round,
            link_flags,
            reach_flags,
        } = self.dynamics.as_mut().expect("dynamics present");
        if round.index() != *next_round {
            return Err(Error::InvalidParameter(format!(
                "a dynamic network exchanges rounds in order: expected r{}, got {round} \
                 (delay buffers advance once per round)",
                *next_round
            )));
        }
        *next_round += 1;
        let seed = *seed;
        let adjacency = schedule.adjacency_at(round);

        if !adjacency.is_connected() {
            match policy {
                DisconnectionPolicy::Reject => {
                    return Err(Error::DisconnectedRound {
                        round,
                        components: adjacency.component_count(),
                    });
                }
                DisconnectionPolicy::Record => self.stats.disconnected_rounds += 1,
            }
        }

        // The flag scratch is filled during the delivery loop so the trace
        // below never re-scans the adjacency: every `reach_flags` slot is
        // overwritten, `link_flags` only gets set on fault paths and must
        // start clean.
        link_flags.fill(false);
        for r in 0..n {
            let receiver = ProcessId::new(r);
            let row = out.row_mut(r);
            for (s, outbox) in outboxes.iter().enumerate() {
                let sender = ProcessId::new(s);
                let delay = faults.delay_at(s, r);
                let probability = faults.omit_at(s, r);
                let reachable = adjacency.connected(sender, receiver);
                reach_flags[s * n + r] = reachable;
                let sent = if !reachable {
                    SendOutcome::Unreachable
                } else {
                    match outbox.get(receiver) {
                        None => SendOutcome::SenderOmitted,
                        Some(value) => {
                            if omission_lost(seed, round.index(), s, r, probability) {
                                link_flags[s * n + r] = true;
                                SendOutcome::LinkOmitted
                            } else {
                                SendOutcome::Value(value)
                            }
                        }
                    }
                };
                let arrived = if delay == 0 {
                    Some(sent)
                } else {
                    link_flags[s * n + r] = true;
                    let pipe = &mut pipes[s * n + r];
                    pipe.push_back(sent);
                    if pipe.len() > delay {
                        Some(pipe.pop_front().expect("pipe holds > delay entries"))
                    } else {
                        None
                    }
                };
                row[s] = match arrived {
                    Some(SendOutcome::Value(value)) => {
                        self.stats.messages_delivered += 1;
                        if delay > 0 {
                            self.stats.link_delayed += 1;
                        }
                        Some(value)
                    }
                    Some(SendOutcome::SenderOmitted) => {
                        self.stats.omissions += 1;
                        None
                    }
                    Some(SendOutcome::Unreachable) => {
                        self.stats.unreachable += 1;
                        None
                    }
                    Some(SendOutcome::LinkOmitted) => {
                        self.stats.link_omissions += 1;
                        None
                    }
                    None => {
                        self.stats.link_pending += 1;
                        None
                    }
                };
            }
        }
        self.stats.rounds += 1;

        if self.record_trace {
            // The flag scratch is handed to the trace wholesale: the round
            // record copies the flat n × n grids directly, so recording
            // performs a fixed number of allocations regardless of n.
            self.trace.push(RoundTrace::from_outboxes_with_flags(
                round,
                outboxes,
                reach_flags,
                link_flags,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::Value;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn exchange_transposes_outboxes() {
        let mut net = SyncNetwork::new(3);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::per_receiver(
                pid(1),
                vec![
                    Some(Value::new(10.0)),
                    Some(Value::new(11.0)),
                    Some(Value::new(12.0)),
                ],
            ),
            Outbox::silent(3, pid(2)),
        ];
        let deliveries = net.exchange(Round::ZERO, outboxes).unwrap();
        assert_eq!(deliveries.len(), 3);

        // Receiver 0: hears 0.0 from p0, 10.0 from p1, nothing from p2.
        assert_eq!(deliveries[0].from_sender(pid(0)), Some(Value::new(0.0)));
        assert_eq!(deliveries[0].from_sender(pid(1)), Some(Value::new(10.0)));
        assert_eq!(deliveries[0].from_sender(pid(2)), None);

        // Receiver 2 hears the asymmetric sender's third slot.
        assert_eq!(deliveries[2].from_sender(pid(1)), Some(Value::new(12.0)));
    }

    #[test]
    fn exchange_rejects_wrong_count() {
        let mut net = SyncNetwork::new(3);
        let outboxes = vec![Outbox::broadcast(3, pid(0), Value::new(0.0))];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(
            err,
            Error::WrongInputCount {
                provided: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn exchange_rejects_forged_sender() {
        let mut net = SyncNetwork::new(2);
        // Position 0 claims to be p1: identity forging is impossible in the
        // authenticated model, so the engine rejects it.
        let outboxes = vec![
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
        ];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn exchange_rejects_wrong_universe() {
        let mut net = SyncNetwork::new(2);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
        ];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn stats_accumulate() {
        let mut net = SyncNetwork::new(2);
        let round_outboxes = || {
            vec![
                Outbox::broadcast(2, pid(0), Value::new(1.0)),
                Outbox::silent(2, pid(1)),
            ]
        };
        net.exchange(Round::ZERO, round_outboxes()).unwrap();
        net.exchange(Round::new(1), round_outboxes()).unwrap();
        let stats = net.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages_delivered, 4);
        assert_eq!(stats.omissions, 4);
        assert_eq!(stats.messages_per_round(), 2.0);
    }

    #[test]
    fn trace_records_rounds_unless_disabled() {
        let outboxes = || vec![Outbox::broadcast(1, pid(0), Value::new(1.0))];

        let mut traced = SyncNetwork::new(1);
        traced.exchange(Round::ZERO, outboxes()).unwrap();
        assert_eq!(traced.trace().len(), 1);

        let mut untraced = SyncNetwork::without_trace(1);
        untraced.exchange(Round::ZERO, outboxes()).unwrap();
        assert!(untraced.trace().is_empty());
        assert_eq!(untraced.stats().rounds, 1);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_network_panics() {
        let _ = SyncNetwork::new(0);
    }

    #[test]
    fn partial_topology_masks_non_neighbour_slots() {
        // A path 0 — 1 — 2: the ends share no link.
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::with_topology(path);
        assert!(net.topology().is_some());
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            Outbox::broadcast(3, pid(2), Value::new(2.0)),
        ];
        let deliveries = net.exchange(Round::ZERO, outboxes).unwrap();
        // The middle hears everyone; the ends hear themselves, the middle,
        // and a structural None from each other.
        assert_eq!(deliveries[1].delivered_count(), 3);
        assert_eq!(deliveries[0].from_sender(pid(2)), None);
        assert_eq!(deliveries[2].from_sender(pid(0)), None);
        assert_eq!(deliveries[0].from_sender(pid(0)), Some(Value::new(0.0)));
        assert_eq!(deliveries[0].from_sender(pid(1)), Some(Value::new(1.0)));
    }

    #[test]
    fn structural_non_delivery_is_not_an_omission() {
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::with_topology(path);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            // A genuine omission fault, distinct from the missing 0—2 link.
            Outbox::silent(3, pid(2)),
        ];
        net.exchange(Round::ZERO, outboxes).unwrap();
        let stats = net.stats();
        // Reachable slots: 2 + 3 + 2 = 7. p2's silence omits to its
        // reachable audience (itself and p1); the 0—2 slots are structural.
        assert_eq!(stats.unreachable, 2);
        assert_eq!(stats.omissions, 2);
        assert_eq!(stats.messages_delivered, 5);
        assert_eq!(stats.total_slots(), 9);
    }

    #[test]
    fn complete_topology_lowers_to_the_unmasked_fast_path() {
        let mut masked = SyncNetwork::with_topology(crate::Adjacency::complete(3));
        assert!(masked.topology().is_none());
        let mut plain = SyncNetwork::new(3);
        let outboxes = || {
            vec![
                Outbox::broadcast(3, pid(0), Value::new(0.5)),
                Outbox::silent(3, pid(1)),
                Outbox::broadcast(3, pid(2), Value::new(1.5)),
            ]
        };
        let a = masked.exchange(Round::ZERO, outboxes()).unwrap();
        let b = plain.exchange(Round::ZERO, outboxes()).unwrap();
        assert_eq!(a, b);
        assert_eq!(masked.stats(), plain.stats());
        assert_eq!(masked.trace(), plain.trace());
        assert_eq!(masked.stats().unreachable, 0);
    }

    #[test]
    fn directed_topology_delivers_one_way() {
        // p0 -> p1 exists, p1 -> p0 does not; p2 is symmetric with both.
        let directed =
            crate::DirectedAdjacency::from_arcs(3, [(0, 1), (0, 2), (2, 0), (1, 2), (2, 1)])
                .unwrap();
        let mut net = SyncNetwork::with_directed_topology(directed);
        assert!(net.directed_topology().is_some());
        assert!(net.topology().is_none());
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            Outbox::broadcast(3, pid(2), Value::new(2.0)),
        ];
        let deliveries = net.exchange(Round::ZERO, outboxes).unwrap();
        // p1 hears p0; p0 does not hear p1.
        assert_eq!(deliveries[1].from_sender(pid(0)), Some(Value::new(0.0)));
        assert_eq!(deliveries[0].from_sender(pid(1)), None);
        // The one-way gap is structural, not an omission.
        let stats = net.stats();
        assert_eq!(stats.unreachable, 1);
        assert_eq!(stats.omissions, 0);
        assert_eq!(stats.messages_delivered, 8);
        // The trace knows p1 cannot reach p0.
        let obs = net.trace().get(0).unwrap().observation(pid(1));
        assert!(!obs.reaches(pid(0)));
        assert_eq!(
            obs.classify(Some(Value::new(1.0))),
            crate::ObservedBehavior::CorrectBroadcast
        );
    }

    #[test]
    fn symmetric_directed_topology_lowers_to_the_symmetric_mask() {
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let via_directed =
            SyncNetwork::with_directed_topology(crate::DirectedAdjacency::from_symmetric(&path));
        assert!(via_directed.directed_topology().is_none());
        assert_eq!(via_directed.topology(), Some(&path));
        // And a complete directed graph all the way to the fast path.
        let complete = SyncNetwork::with_directed_topology(crate::DirectedAdjacency::complete(3));
        assert!(complete.topology().is_none() && complete.directed_topology().is_none());
    }

    #[test]
    fn masked_trace_flags_unreachable_receivers() {
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::with_topology(path);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            Outbox::broadcast(3, pid(2), Value::new(2.0)),
        ];
        net.exchange(Round::ZERO, outboxes).unwrap();
        let trace = net.trace();
        let obs = trace.get(0).unwrap().observation(pid(0));
        assert!(obs.reaches(pid(1)));
        assert!(!obs.reaches(pid(2)));
        // A masked uniform broadcast still classifies as a broadcast, not
        // as an asymmetric fault.
        assert_eq!(
            obs.classify(Some(Value::new(0.0))),
            crate::ObservedBehavior::CorrectBroadcast
        );
    }

    fn dynamic_net(plan: &LinkFaultPlan, seed: u64) -> SyncNetwork {
        let schedule = crate::TopologySchedule::Static(crate::Topology::Complete)
            .realize(3, seed)
            .unwrap();
        SyncNetwork::with_dynamics(schedule, plan, DisconnectionPolicy::Record, seed).unwrap()
    }

    fn broadcasts() -> Vec<Outbox> {
        (0..3)
            .map(|i| Outbox::broadcast(3, pid(i), Value::new(i as f64)))
            .collect()
    }

    #[test]
    fn clean_static_dynamics_lower_to_the_static_paths() {
        let net = dynamic_net(&LinkFaultPlan::new(), 0);
        assert!(!net.is_dynamic());
        assert!(net.topology().is_none());
        let ringed = SyncNetwork::with_dynamics(
            crate::TopologySchedule::Static(crate::Topology::Ring { k: 1 })
                .realize(5, 0)
                .unwrap(),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            0,
        )
        .unwrap();
        assert!(!ringed.is_dynamic());
        assert!(ringed.topology().is_some());
    }

    #[test]
    fn deterministic_link_cut_is_a_link_omission_not_an_adversary_omission() {
        let plan = LinkFaultPlan::new().cut(0, 1);
        let mut net = dynamic_net(&plan, 9);
        assert!(net.is_dynamic());
        let deliveries = net.exchange(Round::ZERO, broadcasts()).unwrap();
        assert_eq!(deliveries[1].from_sender(pid(0)), None);
        assert_eq!(deliveries[1].from_sender(pid(2)), Some(Value::new(2.0)));
        let stats = net.stats();
        assert_eq!(stats.link_omissions, 1);
        assert_eq!(stats.omissions, 0);
        assert_eq!(stats.unreachable, 0);
        assert_eq!(stats.messages_delivered, 8);
        assert_eq!(stats.total_slots(), 9);
        // The trace blames the link, so the broadcast stays correct.
        let obs = net.trace().get(0).unwrap().observation(pid(0));
        assert!(obs.link_faulted(pid(1)));
        assert_eq!(
            obs.classify(Some(Value::new(0.0))),
            crate::ObservedBehavior::CorrectBroadcast
        );
    }

    #[test]
    fn delayed_link_buffers_in_order_and_accounts_separately() {
        let plan = LinkFaultPlan::new().delay(0, 1, 2);
        let mut net = dynamic_net(&plan, 4);
        let send = |value: f64| {
            vec![
                Outbox::broadcast(3, pid(0), Value::new(value)),
                Outbox::broadcast(3, pid(1), Value::new(10.0)),
                Outbox::broadcast(3, pid(2), Value::new(20.0)),
            ]
        };
        // Rounds 0 and 1: the 0 -> 1 slot is still in the pipe.
        let d0 = net.exchange(Round::ZERO, send(0.5)).unwrap();
        assert_eq!(d0[1].from_sender(pid(0)), None);
        let d1 = net.exchange(Round::new(1), send(1.5)).unwrap();
        assert_eq!(d1[1].from_sender(pid(0)), None);
        assert_eq!(net.stats().link_pending, 2);
        // Round 2 delivers round 0's value; round 3 delivers round 1's —
        // in order, two rounds late.
        let d2 = net.exchange(Round::new(2), send(2.5)).unwrap();
        assert_eq!(d2[1].from_sender(pid(0)), Some(Value::new(0.5)));
        let d3 = net.exchange(Round::new(3), send(3.5)).unwrap();
        assert_eq!(d3[1].from_sender(pid(0)), Some(Value::new(1.5)));
        let stats = net.stats();
        assert_eq!(stats.link_delayed, 2);
        assert_eq!(stats.link_pending, 2);
        assert_eq!(stats.omissions, 0);
        // Every other slot was unaffected.
        assert_eq!(d3[2].from_sender(pid(0)), Some(Value::new(3.5)));
    }

    #[test]
    fn sender_omission_on_a_delayed_link_is_still_charged_to_the_sender() {
        let plan = LinkFaultPlan::new().delay(0, 1, 1);
        let mut net = dynamic_net(&plan, 4);
        let silent_then_loud = vec![
            Outbox::silent(3, pid(0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            Outbox::broadcast(3, pid(2), Value::new(2.0)),
        ];
        net.exchange(Round::ZERO, silent_then_loud).unwrap();
        // Round 1 surfaces round 0's omission on the delayed link.
        net.exchange(Round::new(1), broadcasts()).unwrap();
        let stats = net.stats();
        // p0 omitted to itself and p2 directly in round 0 (2 omissions) and
        // to p1 through the pipe, surfacing in round 1 (1 more).
        assert_eq!(stats.omissions, 3);
        assert_eq!(stats.link_omissions, 0);
        assert_eq!(stats.link_pending, 1);
    }

    #[test]
    fn dynamic_rounds_must_arrive_in_order() {
        let plan = LinkFaultPlan::new().delay(0, 1, 2);
        let mut net = dynamic_net(&plan, 0);
        // Starting anywhere but round 0 is rejected…
        let err = net.exchange(Round::new(3), broadcasts()).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
        // …and so is repeating or skipping a round mid-run.
        net.exchange(Round::ZERO, broadcasts()).unwrap();
        assert!(net.exchange(Round::ZERO, broadcasts()).is_err());
        assert!(net.exchange(Round::new(2), broadcasts()).is_err());
        assert!(net.exchange(Round::new(1), broadcasts()).is_ok());
    }

    #[test]
    fn non_dynamic_schedules_lower_to_the_static_paths() {
        // Frozen churn and constant periodic schedules realize the same
        // graph every round: they take the static machinery, agreeing with
        // RealizedSchedule::is_dynamic.
        let frozen = SyncNetwork::with_dynamics(
            crate::TopologySchedule::SeededChurn {
                base: crate::Topology::Ring { k: 1 },
                flip_rate: 0.0,
            }
            .realize(5, 0)
            .unwrap(),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            0,
        )
        .unwrap();
        assert!(!frozen.is_dynamic());
        assert!(frozen.topology().is_some());

        let constant = SyncNetwork::with_dynamics(
            crate::TopologySchedule::Periodic {
                phases: vec![crate::Topology::Complete, crate::Topology::Complete],
            }
            .realize(4, 0)
            .unwrap(),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            0,
        )
        .unwrap();
        assert!(!constant.is_dynamic());
        assert!(constant.topology().is_none());
    }

    #[test]
    fn seeded_random_omissions_are_deterministic_per_seed() {
        let plan = LinkFaultPlan::new().omit_all(0.5);
        let run = |seed: u64| {
            let mut net = dynamic_net(&plan, seed);
            let mut all = Vec::new();
            for round in 0..20 {
                all.push(net.exchange(Round::new(round), broadcasts()).unwrap());
            }
            (all, net.stats())
        };
        let (a, stats_a) = run(7);
        let (b, stats_b) = run(7);
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.link_omissions > 0, "p=0.5 never lost a message");
        assert!(stats_a.messages_delivered > 0, "p=0.5 lost everything");
        // Self-delivery is never drawn against.
        for round in &a {
            for (i, delivery) in round.iter().enumerate() {
                assert_eq!(
                    delivery.from_sender(pid(i)),
                    Some(Value::new(i as f64)),
                    "self-delivery was link-faulted"
                );
            }
        }
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds should lose different messages");
    }

    #[test]
    fn churn_disconnection_policies_record_or_reject() {
        let schedule = crate::TopologySchedule::SeededChurn {
            base: crate::Topology::Complete,
            flip_rate: 1.0,
        };
        let mut recording = SyncNetwork::with_dynamics(
            schedule.realize(3, 0).unwrap(),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            0,
        )
        .unwrap();
        recording.exchange(Round::ZERO, broadcasts()).unwrap();
        let stats = recording.stats();
        assert_eq!(stats.disconnected_rounds, 1);
        // Only self-delivery survives a fully dark round; the rest is
        // structural.
        assert_eq!(stats.messages_delivered, 3);
        assert_eq!(stats.unreachable, 6);

        let mut rejecting = SyncNetwork::with_dynamics(
            schedule.realize(3, 0).unwrap(),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Reject,
            0,
        )
        .unwrap();
        let err = rejecting.exchange(Round::ZERO, broadcasts()).unwrap_err();
        assert!(matches!(
            err,
            Error::DisconnectedRound { components: 3, .. }
        ));
    }

    #[test]
    fn churned_round_masks_by_the_rounds_realized_graph() {
        let schedule = crate::TopologySchedule::SeededChurn {
            base: crate::Topology::Complete,
            flip_rate: 0.5,
        };
        let realized = schedule.realize(3, 11).unwrap();
        let mut net = SyncNetwork::with_dynamics(
            realized.clone(),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            11,
        )
        .unwrap();
        for round in 0..10 {
            let round = Round::new(round);
            let graph = realized.adjacency_at(round).into_owned();
            let deliveries = net.exchange(round, broadcasts()).unwrap();
            for (r, delivery) in deliveries.iter().enumerate() {
                for s in 0..3 {
                    let expected = graph
                        .connected(pid(s), pid(r))
                        .then_some(Value::new(s as f64));
                    assert_eq!(delivery.from_sender(pid(s)), expected);
                }
            }
        }
        assert!(net.stats().unreachable > 0, "flip 0.5 never dropped a link");
    }
}
