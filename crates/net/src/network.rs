//! The synchronous exchange engine.

use mbaa_types::{Error, ProcessId, Result, Round};

use crate::{Adjacency, NetworkStats, NetworkTrace, Outbox, RoundDelivery, RoundTrace};

/// An authenticated, reliable synchronous network of `n` processes — fully
/// connected by default, or mediated by a partial [`Adjacency`] when built
/// [`with_topology`](SyncNetwork::with_topology).
///
/// One call to [`SyncNetwork::exchange`] performs the send and receive
/// phases of a round: it takes one [`Outbox`] per process and returns one
/// [`RoundDelivery`] per process, guaranteeing that
///
/// * every non-omitted slot between neighbours is delivered exactly once
///   (*reliability*),
/// * a delivered value is attributed to its true sender (*authentication*),
/// * no value is delivered that was not sent (*no creation*),
/// * nothing crosses a missing link: non-neighbour slots are *structural*
///   `None`s, counted in [`NetworkStats::unreachable`] (never as omission
///   faults) and flagged per receiver in the trace.
///
/// The engine also keeps a [`NetworkTrace`] of everything that was delivered
/// (used by the Table 1 behaviour classification) and running
/// [`NetworkStats`].
///
/// # Example
///
/// ```
/// use mbaa_net::{Outbox, SyncNetwork};
/// use mbaa_types::{ProcessId, Round, Value};
///
/// let mut net = SyncNetwork::new(2);
/// let outboxes = vec![
///     Outbox::broadcast(2, ProcessId::new(0), Value::new(0.25)),
///     Outbox::broadcast(2, ProcessId::new(1), Value::new(0.75)),
/// ];
/// let deliveries = net.exchange(Round::ZERO, outboxes)?;
/// assert_eq!(deliveries[1].from_sender(ProcessId::new(0)), Some(Value::new(0.25)));
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyncNetwork {
    n: usize,
    /// `None` means fully connected (the legacy fast path, bit-identical to
    /// the pre-topology engine); `Some` masks delivery by adjacency.
    topology: Option<Adjacency>,
    stats: NetworkStats,
    trace: NetworkTrace,
    record_trace: bool,
}

impl SyncNetwork {
    /// Creates a fully connected network of `n` processes, with tracing
    /// enabled.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a network needs at least one process");
        SyncNetwork {
            n,
            topology: None,
            stats: NetworkStats::new(),
            trace: NetworkTrace::new(),
            record_trace: true,
        }
    }

    /// Creates a network that does not record per-round traces (cheaper for
    /// long benchmark runs).
    #[must_use]
    pub fn without_trace(n: usize) -> Self {
        let mut net = Self::new(n);
        net.record_trace = false;
        net
    }

    /// Creates a network whose delivery is masked by the given adjacency:
    /// slots between non-neighbours are structurally undeliverable. A
    /// complete adjacency is recognized and lowered to the unmasked fast
    /// path, so `with_topology(Adjacency::complete(n))` behaves
    /// bit-identically to [`SyncNetwork::new`].
    #[must_use]
    pub fn with_topology(adjacency: Adjacency) -> Self {
        let mut net = Self::new(adjacency.n());
        if !adjacency.is_complete() {
            net.topology = Some(adjacency);
        }
        net
    }

    /// The number of connected processes.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The adjacency masking delivery, or `None` for a fully connected
    /// network.
    #[must_use]
    pub fn topology(&self) -> Option<&Adjacency> {
        self.topology.as_ref()
    }

    /// The accumulated traffic statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// The recorded trace (empty when tracing is disabled).
    #[must_use]
    pub fn trace(&self) -> &NetworkTrace {
        &self.trace
    }

    /// Performs the send + receive phases of `round`.
    ///
    /// `outboxes` must contain exactly one outbox per process, ordered by
    /// process index, each covering the full universe.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when the number of outboxes is not
    /// `n`, and [`Error::InvalidParameter`] when an outbox is mis-ordered
    /// (authentication would be violated) or covers the wrong universe.
    pub fn exchange(&mut self, round: Round, outboxes: Vec<Outbox>) -> Result<Vec<RoundDelivery>> {
        if outboxes.len() != self.n {
            return Err(Error::WrongInputCount {
                provided: outboxes.len(),
                expected: self.n,
            });
        }
        for (i, outbox) in outboxes.iter().enumerate() {
            if outbox.sender() != ProcessId::new(i) {
                return Err(Error::InvalidParameter(format!(
                    "outbox at position {i} claims sender {} (authentication violation)",
                    outbox.sender()
                )));
            }
            if outbox.universe() != self.n {
                return Err(Error::InvalidParameter(format!(
                    "outbox of {} covers {} receivers, expected {}",
                    outbox.sender(),
                    outbox.universe(),
                    self.n
                )));
            }
        }

        // Receive phase: transpose the outbox matrix. Slot [receiver][sender]
        // of the delivery matrix is slot [sender][receiver] of the outboxes,
        // masked to a structural None when the pair shares no link.
        let deliveries: Vec<RoundDelivery> = (0..self.n)
            .map(|r| {
                let receiver = ProcessId::new(r);
                let slots = match &self.topology {
                    None => outboxes.iter().map(|outbox| outbox.get(receiver)).collect(),
                    Some(adjacency) => outboxes
                        .iter()
                        .map(|outbox| {
                            adjacency
                                .connected(outbox.sender(), receiver)
                                .then(|| outbox.get(receiver))
                                .flatten()
                        })
                        .collect(),
                };
                RoundDelivery::from_slots(receiver, slots)
            })
            .collect();

        // Bookkeeping. Undeliverable slots are structural, not faults: they
        // go to `unreachable`, never to `omissions`.
        self.stats.rounds += 1;
        for delivery in &deliveries {
            let delivered = delivery.delivered_count() as u64;
            let reachable = match &self.topology {
                None => self.n as u64,
                // The closed neighbourhood: the receiver always hears itself.
                Some(adjacency) => adjacency.degree(delivery.receiver()) as u64 + 1,
            };
            self.stats.messages_delivered += delivered;
            self.stats.omissions += reachable - delivered;
            self.stats.unreachable += self.n as u64 - reachable;
        }
        if self.record_trace {
            let round_trace = match &self.topology {
                None => RoundTrace::from_outboxes(round, &outboxes),
                Some(adjacency) => RoundTrace::from_outboxes_masked(round, &outboxes, adjacency),
            };
            self.trace.push(round_trace);
        }

        Ok(deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::Value;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn exchange_transposes_outboxes() {
        let mut net = SyncNetwork::new(3);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::per_receiver(
                pid(1),
                vec![
                    Some(Value::new(10.0)),
                    Some(Value::new(11.0)),
                    Some(Value::new(12.0)),
                ],
            ),
            Outbox::silent(3, pid(2)),
        ];
        let deliveries = net.exchange(Round::ZERO, outboxes).unwrap();
        assert_eq!(deliveries.len(), 3);

        // Receiver 0: hears 0.0 from p0, 10.0 from p1, nothing from p2.
        assert_eq!(deliveries[0].from_sender(pid(0)), Some(Value::new(0.0)));
        assert_eq!(deliveries[0].from_sender(pid(1)), Some(Value::new(10.0)));
        assert_eq!(deliveries[0].from_sender(pid(2)), None);

        // Receiver 2 hears the asymmetric sender's third slot.
        assert_eq!(deliveries[2].from_sender(pid(1)), Some(Value::new(12.0)));
    }

    #[test]
    fn exchange_rejects_wrong_count() {
        let mut net = SyncNetwork::new(3);
        let outboxes = vec![Outbox::broadcast(3, pid(0), Value::new(0.0))];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(
            err,
            Error::WrongInputCount {
                provided: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn exchange_rejects_forged_sender() {
        let mut net = SyncNetwork::new(2);
        // Position 0 claims to be p1: identity forging is impossible in the
        // authenticated model, so the engine rejects it.
        let outboxes = vec![
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
        ];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn exchange_rejects_wrong_universe() {
        let mut net = SyncNetwork::new(2);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(2, pid(1), Value::new(0.0)),
        ];
        let err = net.exchange(Round::ZERO, outboxes).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn stats_accumulate() {
        let mut net = SyncNetwork::new(2);
        let round_outboxes = || {
            vec![
                Outbox::broadcast(2, pid(0), Value::new(1.0)),
                Outbox::silent(2, pid(1)),
            ]
        };
        net.exchange(Round::ZERO, round_outboxes()).unwrap();
        net.exchange(Round::new(1), round_outboxes()).unwrap();
        let stats = net.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages_delivered, 4);
        assert_eq!(stats.omissions, 4);
        assert_eq!(stats.messages_per_round(), 2.0);
    }

    #[test]
    fn trace_records_rounds_unless_disabled() {
        let outboxes = || vec![Outbox::broadcast(1, pid(0), Value::new(1.0))];

        let mut traced = SyncNetwork::new(1);
        traced.exchange(Round::ZERO, outboxes()).unwrap();
        assert_eq!(traced.trace().len(), 1);

        let mut untraced = SyncNetwork::without_trace(1);
        untraced.exchange(Round::ZERO, outboxes()).unwrap();
        assert!(untraced.trace().is_empty());
        assert_eq!(untraced.stats().rounds, 1);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_network_panics() {
        let _ = SyncNetwork::new(0);
    }

    #[test]
    fn partial_topology_masks_non_neighbour_slots() {
        // A path 0 — 1 — 2: the ends share no link.
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::with_topology(path);
        assert!(net.topology().is_some());
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            Outbox::broadcast(3, pid(2), Value::new(2.0)),
        ];
        let deliveries = net.exchange(Round::ZERO, outboxes).unwrap();
        // The middle hears everyone; the ends hear themselves, the middle,
        // and a structural None from each other.
        assert_eq!(deliveries[1].delivered_count(), 3);
        assert_eq!(deliveries[0].from_sender(pid(2)), None);
        assert_eq!(deliveries[2].from_sender(pid(0)), None);
        assert_eq!(deliveries[0].from_sender(pid(0)), Some(Value::new(0.0)));
        assert_eq!(deliveries[0].from_sender(pid(1)), Some(Value::new(1.0)));
    }

    #[test]
    fn structural_non_delivery_is_not_an_omission() {
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::with_topology(path);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            // A genuine omission fault, distinct from the missing 0—2 link.
            Outbox::silent(3, pid(2)),
        ];
        net.exchange(Round::ZERO, outboxes).unwrap();
        let stats = net.stats();
        // Reachable slots: 2 + 3 + 2 = 7. p2's silence omits to its
        // reachable audience (itself and p1); the 0—2 slots are structural.
        assert_eq!(stats.unreachable, 2);
        assert_eq!(stats.omissions, 2);
        assert_eq!(stats.messages_delivered, 5);
        assert_eq!(stats.total_slots(), 9);
    }

    #[test]
    fn complete_topology_lowers_to_the_unmasked_fast_path() {
        let mut masked = SyncNetwork::with_topology(crate::Adjacency::complete(3));
        assert!(masked.topology().is_none());
        let mut plain = SyncNetwork::new(3);
        let outboxes = || {
            vec![
                Outbox::broadcast(3, pid(0), Value::new(0.5)),
                Outbox::silent(3, pid(1)),
                Outbox::broadcast(3, pid(2), Value::new(1.5)),
            ]
        };
        let a = masked.exchange(Round::ZERO, outboxes()).unwrap();
        let b = plain.exchange(Round::ZERO, outboxes()).unwrap();
        assert_eq!(a, b);
        assert_eq!(masked.stats(), plain.stats());
        assert_eq!(masked.trace(), plain.trace());
        assert_eq!(masked.stats().unreachable, 0);
    }

    #[test]
    fn masked_trace_flags_unreachable_receivers() {
        let path = crate::Adjacency::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::with_topology(path);
        let outboxes = vec![
            Outbox::broadcast(3, pid(0), Value::new(0.0)),
            Outbox::broadcast(3, pid(1), Value::new(1.0)),
            Outbox::broadcast(3, pid(2), Value::new(2.0)),
        ];
        net.exchange(Round::ZERO, outboxes).unwrap();
        let trace = net.trace();
        let obs = trace.get(0).unwrap().observation(pid(0));
        assert!(obs.reaches(pid(1)));
        assert!(!obs.reaches(pid(2)));
        // A masked uniform broadcast still classifies as a broadcast, not
        // as an asymmetric fault.
        assert_eq!(
            obs.classify(Some(Value::new(0.0))),
            crate::ObservedBehavior::CorrectBroadcast
        );
    }
}
