//! The send-phase output of a single process.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{ProcessId, Value};

/// What one process hands to the network during the send phase of a round.
///
/// There is one slot per destination process. `Some(v)` means "send `v` to
/// that destination"; `None` means "send nothing" (an omission, which in a
/// synchronous system every receiver detects).
///
/// * A **correct** process fills every slot with the same value
///   ([`Outbox::broadcast`]).
/// * A cured process in Garay's model stays **silent**
///   ([`Outbox::silent`]).
/// * A **Byzantine** process may fill the slots arbitrarily
///   ([`Outbox::per_receiver`] or the slot mutators).
///
/// # Example
///
/// ```
/// use mbaa_net::Outbox;
/// use mbaa_types::{ProcessId, Value};
///
/// let sender = ProcessId::new(1);
/// let mut outbox = Outbox::broadcast(4, sender, Value::new(0.5));
/// outbox.set(ProcessId::new(3), Some(Value::new(99.0)));
/// assert!(!outbox.is_uniform());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outbox {
    sender: ProcessId,
    slots: Vec<Option<Value>>,
}

impl Outbox {
    /// Creates an outbox that sends `value` to all `n` processes
    /// (including the sender itself, as in the paper's all-to-all exchange).
    #[must_use]
    pub fn broadcast(n: usize, sender: ProcessId, value: Value) -> Self {
        Outbox {
            sender,
            slots: vec![Some(value); n],
        }
    }

    /// Creates an outbox that sends nothing to anyone (Garay-style cured
    /// silence, or a crashed process).
    #[must_use]
    pub fn silent(n: usize, sender: ProcessId) -> Self {
        Outbox {
            sender,
            slots: vec![None; n],
        }
    }

    /// Creates an outbox with an explicit per-receiver slot vector.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    #[must_use]
    pub fn per_receiver(sender: ProcessId, slots: Vec<Option<Value>>) -> Self {
        assert!(!slots.is_empty(), "outbox must cover at least one receiver");
        Outbox { sender, slots }
    }

    /// The sending process.
    #[must_use]
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// The number of destination slots (the system size `n`).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.slots.len()
    }

    /// The value destined to `receiver`, or `None` for an omission.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    #[must_use]
    pub fn get(&self, receiver: ProcessId) -> Option<Value> {
        self.slots[receiver.index()]
    }

    /// Overwrites the slot destined to `receiver`.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    pub fn set(&mut self, receiver: ProcessId, value: Option<Value>) {
        self.slots[receiver.index()] = value;
    }

    /// Rewrites this outbox in place into the broadcast of `value` — the
    /// zero-allocation counterpart of [`Outbox::broadcast`] for a reused
    /// send buffer. The universe is unchanged.
    pub fn fill_broadcast(&mut self, value: Value) {
        self.slots.fill(Some(value));
    }

    /// Rewrites this outbox in place into silence — the zero-allocation
    /// counterpart of [`Outbox::silent`]. The universe is unchanged.
    pub fn fill_silent(&mut self) {
        self.slots.fill(None);
    }

    /// Overwrites this outbox with `other`'s sender and slots, reusing the
    /// existing allocation — the zero-allocation counterpart of
    /// `*self = other.clone()` for same-universe outboxes.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn copy_from(&mut self, other: &Outbox) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "outbox universe mismatch"
        );
        self.sender = other.sender;
        self.slots.copy_from_slice(&other.slots);
    }

    /// Reassigns the sender of this (reused) outbox.
    pub fn set_sender(&mut self, sender: ProcessId) {
        self.sender = sender;
    }

    /// Iterates over `(receiver, slot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<Value>)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), *v))
    }

    /// Returns `true` when every slot is an omission.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Returns `true` when every slot carries the *same* value (no
    /// omissions, no disagreement) — the signature of correct or symmetric
    /// behaviour.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        match self.slots.first().copied().flatten() {
            None => false,
            Some(first) => self.slots.iter().all(|s| *s == Some(first)),
        }
    }

    /// The set of distinct values present in the slots (omissions excluded).
    #[must_use]
    pub fn distinct_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self.slots.iter().filter_map(|s| *s).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

impl fmt::Display for Outbox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> [", self.sender)?;
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match slot {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_fills_every_slot() {
        let o = Outbox::broadcast(3, ProcessId::new(0), Value::new(1.5));
        assert_eq!(o.universe(), 3);
        assert!(o.is_uniform());
        assert!(!o.is_silent());
        for i in 0..3 {
            assert_eq!(o.get(ProcessId::new(i)), Some(Value::new(1.5)));
        }
    }

    #[test]
    fn silent_outbox() {
        let o = Outbox::silent(4, ProcessId::new(2));
        assert!(o.is_silent());
        assert!(!o.is_uniform());
        assert!(o.distinct_values().is_empty());
    }

    #[test]
    fn per_receiver_slots_and_mutation() {
        let mut o = Outbox::per_receiver(
            ProcessId::new(1),
            vec![Some(Value::new(0.0)), None, Some(Value::new(1.0))],
        );
        assert_eq!(o.sender(), ProcessId::new(1));
        assert_eq!(o.get(ProcessId::new(1)), None);
        assert!(!o.is_uniform());
        assert_eq!(o.distinct_values(), vec![Value::new(0.0), Value::new(1.0)]);

        o.set(ProcessId::new(1), Some(Value::new(0.0)));
        o.set(ProcessId::new(2), Some(Value::new(0.0)));
        assert!(o.is_uniform());
    }

    #[test]
    #[should_panic(expected = "at least one receiver")]
    fn empty_slots_panic() {
        let _ = Outbox::per_receiver(ProcessId::new(0), vec![]);
    }

    #[test]
    fn uniform_requires_no_omissions() {
        let o = Outbox::per_receiver(
            ProcessId::new(0),
            vec![Some(Value::new(1.0)), None, Some(Value::new(1.0))],
        );
        assert!(!o.is_uniform());
    }

    #[test]
    fn iteration_and_display() {
        let o = Outbox::per_receiver(ProcessId::new(0), vec![Some(Value::new(2.0)), None]);
        let pairs: Vec<_> = o.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (ProcessId::new(0), Some(Value::new(2.0))));
        assert_eq!(pairs[1], (ProcessId::new(1), None));
        assert_eq!(o.to_string(), "p0 -> [2, -]");
    }
}
