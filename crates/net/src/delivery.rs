//! The receive-phase input of a single process.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::Value;
use mbaa_types::{ProcessId, ValueMultiset};

/// Everything one process receives during the receive phase of a round.
///
/// There is one slot per sender. `Some(v)` means "the (authenticated) sender
/// delivered `v` to me this round"; `None` means the sender omitted its
/// message, which in a synchronous system is immediately detected and treated
/// as a benign fault.
///
/// # Example
///
/// ```
/// use mbaa_net::RoundDelivery;
/// use mbaa_types::{ProcessId, Value};
///
/// let delivery = RoundDelivery::from_slots(
///     ProcessId::new(0),
///     vec![Some(Value::new(1.0)), None, Some(Value::new(3.0))],
/// );
/// assert_eq!(delivery.received_multiset().len(), 2);
/// assert_eq!(delivery.omitting_senders(), vec![ProcessId::new(1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundDelivery {
    receiver: ProcessId,
    slots: Vec<Option<Value>>,
}

impl RoundDelivery {
    /// Creates a delivery record from explicit per-sender slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    #[must_use]
    pub fn from_slots(receiver: ProcessId, slots: Vec<Option<Value>>) -> Self {
        assert!(!slots.is_empty(), "delivery must cover at least one sender");
        RoundDelivery { receiver, slots }
    }

    /// The receiving process.
    #[must_use]
    pub fn receiver(&self) -> ProcessId {
        self.receiver
    }

    /// The number of sender slots (the system size `n`).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.slots.len()
    }

    /// The value received from `sender`, or `None` for an omission.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is outside the universe.
    #[must_use]
    pub fn from_sender(&self, sender: ProcessId) -> Option<Value> {
        self.slots[sender.index()]
    }

    /// Iterates over `(sender, slot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<Value>)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), *v))
    }

    /// The multiset `N_i` of all values actually delivered (omissions are
    /// excluded — they are detected benign faults).
    #[must_use]
    pub fn received_multiset(&self) -> ValueMultiset {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// The multiset of values delivered by the given subset of senders.
    ///
    /// Used in analysis to extract `U`, the sub-multiset of values generated
    /// by non-faulty processes.
    #[must_use]
    pub fn received_from<I: IntoIterator<Item = ProcessId>>(&self, senders: I) -> ValueMultiset {
        senders
            .into_iter()
            .filter_map(|p| self.slots[p.index()])
            .collect()
    }

    /// Senders whose message was omitted this round.
    #[must_use]
    pub fn omitting_senders(&self) -> Vec<ProcessId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(ProcessId::new(i)))
            .collect()
    }

    /// The number of values actually delivered.
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// A flat, reusable `n × n` receive buffer: slot `[receiver][sender]` of a
/// round's delivery, stored receiver-major in one contiguous allocation.
///
/// This is the in-place counterpart of `Vec<RoundDelivery>`, used by
/// [`SyncNetwork::exchange_into`](crate::SyncNetwork::exchange_into): the
/// engine allocates one matrix per run and every exchange overwrites it,
/// so steady-state rounds perform no heap allocation at all. Row contents
/// are bit-identical to the slots of the corresponding [`RoundDelivery`].
///
/// # Example
///
/// ```
/// use mbaa_net::{DeliveryMatrix, Outbox, SyncNetwork};
/// use mbaa_types::{ProcessId, Round, Value};
///
/// let mut net = SyncNetwork::new(2);
/// let mut matrix = DeliveryMatrix::new(2);
/// let outboxes = vec![
///     Outbox::broadcast(2, ProcessId::new(0), Value::new(0.25)),
///     Outbox::silent(2, ProcessId::new(1)),
/// ];
/// net.exchange_into(Round::ZERO, &outboxes, &mut matrix)?;
/// assert_eq!(matrix.from_sender(ProcessId::new(1), ProcessId::new(0)), Some(Value::new(0.25)));
/// assert_eq!(matrix.from_sender(ProcessId::new(0), ProcessId::new(1)), None);
/// # Ok::<(), mbaa_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryMatrix {
    n: usize,
    /// Receiver-major: the slot of sender `s` to receiver `r` is
    /// `slots[r * n + s]`. Invariant: `slots.len() == n * n`.
    slots: Vec<Option<Value>>,
}

impl DeliveryMatrix {
    /// Creates a matrix for a universe of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "delivery matrix needs at least one process");
        DeliveryMatrix {
            n,
            slots: vec![None; n * n],
        }
    }

    /// The number of processes covered.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Re-targets the matrix to a universe of `n` processes, reusing the
    /// allocation when the size is unchanged (the steady-state case).
    /// Slot contents are unspecified until the next exchange overwrites
    /// them.
    pub(crate) fn reset(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.slots.clear();
            self.slots.resize(n * n, None);
        }
    }

    /// The per-sender slots of one receiver — the same slots the
    /// corresponding [`RoundDelivery`] would hold.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    #[must_use]
    pub fn received(&self, receiver: ProcessId) -> &[Option<Value>] {
        let r = receiver.index();
        &self.slots[r * self.n..(r + 1) * self.n]
    }

    /// Mutable access to one receiver's slot row.
    pub(crate) fn row_mut(&mut self, receiver: usize) -> &mut [Option<Value>] {
        &mut self.slots[receiver * self.n..(receiver + 1) * self.n]
    }

    /// The value `receiver` got from `sender`, or `None` for an omission or
    /// structural non-delivery.
    ///
    /// # Panics
    ///
    /// Panics if either process is outside the universe.
    #[must_use]
    pub fn from_sender(&self, receiver: ProcessId, sender: ProcessId) -> Option<Value> {
        self.received(receiver)[sender.index()]
    }

    /// Iterates over the values actually delivered to `receiver` in
    /// ascending sender order — the contents of the multiset `N_i`.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    pub fn delivered_to(&self, receiver: ProcessId) -> impl Iterator<Item = Value> + '_ {
        self.received(receiver).iter().filter_map(|s| *s)
    }

    /// Materializes one receiver's row as an owned [`RoundDelivery`].
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is outside the universe.
    #[must_use]
    pub fn to_round_delivery(&self, receiver: ProcessId) -> RoundDelivery {
        RoundDelivery::from_slots(receiver, self.received(receiver).to_vec())
    }
}

impl fmt::Display for RoundDelivery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- [", self.receiver)?;
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match slot {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery() -> RoundDelivery {
        RoundDelivery::from_slots(
            ProcessId::new(2),
            vec![
                Some(Value::new(1.0)),
                None,
                Some(Value::new(2.0)),
                Some(Value::new(1.0)),
            ],
        )
    }

    #[test]
    fn accessors() {
        let d = delivery();
        assert_eq!(d.receiver(), ProcessId::new(2));
        assert_eq!(d.universe(), 4);
        assert_eq!(d.from_sender(ProcessId::new(0)), Some(Value::new(1.0)));
        assert_eq!(d.from_sender(ProcessId::new(1)), None);
        assert_eq!(d.delivered_count(), 3);
    }

    #[test]
    fn received_multiset_excludes_omissions_keeps_multiplicity() {
        let m = delivery().received_multiset();
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(Value::new(1.0)), 2);
    }

    #[test]
    fn received_from_subset() {
        let d = delivery();
        let m = d.received_from([ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.max(), Some(Value::new(2.0)));
    }

    #[test]
    fn omitting_senders_detected() {
        assert_eq!(delivery().omitting_senders(), vec![ProcessId::new(1)]);
    }

    #[test]
    fn iteration_and_display() {
        let d = delivery();
        assert_eq!(d.iter().count(), 4);
        assert_eq!(d.to_string(), "p2 <- [1, -, 2, 1]");
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_slots_panic() {
        let _ = RoundDelivery::from_slots(ProcessId::new(0), vec![]);
    }
}
