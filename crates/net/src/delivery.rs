//! The receive-phase input of a single process.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::Value;
use mbaa_types::{ProcessId, ValueMultiset};

/// Everything one process receives during the receive phase of a round.
///
/// There is one slot per sender. `Some(v)` means "the (authenticated) sender
/// delivered `v` to me this round"; `None` means the sender omitted its
/// message, which in a synchronous system is immediately detected and treated
/// as a benign fault.
///
/// # Example
///
/// ```
/// use mbaa_net::RoundDelivery;
/// use mbaa_types::{ProcessId, Value};
///
/// let delivery = RoundDelivery::from_slots(
///     ProcessId::new(0),
///     vec![Some(Value::new(1.0)), None, Some(Value::new(3.0))],
/// );
/// assert_eq!(delivery.received_multiset().len(), 2);
/// assert_eq!(delivery.omitting_senders(), vec![ProcessId::new(1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundDelivery {
    receiver: ProcessId,
    slots: Vec<Option<Value>>,
}

impl RoundDelivery {
    /// Creates a delivery record from explicit per-sender slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    #[must_use]
    pub fn from_slots(receiver: ProcessId, slots: Vec<Option<Value>>) -> Self {
        assert!(!slots.is_empty(), "delivery must cover at least one sender");
        RoundDelivery { receiver, slots }
    }

    /// The receiving process.
    #[must_use]
    pub fn receiver(&self) -> ProcessId {
        self.receiver
    }

    /// The number of sender slots (the system size `n`).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.slots.len()
    }

    /// The value received from `sender`, or `None` for an omission.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is outside the universe.
    #[must_use]
    pub fn from_sender(&self, sender: ProcessId) -> Option<Value> {
        self.slots[sender.index()]
    }

    /// Iterates over `(sender, slot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<Value>)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), *v))
    }

    /// The multiset `N_i` of all values actually delivered (omissions are
    /// excluded — they are detected benign faults).
    #[must_use]
    pub fn received_multiset(&self) -> ValueMultiset {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// The multiset of values delivered by the given subset of senders.
    ///
    /// Used in analysis to extract `U`, the sub-multiset of values generated
    /// by non-faulty processes.
    #[must_use]
    pub fn received_from<I: IntoIterator<Item = ProcessId>>(&self, senders: I) -> ValueMultiset {
        senders
            .into_iter()
            .filter_map(|p| self.slots[p.index()])
            .collect()
    }

    /// Senders whose message was omitted this round.
    #[must_use]
    pub fn omitting_senders(&self) -> Vec<ProcessId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(ProcessId::new(i)))
            .collect()
    }

    /// The number of values actually delivered.
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl fmt::Display for RoundDelivery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- [", self.receiver)?;
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match slot {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery() -> RoundDelivery {
        RoundDelivery::from_slots(
            ProcessId::new(2),
            vec![
                Some(Value::new(1.0)),
                None,
                Some(Value::new(2.0)),
                Some(Value::new(1.0)),
            ],
        )
    }

    #[test]
    fn accessors() {
        let d = delivery();
        assert_eq!(d.receiver(), ProcessId::new(2));
        assert_eq!(d.universe(), 4);
        assert_eq!(d.from_sender(ProcessId::new(0)), Some(Value::new(1.0)));
        assert_eq!(d.from_sender(ProcessId::new(1)), None);
        assert_eq!(d.delivered_count(), 3);
    }

    #[test]
    fn received_multiset_excludes_omissions_keeps_multiplicity() {
        let m = delivery().received_multiset();
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(Value::new(1.0)), 2);
    }

    #[test]
    fn received_from_subset() {
        let d = delivery();
        let m = d.received_from([ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.max(), Some(Value::new(2.0)));
    }

    #[test]
    fn omitting_senders_detected() {
        assert_eq!(delivery().omitting_senders(), vec![ProcessId::new(1)]);
    }

    #[test]
    fn iteration_and_display() {
        let d = delivery();
        assert_eq!(d.iter().count(), 4);
        assert_eq!(d.to_string(), "p2 <- [1, -, 2, 1]");
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn empty_slots_panic() {
        let _ = RoundDelivery::from_slots(ProcessId::new(0), vec![]);
    }
}
