//! Shared-realization batch delivery: one structural network realization
//! serving many lanes (seeds) of the same configuration shape.
//!
//! The scalar [`SyncNetwork`](crate::SyncNetwork) bundles three things per
//! run: the *structure* (realized graphs, compiled link-fault matrices,
//! connectivity precomputation), the *per-seed draw streams* (churn and
//! omission draws keyed on the run seed), and the *per-run delivery state*
//! (delay pipes, round cursor, statistics). Only the first is shared across
//! the lanes of a batch — and it is by far the most expensive to build and
//! the only part that costs per-round allocations on the churn path.
//!
//! [`SharedRealization`] splits the bundle: it holds the seed-independent
//! structure once per batch (adjacency, closed-neighbourhood lists, compiled
//! fault matrices, per-phase connectivity) plus reusable round scratch,
//! while each lane carries only a tiny [`LaneDelivery`] (seed, round
//! cursor, delay pipes when the plan needs them). A lane round is served by
//! [`SharedRealization::exchange_rows`], which classifies and accounts
//! every slot exactly as the scalar exchange would — same statistics
//! counters, same omission/churn draw streams, same delay buffering — but
//! collects each active receiver's delivered values directly into packed
//! [`DeliveryRows`] instead of an `n × n` slot matrix, skipping the
//! quadratic outbox materialization for broadcasting senders via
//! [`LaneSend`] classification.
//!
//! Only *seed-invariant* descriptions are shareable: a
//! [`Topology::RandomRegular`] realizes differently per lane seed, so
//! [`SharedRealization::try_build`] refuses it (anywhere — as the static
//! graph, a periodic phase, or a churn base) and the engine falls back to
//! one scalar network per lane. Seeded churn *is* shareable: the base graph
//! is realized once and the per-`(seed, round, link)` down-draws are
//! replayed per lane against the crate-internal draw primitive, so the
//! realized per-round graphs match the scalar path bit for bit.

use std::collections::VecDeque;

use mbaa_types::{Error, ProcessId, Result, Round, Value};

use crate::faults::{churn_link_down, omission_lost, RealizedKind};
use crate::network::SendOutcome;
use crate::{
    Adjacency, CompiledLinkFaults, DisconnectionPolicy, LinkFaultPlan, NetworkStats, Outbox,
    Topology, TopologySchedule,
};

/// What one sender hands to a batched exchange — the send phase in
/// classified form, so broadcasting senders never materialize `n` outbox
/// slots.
///
/// The classification must match what
/// [`Outbox`]es the scalar engine would build: `Broadcast(v)` stands for a
/// `fill_broadcast(v)` outbox (every slot `Some(v)`, self included),
/// `Silent` for a `fill_silent` one, and `PerReceiver(i)` defers to
/// `outboxes[i]` for the few genuinely per-receiver senders (adversary
/// outboxes, poisoned queues).
#[derive(Debug, Clone, Copy)]
pub enum LaneSend {
    /// The sender broadcasts one value to every receiver (itself included).
    Broadcast(Value),
    /// The sender omits to every receiver.
    Silent,
    /// The sender's slots come from the outbox at this index of the
    /// `outboxes` slice passed to [`SharedRealization::exchange_rows`].
    PerReceiver(usize),
}

impl LaneSend {
    /// The value this sender puts on its link to `receiver`.
    #[inline]
    fn slot(self, outboxes: &[Outbox], receiver: ProcessId) -> Option<Value> {
        match self {
            LaneSend::Broadcast(value) => Some(value),
            LaneSend::Silent => None,
            LaneSend::PerReceiver(i) => outboxes[i].get(receiver),
        }
    }
}

/// Packed per-receiver delivery rows of one lane round: row `i` holds the
/// values delivered to the `i`-th *active* receiver, back to back in one
/// flat buffer sized once at `n²`.
///
/// Rows are collected in receiver order, each in ascending-sender order;
/// the engine sorts each row in place and, when every row has the same
/// width, feeds the whole flat buffer to the k-wide MSR fold in one call.
#[derive(Debug)]
pub struct DeliveryRows {
    merged: Vec<Value>,
    receivers: Vec<usize>,
    offsets: Vec<usize>,
    lens: Vec<usize>,
    rows: usize,
    total: usize,
    uniform: bool,
}

impl DeliveryRows {
    /// Pre-sizes the row arena for a universe of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DeliveryRows {
            merged: vec![Value::new(0.0); n * n],
            receivers: vec![0; n],
            offsets: vec![0; n],
            lens: vec![0; n],
            rows: 0,
            total: 0,
            uniform: true,
        }
    }

    fn reset(&mut self) {
        self.rows = 0;
        self.total = 0;
        self.uniform = true;
    }

    fn push_row(&mut self, receiver: usize, start: usize, len: usize) {
        if self.rows > 0 && len != self.lens[0] {
            self.uniform = false;
        }
        self.receivers[self.rows] = receiver;
        self.offsets[self.rows] = start;
        self.lens[self.rows] = len;
        self.rows += 1;
        self.total = start + len;
    }

    /// The number of active receivers collected this round.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The process index of the `row`-th active receiver.
    #[must_use]
    pub fn receiver(&self, row: usize) -> usize {
        self.receivers[row]
    }

    /// The values delivered to the `row`-th active receiver.
    #[must_use]
    pub fn row(&self, row: usize) -> &[Value] {
        &self.merged[self.offsets[row]..self.offsets[row] + self.lens[row]]
    }

    /// Mutable form of [`DeliveryRows::row`] — the engine sorts each row in
    /// place before applying the voting function.
    pub fn row_mut(&mut self, row: usize) -> &mut [Value] {
        &mut self.merged[self.offsets[row]..self.offsets[row] + self.lens[row]]
    }

    /// `Some(len)` when at least one row was collected and every row has
    /// the same width — the precondition of the k-wide MSR fold over
    /// [`DeliveryRows::flat`].
    #[must_use]
    pub fn uniform_len(&self) -> Option<usize> {
        (self.uniform && self.rows > 0).then(|| self.lens[0])
    }

    /// The packed flat buffer holding every collected row back to back.
    #[must_use]
    pub fn flat(&self) -> &[Value] {
        &self.merged[..self.total]
    }

    /// The width of the smallest collected row (the round's minimum
    /// multiset size), or `None` when no receiver was active.
    #[must_use]
    pub fn min_len(&self) -> Option<usize> {
        self.lens[..self.rows].iter().copied().min()
    }
}

/// The per-lane slice of a dynamic exchange: everything keyed on the lane
/// seed or advancing per lane round. Created by
/// [`SharedRealization::lane`]; static realizations carry no state at all
/// beyond the seed.
#[derive(Debug, Clone)]
pub struct LaneDelivery {
    seed: u64,
    /// The round the next exchange must carry (dynamic realizations only —
    /// the delay pipes and draw streams advance once per round).
    next_round: u64,
    /// In-order delay buffers, indexed `from * n + to`; allocated only when
    /// the compiled plan has a positive maximum delay.
    pipes: Vec<VecDeque<SendOutcome>>,
}

impl LaneDelivery {
    /// The lane seed driving this lane's churn and omission draws.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One static graph with its precomputed closed in-neighbourhood lists:
/// `neighbors[offsets[r]..offsets[r + 1]]` are the senders receiver `r`
/// hears (itself included), ascending.
#[derive(Debug)]
struct StaticGraph {
    neighbors: Vec<u32>,
    offsets: Vec<u32>,
}

impl StaticGraph {
    fn new(adjacency: &Adjacency) -> Self {
        let n = adjacency.n();
        let mut neighbors = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for r in 0..n {
            for (s, &linked) in adjacency.row(ProcessId::new(r)).iter().enumerate() {
                if linked {
                    neighbors.push(s as u32);
                }
            }
            offsets.push(neighbors.len() as u32);
        }
        StaticGraph { neighbors, offsets }
    }

    fn closed_neighborhood(&self, r: usize) -> &[u32] {
        &self.neighbors[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }
}

/// One phase of a dynamic schedule, with its connectivity precomputed once
/// per batch instead of once per lane round.
#[derive(Debug)]
struct PhaseGraph {
    adjacency: Adjacency,
    graph: StaticGraph,
    connected: bool,
    components: usize,
}

impl PhaseGraph {
    fn new(adjacency: Adjacency) -> Self {
        let graph = StaticGraph::new(&adjacency);
        let connected = adjacency.is_connected();
        let components = adjacency.component_count();
        PhaseGraph {
            adjacency,
            graph,
            connected,
            components,
        }
    }
}

/// The per-round graph rule of a shared dynamic realization.
#[derive(Debug)]
enum DynGraphs {
    /// Round `r` uses `phases[r % phases.len()]` — static graphs are the
    /// single-phase case.
    Phases(Vec<PhaseGraph>),
    /// Round-indexed churn over a shared base; the per-`(seed, round,
    /// link)` down-draws are replayed per lane.
    Churn { base: Adjacency, flip_rate: f64 },
}

/// Reusable per-round scratch of the dynamic path (only the churn rule
/// uses it): the round's realized link mask and the BFS state of its
/// connectivity check. Shared across lanes — each lane round overwrites it
/// completely.
#[derive(Debug)]
struct DynScratch {
    /// `mask[a * n + b]`: the churned round graph, diagonal always set.
    mask: Vec<bool>,
    visited: Vec<bool>,
    stack: Vec<u32>,
}

#[derive(Debug)]
enum SharedKind {
    /// A static graph under a clean fault plan: the closed-form static
    /// exchange, one accounting line per receiver.
    Static(StaticGraph),
    /// The dynamic path: per-round graphs and/or per-link faults.
    Dynamic {
        graphs: DynGraphs,
        faults: CompiledLinkFaults,
        policy: DisconnectionPolicy,
        /// The largest compiled delay; 0 skips the pipe machinery entirely.
        max_delay: usize,
        scratch: DynScratch,
    },
}

/// The seed-independent structure of one network description, realized once
/// per batch and shared by every lane. The module documentation above
/// spells out what is shared and what stays lane-local.
#[derive(Debug)]
pub struct SharedRealization {
    n: usize,
    kind: SharedKind,
}

/// Seed-invariance of a topology description: everything but
/// [`Topology::RandomRegular`] realizes to the same graph under every seed.
fn topology_seed_invariant(topology: &Topology) -> bool {
    !matches!(topology, Topology::RandomRegular { .. })
}

fn schedule_seed_invariant(schedule: &TopologySchedule) -> bool {
    match schedule {
        TopologySchedule::Static(topology) => topology_seed_invariant(topology),
        TopologySchedule::Periodic { phases } => phases.iter().all(topology_seed_invariant),
        TopologySchedule::SeededChurn { base, .. } => topology_seed_invariant(base),
    }
}

/// Counts the connected components of a flat link mask (diagonal set), the
/// allocation-free equivalent of [`Adjacency::component_count`] on the
/// churned round graph.
fn mask_components(mask: &[bool], n: usize, visited: &mut [bool], stack: &mut Vec<u32>) -> usize {
    visited.fill(false);
    let mut components = 0;
    for start in 0..n {
        if visited[start] {
            continue;
        }
        components += 1;
        visited[start] = true;
        stack.push(start as u32);
        while let Some(node) = stack.pop() {
            let row = &mask[node as usize * n..(node as usize + 1) * n];
            for (next, &linked) in row.iter().enumerate() {
                if linked && !visited[next] {
                    visited[next] = true;
                    stack.push(next as u32);
                }
            }
        }
    }
    components
}

impl SharedRealization {
    /// Builds the shared structure for one network description, mirroring
    /// the lowering decisions of the scalar engine exactly: no schedule and
    /// a clean plan realize a static graph; a schedule whose per-round
    /// graphs cannot differ under a clean compiled plan lowers onto the
    /// static form; everything else takes the dynamic form.
    ///
    /// Returns `None` when the description is not shareable — a
    /// seed-dependent topology anywhere in it, or a description that fails
    /// to realize or compile (the caller's per-lane fallback reproduces the
    /// identical error per lane).
    #[must_use]
    pub fn try_build(
        n: usize,
        topology: &Topology,
        schedule: Option<&TopologySchedule>,
        link_faults: &LinkFaultPlan,
        policy: DisconnectionPolicy,
    ) -> Option<SharedRealization> {
        if schedule.is_none() && link_faults.is_clean() {
            if !topology_seed_invariant(topology) {
                return None;
            }
            let adjacency = topology.realize(n, 0).ok()?;
            return Some(SharedRealization {
                n,
                kind: SharedKind::Static(StaticGraph::new(&adjacency)),
            });
        }
        let implied;
        let schedule = match schedule {
            Some(schedule) => schedule,
            None => {
                implied = TopologySchedule::Static(topology.clone());
                &implied
            }
        };
        if !schedule_seed_invariant(schedule) {
            return None;
        }
        // Seed 0 stands in for every lane seed: the invariance check above
        // guarantees realization ignores it, and churn draws key on the
        // lane seed at exchange time, not here.
        let realized = schedule.realize(n, 0).ok()?;
        let faults = link_faults.compile(n).ok()?;
        if faults.is_clean() && !realized.is_dynamic() {
            let adjacency = realized.adjacency_at(Round::ZERO).into_owned();
            return Some(SharedRealization {
                n,
                kind: SharedKind::Static(StaticGraph::new(&adjacency)),
            });
        }
        let max_delay = faults.compiled_max_delay();
        let (graphs, churns) = match realized.kind() {
            RealizedKind::Static(adjacency) => (
                DynGraphs::Phases(vec![PhaseGraph::new(adjacency.clone())]),
                false,
            ),
            RealizedKind::Periodic(phases) => (
                DynGraphs::Phases(phases.iter().cloned().map(PhaseGraph::new).collect()),
                false,
            ),
            RealizedKind::Churn { base, flip_rate } => {
                if *flip_rate == 0.0 {
                    // Frozen churn realizes the base every round.
                    (
                        DynGraphs::Phases(vec![PhaseGraph::new(base.clone())]),
                        false,
                    )
                } else {
                    (
                        DynGraphs::Churn {
                            base: base.clone(),
                            flip_rate: *flip_rate,
                        },
                        true,
                    )
                }
            }
        };
        let scratch = DynScratch {
            mask: if churns {
                vec![false; n * n]
            } else {
                Vec::new()
            },
            visited: if churns { vec![false; n] } else { Vec::new() },
            stack: if churns {
                Vec::with_capacity(n)
            } else {
                Vec::new()
            },
        };
        Some(SharedRealization {
            n,
            kind: SharedKind::Dynamic {
                graphs,
                faults,
                policy,
                max_delay,
                scratch,
            },
        })
    }

    /// The number of processes every lane of this realization covers.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Creates the per-lane delivery state for one lane seed.
    #[must_use]
    pub fn lane(&self, seed: u64) -> LaneDelivery {
        let pipes = match &self.kind {
            SharedKind::Dynamic { max_delay, .. } if *max_delay > 0 => {
                vec![VecDeque::new(); self.n * self.n]
            }
            _ => Vec::new(),
        };
        LaneDelivery {
            seed,
            next_round: 0,
            pipes,
        }
    }

    /// Performs the send + receive phases of one lane's round, collecting
    /// the values delivered to every receiver whose `active` flag is set
    /// into `rows` (ascending-sender order per row) and accounting **all**
    /// `n²` slots into `stats` — delivered values, sender omissions,
    /// structural non-deliveries, link omissions/delays — with the exact
    /// counter semantics of the scalar [`SyncNetwork`](crate::SyncNetwork)
    /// exchange for the same lane-seeded configuration.
    ///
    /// `sends` classifies every sender; `outboxes` backs its
    /// [`LaneSend::PerReceiver`] entries (only those indices are read).
    ///
    /// # Errors
    ///
    /// Exactly as the scalar dynamic exchange: out-of-order rounds are
    /// rejected ([`Error::InvalidParameter`]) and a disconnected round
    /// under [`DisconnectionPolicy::Reject`] fails with
    /// [`Error::DisconnectedRound`]. Static realizations never fail.
    ///
    /// # Panics
    ///
    /// Panics if `sends` or `active` do not cover the universe.
    // The loops below walk receiver/sender indices into several parallel
    // flat n²-strided arrays at once; iterator zips would obscure the
    // statement-for-statement mirror of the scalar exchange.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    // mbaa: alloc-free
    pub fn exchange_rows(
        &mut self,
        lane: &mut LaneDelivery,
        round: Round,
        sends: &[LaneSend],
        outboxes: &[Outbox],
        active: &[bool],
        rows: &mut DeliveryRows,
        stats: &mut NetworkStats,
    ) -> Result<()> {
        let n = self.n;
        assert_eq!(sends.len(), n, "one send classification per process");
        assert_eq!(active.len(), n, "one active flag per process");
        rows.reset();
        match &mut self.kind {
            SharedKind::Static(graph) => {
                stats.rounds += 1;
                for r in 0..n {
                    let receiver = ProcessId::new(r);
                    let hood = graph.closed_neighborhood(r);
                    let reachable = hood.len() as u64;
                    let mut delivered = 0u64;
                    if active[r] {
                        let start = rows.total;
                        let mut len = 0usize;
                        for &s in hood {
                            if let Some(value) = sends[s as usize].slot(outboxes, receiver) {
                                rows.merged[start + len] = value;
                                len += 1;
                            }
                        }
                        delivered = len as u64;
                        rows.push_row(r, start, len);
                    } else {
                        for &s in hood {
                            delivered +=
                                u64::from(sends[s as usize].slot(outboxes, receiver).is_some());
                        }
                    }
                    stats.messages_delivered += delivered;
                    stats.omissions += reachable - delivered;
                    stats.unreachable += n as u64 - reachable;
                }
                Ok(())
            }
            SharedKind::Dynamic {
                graphs,
                faults,
                policy,
                max_delay,
                scratch,
            } => {
                if round.index() != lane.next_round {
                    // mbaa: allow(hot-path/allocation, cold misuse error path)
                    return Err(Error::InvalidParameter(format!(
                        "a dynamic network exchanges rounds in order: expected r{}, got {round} \
                         (delay buffers advance once per round)",
                        lane.next_round
                    )));
                }
                lane.next_round += 1;
                let seed = lane.seed;

                // Resolve the round's graph and its connectivity. Phases
                // were precomputed at build; churn redraws its mask from
                // the lane seed, exactly the scalar draw stream.
                let phase: Option<&PhaseGraph> = match graphs {
                    DynGraphs::Phases(phases) => {
                        Some(&phases[(round.index() % phases.len() as u64) as usize])
                    }
                    DynGraphs::Churn { base, flip_rate } => {
                        let mask = &mut scratch.mask;
                        mask.fill(false);
                        for a in 0..n {
                            mask[a * n + a] = true;
                            for b in a + 1..n {
                                if base.connected(ProcessId::new(a), ProcessId::new(b))
                                    && !churn_link_down(seed, round.index(), a, b, *flip_rate)
                                {
                                    mask[a * n + b] = true;
                                    mask[b * n + a] = true;
                                }
                            }
                        }
                        None
                    }
                };
                let (connected, components) = match phase {
                    Some(phase) => (phase.connected, phase.components),
                    None => {
                        let components = mask_components(
                            &scratch.mask,
                            n,
                            &mut scratch.visited,
                            &mut scratch.stack,
                        );
                        (components == 1, components)
                    }
                };
                if !connected {
                    match policy {
                        DisconnectionPolicy::Reject => {
                            return Err(Error::DisconnectedRound { round, components });
                        }
                        DisconnectionPolicy::Record => stats.disconnected_rounds += 1,
                    }
                }

                if *max_delay == 0 {
                    // No link ever buffers: classify and account each slot
                    // immediately, walking only the reachable senders.
                    for r in 0..n {
                        let receiver = ProcessId::new(r);
                        let row_active = active[r];
                        let start = rows.total;
                        let mut len = 0usize;
                        let mut deliver =
                            |s: usize, rows: &mut DeliveryRows, stats: &mut NetworkStats| {
                                match sends[s].slot(outboxes, receiver) {
                                    None => stats.omissions += 1,
                                    Some(value) => {
                                        if omission_lost(
                                            seed,
                                            round.index(),
                                            s,
                                            r,
                                            faults.omit_at(s, r),
                                        ) {
                                            stats.link_omissions += 1;
                                        } else {
                                            stats.messages_delivered += 1;
                                            if row_active {
                                                rows.merged[start + len] = value;
                                                len += 1;
                                            }
                                        }
                                    }
                                }
                            };
                        match phase {
                            Some(phase) => {
                                let hood = phase.graph.closed_neighborhood(r);
                                stats.unreachable += (n - hood.len()) as u64;
                                for &s in hood {
                                    deliver(s as usize, rows, stats);
                                }
                            }
                            None => {
                                let mask_row = &scratch.mask[r * n..(r + 1) * n];
                                for (s, &reachable) in mask_row.iter().enumerate() {
                                    if reachable {
                                        deliver(s, rows, stats);
                                    } else {
                                        stats.unreachable += 1;
                                    }
                                }
                            }
                        }
                        if row_active {
                            rows.push_row(r, start, len);
                        }
                    }
                } else {
                    // Delayed links buffer every outcome — even structural
                    // ones — so all n² slots must be visited, mirroring the
                    // scalar dynamic loop statement for statement.
                    for r in 0..n {
                        let receiver = ProcessId::new(r);
                        let row_active = active[r];
                        let start = rows.total;
                        let mut len = 0usize;
                        for s in 0..n {
                            let delay = faults.delay_at(s, r);
                            let reachable = match phase {
                                Some(phase) => {
                                    phase.adjacency.connected(ProcessId::new(s), receiver)
                                }
                                None => scratch.mask[s * n + r],
                            };
                            let sent = if !reachable {
                                SendOutcome::Unreachable
                            } else {
                                match sends[s].slot(outboxes, receiver) {
                                    None => SendOutcome::SenderOmitted,
                                    Some(value) => {
                                        if omission_lost(
                                            seed,
                                            round.index(),
                                            s,
                                            r,
                                            faults.omit_at(s, r),
                                        ) {
                                            SendOutcome::LinkOmitted
                                        } else {
                                            SendOutcome::Value(value)
                                        }
                                    }
                                }
                            };
                            let arrived = if delay == 0 {
                                Some(sent)
                            } else {
                                let pipe = &mut lane.pipes[s * n + r];
                                // mbaa: allow(hot-path/vec-growth, the pipe is popped whenever len > delay, so it holds at most delay + 1 entries after the first delay rounds)
                                pipe.push_back(sent);
                                if pipe.len() > delay {
                                    Some(pipe.pop_front().expect("pipe holds > delay entries"))
                                } else {
                                    None
                                }
                            };
                            match arrived {
                                Some(SendOutcome::Value(value)) => {
                                    stats.messages_delivered += 1;
                                    if delay > 0 {
                                        stats.link_delayed += 1;
                                    }
                                    if row_active {
                                        rows.merged[start + len] = value;
                                        len += 1;
                                    }
                                }
                                Some(SendOutcome::SenderOmitted) => stats.omissions += 1,
                                Some(SendOutcome::Unreachable) => stats.unreachable += 1,
                                Some(SendOutcome::LinkOmitted) => stats.link_omissions += 1,
                                None => stats.link_pending += 1,
                            }
                        }
                        if row_active {
                            rows.push_row(r, start, len);
                        }
                    }
                }
                stats.rounds += 1;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncNetwork;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn broadcast_sends(n: usize) -> Vec<LaneSend> {
        (0..n)
            .map(|i| LaneSend::Broadcast(Value::new(i as f64)))
            .collect()
    }

    fn broadcast_outboxes(n: usize) -> Vec<Outbox> {
        (0..n)
            .map(|i| Outbox::broadcast(n, pid(i), Value::new(i as f64)))
            .collect()
    }

    /// Runs `rounds` rounds through both the scalar network and the shared
    /// realization and asserts identical per-receiver multisets and stats.
    fn assert_matches_scalar(
        topology: &Topology,
        schedule: Option<&TopologySchedule>,
        plan: &LinkFaultPlan,
        policy: DisconnectionPolicy,
        n: usize,
        seed: u64,
        rounds: u64,
    ) {
        let mut scalar = if schedule.is_none() && plan.is_clean() {
            SyncNetwork::with_topology(topology.realize(n, seed).unwrap())
        } else {
            let desc = schedule
                .cloned()
                .unwrap_or_else(|| TopologySchedule::Static(topology.clone()));
            SyncNetwork::with_dynamics(desc.realize(n, seed).unwrap(), plan, policy, seed).unwrap()
        }
        .with_trace_recording(false);
        let mut shared = SharedRealization::try_build(n, topology, schedule, plan, policy)
            .expect("description is shareable");
        let mut lane = shared.lane(seed);
        let mut rows = DeliveryRows::new(n);
        let mut stats = NetworkStats::new();
        let sends = broadcast_sends(n);
        let outboxes = broadcast_outboxes(n);
        let active = vec![true; n];
        for round in 0..rounds {
            let round = Round::new(round);
            let deliveries = scalar.exchange(round, outboxes.clone()).unwrap();
            shared
                .exchange_rows(
                    &mut lane, round, &sends, &outboxes, &active, &mut rows, &mut stats,
                )
                .unwrap();
            assert_eq!(rows.rows(), n);
            for row in 0..rows.rows() {
                let r = rows.receiver(row);
                let scalar_row: Vec<Value> = deliveries[r].iter().filter_map(|(_, v)| v).collect();
                assert_eq!(rows.row(row), &scalar_row[..], "round {round} receiver {r}");
            }
        }
        assert_eq!(stats, scalar.stats());
    }

    #[test]
    fn static_masked_delivery_matches_scalar() {
        assert_matches_scalar(
            &Topology::Ring { k: 2 },
            None,
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            9,
            3,
            5,
        );
    }

    #[test]
    fn complete_delivery_matches_scalar() {
        assert_matches_scalar(
            &Topology::Complete,
            None,
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            7,
            1,
            4,
        );
    }

    #[test]
    fn churned_delivery_replays_the_lane_draw_stream() {
        let schedule = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 0.4,
        };
        for seed in [2, 9, 40] {
            assert_matches_scalar(
                &Topology::Complete,
                Some(&schedule),
                &LinkFaultPlan::new(),
                DisconnectionPolicy::Record,
                8,
                seed,
                12,
            );
        }
    }

    #[test]
    fn periodic_phases_match_scalar() {
        let schedule = TopologySchedule::Periodic {
            phases: vec![Topology::Ring { k: 2 }, Topology::Complete],
        };
        assert_matches_scalar(
            &Topology::Complete,
            Some(&schedule),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
            9,
            5,
            6,
        );
    }

    #[test]
    fn lossy_and_delayed_links_match_scalar() {
        let plan = LinkFaultPlan::new().omit_all(0.3).delay(0, 1, 2);
        for seed in [7, 11] {
            assert_matches_scalar(
                &Topology::Complete,
                None,
                &plan,
                DisconnectionPolicy::Record,
                6,
                seed,
                10,
            );
        }
    }

    #[test]
    fn random_regular_is_not_shareable() {
        assert!(SharedRealization::try_build(
            10,
            &Topology::RandomRegular { degree: 4 },
            None,
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
        )
        .is_none());
        let churned = TopologySchedule::SeededChurn {
            base: Topology::RandomRegular { degree: 4 },
            flip_rate: 0.2,
        };
        assert!(SharedRealization::try_build(
            10,
            &Topology::Complete,
            Some(&churned),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
        )
        .is_none());
    }

    #[test]
    fn rejecting_policy_fails_disconnected_rounds_like_scalar() {
        let schedule = TopologySchedule::SeededChurn {
            base: Topology::Complete,
            flip_rate: 1.0,
        };
        let mut shared = SharedRealization::try_build(
            3,
            &Topology::Complete,
            Some(&schedule),
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Reject,
        )
        .unwrap();
        let mut lane = shared.lane(0);
        let mut rows = DeliveryRows::new(3);
        let mut stats = NetworkStats::new();
        let err = shared
            .exchange_rows(
                &mut lane,
                Round::ZERO,
                &broadcast_sends(3),
                &broadcast_outboxes(3),
                &[true; 3],
                &mut rows,
                &mut stats,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            Error::DisconnectedRound { components: 3, .. }
        ));
    }

    #[test]
    fn dynamic_rounds_must_arrive_in_order() {
        let plan = LinkFaultPlan::new().delay(0, 1, 1);
        let mut shared = SharedRealization::try_build(
            3,
            &Topology::Complete,
            None,
            &plan,
            DisconnectionPolicy::Record,
        )
        .unwrap();
        let mut lane = shared.lane(0);
        let mut rows = DeliveryRows::new(3);
        let mut stats = NetworkStats::new();
        let err = shared
            .exchange_rows(
                &mut lane,
                Round::new(2),
                &broadcast_sends(3),
                &broadcast_outboxes(3),
                &[true; 3],
                &mut rows,
                &mut stats,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn inactive_receivers_are_accounted_but_not_collected() {
        let mut shared = SharedRealization::try_build(
            4,
            &Topology::Complete,
            None,
            &LinkFaultPlan::new(),
            DisconnectionPolicy::Record,
        )
        .unwrap();
        let mut lane = shared.lane(0);
        let mut rows = DeliveryRows::new(4);
        let mut stats = NetworkStats::new();
        let mut active = vec![true; 4];
        active[1] = false;
        shared
            .exchange_rows(
                &mut lane,
                Round::ZERO,
                &broadcast_sends(4),
                &broadcast_outboxes(4),
                &active,
                &mut rows,
                &mut stats,
            )
            .unwrap();
        assert_eq!(rows.rows(), 3);
        assert_eq!(
            (0..rows.rows())
                .map(|i| rows.receiver(i))
                .collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        // All 16 slots are accounted regardless of who computes.
        assert_eq!(stats.messages_delivered, 16);
        assert_eq!(rows.uniform_len(), Some(4));
        assert_eq!(rows.min_len(), Some(4));
    }
}
