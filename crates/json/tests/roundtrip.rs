//! Property batteries: every scenario the generator can produce survives
//! `write → parse → from-json` bit-identically, and the canonical writer
//! is a fixed point under reparsing.
//!
//! The generator is a hand-rolled splitmix64 walk (the vendored `rand` is
//! a shim), so the battery is deterministic: the same seeds exercise the
//! same scenarios on every run and every machine.

use mbaa::prelude::*;
use mbaa_json::schema::{
    experiment_from, experiment_to_json, run_summary_from, run_summary_to_json, scenario_from,
    scenario_to_json,
};
use mbaa_json::{parse, write_string, Ctx, ScenarioFile, SeedSpec, SweepSpec};

/// splitmix64: a tiny, well-mixed generator good enough to drive variant
/// choices. Deterministic by construction.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite f64 drawn from a few representative magnitudes, including
    /// awkward ones (negative zero, subnormal-adjacent, non-dyadic).
    fn f64(&mut self) -> f64 {
        match self.pick(8) {
            0 => 0.0,
            1 => -0.0,
            2 => 1e-9,
            3 => 0.1 + 0.2,
            4 => -273.15,
            5 => 1e300,
            6 => (self.next() % 1_000_000) as f64 / 997.0,
            _ => f64::MIN_POSITIVE,
        }
    }
}

fn random_topology(g: &mut Gen, n: usize) -> Topology {
    match g.pick(5) {
        0 => Topology::Complete,
        1 => Topology::Grid,
        2 => Topology::Ring {
            k: 1 + g.pick(3) as usize,
        },
        3 => Topology::RandomRegular {
            degree: 2 + g.pick(4) as usize,
        },
        _ => {
            // A random connected-ish graph: a ring plus a few chords.
            let mut edges: Vec<(usize, usize)> = (0..n).map(|a| (a, (a + 1) % n)).collect();
            for _ in 0..g.pick(4) {
                let a = g.pick(n as u64) as usize;
                let b = g.pick(n as u64) as usize;
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            Topology::Custom(Adjacency::from_edges(n, edges).unwrap())
        }
    }
}

fn random_scenario(g: &mut Gen) -> Scenario {
    let model = match g.pick(4) {
        0 => MobileModel::Garay,
        1 => MobileModel::Bonnet,
        2 => MobileModel::Sasaki,
        _ => MobileModel::Buhrman,
    };
    let f = 1 + g.pick(2) as usize;
    let n = model.required_processes(f) + g.pick(4) as usize;
    let mut s = Scenario::new(model, n, f);
    s.epsilon = [1e-3, 1e-4, 0.05][g.pick(3) as usize];
    s.max_rounds = 10 + g.pick(200) as usize;
    s.mobility = match g.pick(6) {
        0 => MobilityStrategy::Stationary,
        1 => MobilityStrategy::RoundRobin,
        2 => MobilityStrategy::Random,
        3 => MobilityStrategy::TargetExtremes,
        4 => MobilityStrategy::Sweep,
        _ => MobilityStrategy::TargetMedian,
    };
    s.corruption = match g.pick(8) {
        0 => CorruptionStrategy::Silent,
        1 => CorruptionStrategy::BoundaryDrag,
        2 => CorruptionStrategy::Stealth,
        3 => CorruptionStrategy::MedianPull,
        4 => CorruptionStrategy::Fixed {
            value: Value::try_new(g.f64()).unwrap(),
        },
        5 => CorruptionStrategy::OutOfRange { magnitude: g.f64() },
        6 => CorruptionStrategy::Split { magnitude: g.f64() },
        _ => CorruptionStrategy::RandomNoise {
            lo: -g.f64().abs(),
            hi: g.f64().abs(),
        },
    };
    s.topology = random_topology(g, n);
    s.schedule = match g.pick(4) {
        0 => None,
        1 => Some(TopologySchedule::Static(random_topology(g, n))),
        2 => Some(TopologySchedule::Periodic {
            phases: (0..2 + g.pick(2)).map(|_| random_topology(g, n)).collect(),
        }),
        _ => Some(TopologySchedule::SeededChurn {
            base: random_topology(g, n),
            flip_rate: (g.pick(100) as f64) / 100.0,
        }),
    };
    let mut plan = LinkFaultPlan::new();
    for _ in 0..g.pick(3) {
        plan = plan.with_rule(LinkFaultRule {
            from: (g.pick(2) == 0).then(|| g.pick(n as u64) as usize),
            to: (g.pick(2) == 0).then(|| g.pick(n as u64) as usize),
            omit: (g.pick(2) == 0).then(|| (g.pick(100) as f64) / 100.0),
            delay: Some(g.pick(4) as usize),
        });
    }
    s.link_faults = plan;
    s.disconnection = if g.pick(2) == 0 {
        DisconnectionPolicy::Record
    } else {
        DisconnectionPolicy::Reject
    };
    s.function = match g.pick(5) {
        0 => None,
        _ => {
            let reduction = if g.pick(2) == 0 {
                mbaa::Reduction::Identity
            } else {
                mbaa::Reduction::Trim {
                    tau: g.pick(3) as usize,
                }
            };
            let selection = match g.pick(4) {
                0 => mbaa::Selection::All,
                1 => mbaa::Selection::Extremes,
                2 => mbaa::Selection::MedianOnly,
                _ => mbaa::Selection::EveryKth {
                    k: 1 + g.pick(3) as usize,
                },
            };
            Some(MsrFunction::new(reduction, selection))
        }
    };
    s.workload = match g.pick(4) {
        0 => Workload::UniformSpread {
            lo: -g.f64().abs(),
            hi: g.f64().abs(),
        },
        1 => Workload::RandomUniform {
            lo: -g.f64().abs(),
            hi: g.f64().abs(),
        },
        2 => Workload::Clustered {
            centers: (0..1 + g.pick(3)).map(|_| g.f64()).collect(),
            jitter: g.f64().abs(),
        },
        _ => Workload::Fixed {
            values: (0..n).map(|_| Value::try_new(g.f64()).unwrap()).collect(),
        },
    };
    s.allow_bound_violation = g.pick(4) == 0;
    s.observe = match g.pick(3) {
        0 => Observe::Full,
        1 => Observe::Snapshots,
        _ => Observe::Summary,
    };
    s
}

#[test]
fn random_scenarios_round_trip_exactly() {
    let mut g = Gen(0x1cdc_5201_6000);
    for case in 0..300 {
        let scenario = random_scenario(&mut g);
        let text = write_string(&scenario_to_json(&scenario));
        let tree = parse(&text).unwrap_or_else(|e| panic!("case {case}: unparseable: {e}\n{text}"));
        let back = scenario_from(Ctx::root(&tree))
            .unwrap_or_else(|e| panic!("case {case}: schema rejected own output: {e}\n{text}"));
        assert_eq!(back, scenario, "case {case} did not round-trip:\n{text}");
        // Canonical: rewriting the reparsed tree reproduces the bytes.
        assert_eq!(write_string(&scenario_to_json(&back)), text, "case {case}");
    }
}

#[test]
fn random_experiments_round_trip_exactly() {
    let mut g = Gen(7);
    for case in 0..100 {
        let scenario = random_scenario(&mut g);
        let seeds: Vec<u64> = (0..1 + g.pick(8)).map(|_| g.next()).collect();
        let config = scenario.to_experiment(seeds);
        let text = write_string(&experiment_to_json(&config));
        let tree = parse(&text).unwrap();
        let back = experiment_from(Ctx::root(&tree))
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, config, "case {case}:\n{text}");
    }
}

#[test]
fn run_summaries_round_trip_exactly() {
    let mut g = Gen(99);
    for _ in 0..100 {
        let summary = RunSummary {
            seed: g.next(),
            reached_agreement: g.pick(2) == 0,
            validity: g.pick(2) == 0,
            rounds: g.pick(500) as usize,
            final_diameter: g.f64().abs(),
            initial_diameter: g.f64().abs(),
            mean_contraction: (g.pick(2) == 0).then(|| g.f64().abs()),
        };
        let text = write_string(&run_summary_to_json(&summary));
        let back = run_summary_from(Ctx::root(&parse(&text).unwrap())).unwrap();
        assert_eq!(back.seed, summary.seed);
        assert_eq!(back.reached_agreement, summary.reached_agreement);
        assert_eq!(back.validity, summary.validity);
        assert_eq!(back.rounds, summary.rounds);
        assert_eq!(
            back.final_diameter.to_bits(),
            summary.final_diameter.to_bits()
        );
        assert_eq!(
            back.initial_diameter.to_bits(),
            summary.initial_diameter.to_bits()
        );
        assert_eq!(
            back.mean_contraction.map(f64::to_bits),
            summary.mean_contraction.map(f64::to_bits)
        );
    }
}

#[test]
fn scenario_files_round_trip_exactly() {
    let mut g = Gen(1234);
    for case in 0..100 {
        let scenario = random_scenario(&mut g);
        let seeds = if g.pick(2) == 0 {
            SeedSpec::List((0..1 + g.pick(6)).map(|_| g.next()).collect())
        } else {
            SeedSpec::Range {
                start: g.pick(1000),
                count: 1 + g.pick(30),
            }
        };
        let sweep = match g.pick(6) {
            0 => Some(SweepSpec::N {
                extra: g.pick(5) as usize,
            }),
            1 => Some(SweepSpec::F { values: vec![1, 2] }),
            2 => Some(SweepSpec::Connectivity {
                topologies: vec![Topology::Complete, Topology::Ring { k: 2 }],
            }),
            3 => Some(SweepSpec::Degrees {
                degrees: vec![2, 4],
            }),
            4 => Some(SweepSpec::Churn {
                flip_rates: vec![0.0, 0.25, 0.5],
            }),
            _ => None,
        };
        let file = ScenarioFile {
            name: format!("battery-{case}"),
            title: (g.pick(2) == 0).then(|| "A generated scenario".to_string()),
            reproduces: (g.pick(2) == 0).then(|| "tests/roundtrip.rs".to_string()),
            scenario,
            seeds,
            sweep,
        };
        let text = file.to_json_string();
        let back =
            ScenarioFile::parse_str(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, file, "case {case}:\n{text}");
        assert_eq!(back.to_json_string(), text, "case {case}");
        // Expansion is deterministic and non-empty.
        assert!(!back.points().is_empty());
        assert_eq!(back.points(), file.points());
    }
}
