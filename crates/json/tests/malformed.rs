//! Malformed-input battery: every rejection carries a typed kind, a
//! field path where one exists, and a 1-based `line:col` anchor pointing
//! at the offending character or value.

use mbaa_json::{parse, JsonError, ParseErrorKind, ScenarioFile};

/// Asserts a parse-level rejection with the expected anchor.
fn assert_parse_err(text: &str, line: u32, col: u32, want: &ParseErrorKind) {
    let err = parse(text).unwrap_err();
    assert_eq!(
        (err.line, err.col),
        (line, col),
        "wrong anchor for {text:?}: got {err}"
    );
    assert_eq!(&err.kind, want, "wrong kind for {text:?}");
}

#[test]
fn syntax_errors_are_anchored() {
    assert_parse_err("", 1, 1, &ParseErrorKind::UnexpectedEof);
    assert_parse_err(
        "{\"a\": }",
        1,
        7,
        &ParseErrorKind::UnexpectedChar {
            found: '}',
            expected: "a JSON value",
        },
    );
    assert_parse_err(
        "[1, 2,]",
        1,
        7,
        &ParseErrorKind::UnexpectedChar {
            found: ']',
            expected: "a JSON value",
        },
    );
    assert_parse_err("{\n  \"a\": 01\n}", 2, 8, &ParseErrorKind::InvalidNumber);
    // Escape errors anchor at the backslash that starts the sequence;
    // unterminated strings anchor at their opening quote.
    assert_parse_err("\"ab\\qcd\"", 1, 4, &ParseErrorKind::InvalidEscape('q'));
    assert_parse_err("\"\\ud800\"", 1, 2, &ParseErrorKind::InvalidUnicodeEscape);
    assert_parse_err("\"never closed", 1, 1, &ParseErrorKind::UnterminatedString);
    assert_parse_err("[1] [2]", 1, 5, &ParseErrorKind::TrailingCharacters);
    assert_parse_err(
        "{\"k\": 1,\n \"k\": 2}",
        2,
        2,
        &ParseErrorKind::DuplicateKey("k".to_string()),
    );
}

/// Unwraps the schema-error arm.
fn schema_err(text: &str) -> mbaa_json::SchemaError {
    match ScenarioFile::parse_str(text).unwrap_err() {
        JsonError::Schema(e) => e,
        JsonError::Parse(e) => panic!("expected schema error for {text:?}, got parse error {e}"),
    }
}

fn wrap(scenario_body: &str) -> String {
    format!(
        "{{\n  \"format\": \"mbaa-scenario/1\",\n  \"name\": \"t\",\n  \"scenario\": {{\n    \
         \"model\": \"garay\",\n    \"n\": 9,\n    \"f\": 2{scenario_body}\n  }},\n  \
         \"seeds\": [1]\n}}"
    )
}

#[test]
fn unknown_field_is_anchored_at_its_key() {
    let err = schema_err(&wrap(",\n    \"epsilonn\": 0.1"));
    assert_eq!(err.path, "scenario.epsilonn");
    assert_eq!((err.pos.line, err.pos.col), (8, 5));
}

#[test]
fn wrong_type_is_anchored_at_the_value() {
    let err = schema_err(&wrap(",\n    \"max_rounds\": \"many\""));
    assert_eq!(err.path, "scenario.max_rounds");
    assert_eq!((err.pos.line, err.pos.col), (8, 19));
    assert!(err.message.contains("expected an unsigned integer"));
}

#[test]
fn unknown_variant_is_anchored() {
    let err = schema_err(&wrap(",\n    \"mobility\": \"teleport\""));
    assert_eq!(err.path, "scenario.mobility");
    assert!(err.message.contains("teleport"));
}

#[test]
fn nested_variant_payload_paths_are_dotted() {
    let err = schema_err(&wrap(
        ",\n    \"topology\": {\"ring\": {\"k\": 2, \"width\": 3}}",
    ));
    assert_eq!(err.path, "scenario.topology.ring.width");
    assert!(err.message.contains("unknown field"));
}

#[test]
fn seed_must_be_a_plain_integer() {
    let err = schema_err(
        "{\"format\": \"mbaa-scenario/1\", \"name\": \"t\",\n \"scenario\": \
         {\"model\": \"garay\", \"n\": 9, \"f\": 2},\n \"seeds\": [1.5]}",
    );
    assert_eq!(err.path, "seeds[0]");
    assert_eq!((err.pos.line, err.pos.col), (3, 12));
}

#[test]
fn missing_required_field_names_the_object() {
    let err = schema_err(
        "{\"format\": \"mbaa-scenario/1\", \"name\": \"t\",\n \"scenario\": \
         {\"model\": \"garay\", \"n\": 9},\n \"seeds\": [1]}",
    );
    assert_eq!(err.path, "scenario");
    assert!(err.message.contains("missing required field \"f\""));
}

#[test]
fn top_level_unknown_field_has_no_root_prefix() {
    let err = schema_err(
        "{\"format\": \"mbaa-scenario/1\", \"name\": \"t\",\n \"scenario\": \
         {\"model\": \"garay\", \"n\": 9, \"f\": 2},\n \"seeds\": [1],\n \"extra\": true}",
    );
    assert_eq!(err.path, "extra");
    assert_eq!((err.pos.line, err.pos.col), (4, 2));
}
