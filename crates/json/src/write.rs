//! The canonical JSON writer.
//!
//! One JSON tree has exactly one rendering: objects are written one field
//! per line with two-space indentation, arrays of scalars stay on one line
//! (seed lists, edge pairs), nested arrays/objects get a line per element,
//! and strings escape only what must be escaped. Checkpoint and report
//! files lean on this — *byte*-equality of outputs is how the sweep
//! runner's resume invariant is asserted, so the writer must never have
//! two moods.

use crate::value::{Json, Node};

/// Renders a JSON tree in the canonical format (no trailing newline).
///
/// # Example
///
/// ```
/// use mbaa_json::{parse, write_string, Json};
///
/// let doc = Json::object(vec![
///     ("name", Json::str("demo")),
///     ("seeds", Json::array(vec![Json::u64(1), Json::u64(2)])),
/// ]);
/// let text = write_string(&doc);
/// assert_eq!(text, "{\n  \"name\": \"demo\",\n  \"seeds\": [1, 2]\n}");
/// // Canonical means stable under a parse → write round trip.
/// assert_eq!(write_string(&parse(&text)?), text);
/// # Ok::<(), mbaa_json::JsonError>(())
/// ```
#[must_use]
pub fn write_string(json: &Json) -> String {
    let mut out = String::new();
    write_value(json, 0, &mut out);
    out
}

/// Renders a JSON tree on one line (no trailing newline) — the JSONL form
/// used for telemetry event streams. As canonical as [`write_string`]: one
/// tree, one rendering, just without the indentation.
#[must_use]
pub fn write_line(json: &Json) -> String {
    let mut out = String::new();
    write_compact(json, &mut out);
    out
}

fn write_compact(json: &Json, out: &mut String) {
    match &json.node {
        Node::Null => out.push_str("null"),
        Node::Bool(true) => out.push_str("true"),
        Node::Bool(false) => out.push_str("false"),
        Node::Number(text) => out.push_str(text),
        Node::String(text) => write_escaped(text, out),
        Node::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Node::Object(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_escaped(&key.name, out);
                out.push_str(": ");
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

fn write_value(json: &Json, indent: usize, out: &mut String) {
    match &json.node {
        Node::Null => out.push_str("null"),
        Node::Bool(true) => out.push_str("true"),
        Node::Bool(false) => out.push_str("false"),
        Node::Number(text) => out.push_str(text),
        Node::String(text) => write_escaped(text, out),
        Node::Array(items) => write_array(items, indent, out),
        Node::Object(fields) => write_object(fields, indent, out),
    }
}

fn is_scalar(json: &Json) -> bool {
    !matches!(json.node, Node::Array(_) | Node::Object(_))
}

fn write_array(items: &[Json], indent: usize, out: &mut String) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    if items.iter().all(is_scalar) {
        // Scalar lists (seeds, flip rates) stay on one line.
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_value(item, indent, out);
        }
        out.push(']');
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        push_indent(indent + 1, out);
        write_value(item, indent + 1, out);
    }
    out.push('\n');
    push_indent(indent, out);
    out.push(']');
}

fn write_object(fields: &[(crate::value::Key, Json)], indent: usize, out: &mut String) {
    if fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        push_indent(indent + 1, out);
        write_escaped(&key.name, out);
        out.push_str(": ");
        write_value(value, indent + 1, out);
    }
    out.push('\n');
    push_indent(indent, out);
    out.push('}');
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::value::Json;

    #[test]
    fn canonical_rendering_is_parse_stable() {
        let doc = Json::object(vec![
            ("null", Json::null()),
            ("flag", Json::bool(true)),
            ("big", Json::u64(u64::MAX)),
            ("eps", Json::f64(1e-4)),
            ("text", Json::str("a\n\"b\"\\c\u{1}")),
            ("empty_arr", Json::array(vec![])),
            ("empty_obj", Json::object(vec![])),
            (
                "nested",
                Json::array(vec![Json::object(vec![("k", Json::usize(3))])]),
            ),
        ]);
        let text = write_string(&doc);
        let reparsed = parse(&text).unwrap();
        assert_eq!(write_string(&reparsed), text);
    }

    #[test]
    fn scalar_arrays_stay_inline() {
        let doc = Json::array(vec![Json::u64(1), Json::u64(2), Json::u64(3)]);
        assert_eq!(write_string(&doc), "[1, 2, 3]");
    }

    #[test]
    fn u64_and_f64_round_trip_exactly() {
        for v in [0u64, 1, u64::MAX, (1 << 53) + 1] {
            let text = write_string(&Json::u64(v));
            assert_eq!(text.parse::<u64>().unwrap(), v);
        }
        for v in [0.0f64, -0.0, 1e-3, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300] {
            let text = write_string(&Json::f64(v));
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}
