//! Lossless, dependency-free JSON for scenario files and sweep reports.
//!
//! The workspace's vendored `serde` is a deliberate no-op (see
//! `vendor/README.md`), so this crate hand-rolls the whole pipeline:
//!
//! * [`parse()`] — a strict JSON parser producing a *spanned* tree: every
//!   value and object key remembers its 1-based `line:col`, so both
//!   syntax errors ([`ParseError`]) and semantic errors ([`SchemaError`])
//!   point at the exact spot in a committed file.
//! * [`write_string`] — the canonical writer. One tree has exactly one
//!   rendering; the sweep runner's "resume is bit-identical to an
//!   uninterrupted run" invariant is asserted as byte-equality of this
//!   output.
//! * [`schema`] — (de)serializers for the scenario vocabulary
//!   ([`mbaa::Scenario`](mbaa::prelude::Scenario), `ExperimentConfig`,
//!   topologies, schedules, link-fault plans, …). Numbers round-trip
//!   losslessly: `u64` seeds must be plain integer literals (never routed
//!   through a lossy `f64`) and `f64`s are written in Rust's shortest
//!   round-trip form.
//! * [`metrics`] — the `mbaa-metrics/1` aggregated-telemetry document and
//!   the kind-tagged event lines of `--events-out` JSONL streams.
//! * [`ScenarioFile`] — the committed `*.scenario.json` document: one
//!   scenario plus seeds, gallery metadata, and at most one sweep axis.
//!
//! ```
//! use mbaa_json::ScenarioFile;
//!
//! let file = ScenarioFile::parse_str(
//!     r#"{
//!       "format": "mbaa-scenario/1",
//!       "name": "quickstart",
//!       "scenario": {"model": "garay", "n": 9, "f": 2},
//!       "seeds": [42]
//!     }"#,
//! )?;
//! assert_eq!(file.scenario.n, 9);
//! # Ok::<(), mbaa_json::JsonError>(())
//! ```
//!
//! Typos fail loudly with a path and position instead of silently
//! defaulting:
//!
//! ```
//! use mbaa_json::{JsonError, ScenarioFile};
//!
//! let err = ScenarioFile::parse_str(
//!     "{\"format\": \"mbaa-scenario/1\", \"name\": \"x\",\n \
//!      \"scenario\": {\"model\": \"garay\", \"n\": 9, \"f\": 2,\n  \
//!      \"epsilonn\": 0.1}, \"seeds\": [1]}",
//! )
//! .unwrap_err();
//! let JsonError::Schema(schema) = err else { panic!() };
//! assert_eq!(schema.path, "scenario.epsilonn");
//! assert_eq!((schema.pos.line, schema.pos.col), (3, 3));
//! ```

pub mod ctx;
pub mod doc;
pub mod error;
pub mod metrics;
pub mod parse;
pub mod schema;
pub mod value;
pub mod write;

pub use ctx::{ChildCtx, Ctx, ObjCtx};
pub use doc::{topology_label, ScenarioFile, SeedSpec, SweepSpec, FORMAT};
pub use error::{JsonError, ParseError, ParseErrorKind, SchemaError};
pub use metrics::{event_from, event_to_json, metrics_from, metrics_to_json, METRICS_FORMAT};
pub use parse::parse;
pub use value::{Json, Key, Node, Pos};
pub use write::{write_line, write_string};
