//! A recursive-descent JSON parser producing the spanned [`Json`] tree.
//!
//! Strict RFC 8259 JSON — no comments, no trailing commas — plus two
//! deliberate hardenings for committed scenario files: duplicate object
//! keys are a typed error (silently keeping one of two conflicting knobs
//! would change an experiment without anyone noticing), and nesting is
//! depth-limited so a malformed file cannot overflow the stack.
//!
//! Every error carries the 1-based `line:col` of the offending character;
//! every parsed node carries the position of its first character for the
//! schema layer to anchor semantic errors.

use crate::error::{ParseError, ParseErrorKind};
use crate::value::{Json, Key, Node, Pos};

/// Maximum array/object nesting the parser accepts.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] anchored at the offending character; see
/// [`ParseErrorKind`] for the catalogue.
///
/// # Example
///
/// ```
/// use mbaa_json::{parse, Node};
///
/// let doc = parse(r#"{"seeds": [1, 2, 3]}"#)?;
/// assert!(matches!(doc.node, Node::Object(_)));
///
/// let err = parse("{\"a\": 1,\n \"a\": 2}").unwrap_err();
/// assert_eq!((err.line, err.col), (2, 2));
/// # Ok::<(), mbaa_json::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut parser = Parser::new(input);
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.peek().is_some() {
        return Err(parser.error_here(ParseErrorKind::TrailingCharacters));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: std::str::Chars<'a>,
    peeked: Option<char>,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    /// The position of the next unconsumed character.
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peeked.take().or_else(|| self.chars.next());
        match c {
            Some('\n') => {
                self.line += 1;
                self.col = 1;
            }
            Some(_) => self.col += 1,
            None => {}
        }
        c
    }

    fn error_here(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            kind,
        }
    }

    fn error_at(&self, pos: Pos, kind: ParseErrorKind) -> ParseError {
        ParseError {
            line: pos.line,
            col: pos.col,
            kind,
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next();
        }
    }

    fn expect(&mut self, wanted: char, expected: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == wanted => {
                self.next();
                Ok(())
            }
            Some(found) => Err(self.error_here(ParseErrorKind::UnexpectedChar { found, expected })),
            None => Err(self.error_here(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error_here(ParseErrorKind::TooDeep));
        }
        let pos = self.pos();
        let node = match self.peek() {
            None => return Err(self.error_here(ParseErrorKind::UnexpectedEof)),
            Some('{') => return self.parse_object(depth),
            Some('[') => return self.parse_array(depth),
            Some('"') => Node::String(self.parse_string()?),
            Some('t') => {
                self.parse_literal("true")?;
                Node::Bool(true)
            }
            Some('f') => {
                self.parse_literal("false")?;
                Node::Bool(false)
            }
            Some('n') => {
                self.parse_literal("null")?;
                Node::Null
            }
            Some(c) if c == '-' || c.is_ascii_digit() => Node::Number(self.parse_number()?),
            Some(found) => {
                return Err(self.error_here(ParseErrorKind::UnexpectedChar {
                    found,
                    expected: "a JSON value",
                }))
            }
        };
        Ok(Json { pos, node })
    }

    fn parse_literal(&mut self, literal: &'static str) -> Result<(), ParseError> {
        for wanted in literal.chars() {
            match self.peek() {
                Some(c) if c == wanted => {
                    self.next();
                }
                Some(found) => {
                    return Err(self.error_here(ParseErrorKind::UnexpectedChar {
                        found,
                        expected: "a JSON value",
                    }))
                }
                None => return Err(self.error_here(ParseErrorKind::UnexpectedEof)),
            }
        }
        Ok(())
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, ParseError> {
        let pos = self.pos();
        self.expect('{', "'{'")?;
        let mut fields: Vec<(Key, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.next();
            return Ok(Json {
                pos,
                node: Node::Object(fields),
            });
        }
        loop {
            self.skip_whitespace();
            let key_pos = self.pos();
            if self.peek() != Some('"') {
                return Err(match self.peek() {
                    Some(found) => self.error_here(ParseErrorKind::UnexpectedChar {
                        found,
                        expected: "an object key string",
                    }),
                    None => self.error_here(ParseErrorKind::UnexpectedEof),
                });
            }
            let name = self.parse_string()?;
            if fields.iter().any(|(k, _)| k.name == name) {
                return Err(self.error_at(key_pos, ParseErrorKind::DuplicateKey(name)));
            }
            self.skip_whitespace();
            self.expect(':', "':' after the object key")?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((Key { pos: key_pos, name }, value));
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.next();
                }
                Some('}') => {
                    self.next();
                    return Ok(Json {
                        pos,
                        node: Node::Object(fields),
                    });
                }
                Some(found) => {
                    return Err(self.error_here(ParseErrorKind::UnexpectedChar {
                        found,
                        expected: "',' or '}'",
                    }))
                }
                None => return Err(self.error_here(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, ParseError> {
        let pos = self.pos();
        self.expect('[', "'['")?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.next();
            return Ok(Json {
                pos,
                node: Node::Array(items),
            });
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(',') => {
                    self.next();
                }
                Some(']') => {
                    self.next();
                    return Ok(Json {
                        pos,
                        node: Node::Array(items),
                    });
                }
                Some(found) => {
                    return Err(self.error_here(ParseErrorKind::UnexpectedChar {
                        found,
                        expected: "',' or ']'",
                    }))
                }
                None => return Err(self.error_here(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        let open = self.pos();
        self.expect('"', "'\"'")?;
        let mut out = String::new();
        loop {
            // Escape and control-character errors anchor at the character
            // (or backslash) that starts the offending sequence.
            let at = self.pos();
            match self.next() {
                None => return Err(self.error_at(open, ParseErrorKind::UnterminatedString)),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    None => return Err(self.error_at(open, ParseErrorKind::UnterminatedString)),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000C}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => out.push(self.parse_unicode_escape(at)?),
                    Some(c) => return Err(self.error_at(at, ParseErrorKind::InvalidEscape(c))),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(self.error_at(at, ParseErrorKind::ControlCharacter))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self, at: Pos) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.next() {
                Some(c) => c
                    .to_digit(16)
                    .ok_or_else(|| self.error_at(at, ParseErrorKind::InvalidUnicodeEscape))?,
                None => return Err(self.error_here(ParseErrorKind::UnexpectedEof)),
            };
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_unicode_escape(&mut self, at: Pos) -> Result<char, ParseError> {
        let first = self.parse_hex4(at)?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.next() != Some('\\') || self.next() != Some('u') {
                return Err(self.error_at(at, ParseErrorKind::InvalidUnicodeEscape));
            }
            let second = self.parse_hex4(at)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.error_at(at, ParseErrorKind::InvalidUnicodeEscape));
            }
            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(combined)
                .ok_or_else(|| self.error_at(at, ParseErrorKind::InvalidUnicodeEscape))
        } else {
            char::from_u32(first)
                .ok_or_else(|| self.error_at(at, ParseErrorKind::InvalidUnicodeEscape))
        }
    }

    fn parse_number(&mut self) -> Result<String, ParseError> {
        let start = self.pos();
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push('-');
            self.next();
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some('0') => {
                text.push('0');
                self.next();
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.error_at(start, ParseErrorKind::InvalidNumber));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while let Some(c) = self.peek() {
                    if !c.is_ascii_digit() {
                        break;
                    }
                    text.push(c);
                    self.next();
                }
            }
            _ => return Err(self.error_at(start, ParseErrorKind::InvalidNumber)),
        }
        // Fraction.
        if self.peek() == Some('.') {
            text.push('.');
            self.next();
            let mut digits = 0;
            while let Some(c) = self.peek() {
                if !c.is_ascii_digit() {
                    break;
                }
                text.push(c);
                self.next();
                digits += 1;
            }
            if digits == 0 {
                return Err(self.error_at(start, ParseErrorKind::InvalidNumber));
            }
        }
        // Exponent.
        if matches!(self.peek(), Some('e' | 'E')) {
            text.push('e');
            self.next();
            if matches!(self.peek(), Some('+' | '-')) {
                // unwrap: the match above guarantees a character is there.
                text.push(self.next().unwrap());
            }
            let mut digits = 0;
            while let Some(c) = self.peek() {
                if !c.is_ascii_digit() {
                    break;
                }
                text.push(c);
                self.next();
                digits += 1;
            }
            if digits == 0 {
                return Err(self.error_at(start, ParseErrorKind::InvalidNumber));
            }
        }
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(input: &str) -> ParseErrorKind {
        parse(input).unwrap_err().kind
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap().node, Node::Null);
        assert_eq!(parse("true").unwrap().node, Node::Bool(true));
        assert_eq!(parse("false").unwrap().node, Node::Bool(false));
        assert_eq!(parse("42").unwrap().node, Node::Number("42".into()));
        assert_eq!(
            parse("-1.5e-3").unwrap().node,
            Node::Number("-1.5e-3".into())
        );
        assert_eq!(parse(r#""hi""#).unwrap().node, Node::String("hi".into()));
    }

    #[test]
    fn escapes_roundtrip() {
        assert_eq!(
            parse(r#""a\n\t\"\\é😀""#).unwrap().node,
            Node::String("a\n\t\"\\é😀".into())
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let doc = parse("{\n  \"a\": [1, 2]\n}").unwrap();
        assert_eq!((doc.pos.line, doc.pos.col), (1, 1));
        let Node::Object(fields) = doc.node else {
            panic!()
        };
        let (key, value) = &fields[0];
        assert_eq!((key.pos.line, key.pos.col), (2, 3));
        assert_eq!((value.pos.line, value.pos.col), (2, 8));
        let Node::Array(items) = &value.node else {
            panic!()
        };
        assert_eq!((items[1].pos.line, items[1].pos.col), (2, 12));
    }

    #[test]
    fn typed_errors_with_anchors() {
        assert_eq!(kind(""), ParseErrorKind::UnexpectedEof);
        assert_eq!(kind("{\"a\": 1,}"), {
            ParseErrorKind::UnexpectedChar {
                found: '}',
                expected: "an object key string",
            }
        });
        assert_eq!(kind("01"), ParseErrorKind::InvalidNumber);
        assert_eq!(kind("1."), ParseErrorKind::InvalidNumber);
        assert_eq!(kind("1e"), ParseErrorKind::InvalidNumber);
        assert_eq!(kind(r#""\q""#), ParseErrorKind::InvalidEscape('q'));
        assert_eq!(kind(r#""\ud800x""#), ParseErrorKind::InvalidUnicodeEscape);
        assert_eq!(kind("\"abc"), ParseErrorKind::UnterminatedString);
        assert_eq!(kind("\"a\u{1}b\""), ParseErrorKind::ControlCharacter);
        assert_eq!(
            kind(r#"{"x": 1, "x": 2}"#),
            ParseErrorKind::DuplicateKey("x".into())
        );
        assert_eq!(kind("[1] [2]"), ParseErrorKind::TrailingCharacters);
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(kind(&deep), ParseErrorKind::TooDeep);
    }

    #[test]
    fn duplicate_key_is_anchored_at_the_second_occurrence() {
        let err = parse("{\"a\": 1,\n \"a\": 2}").unwrap_err();
        assert_eq!((err.line, err.col), (2, 2));
    }
}
