//! The `mbaa-metrics/1` document and the telemetry-event JSONL lines.
//!
//! Two wire forms for the `mbaa-obs` vocabulary:
//!
//! * [`metrics_to_json`] / [`metrics_from`] — one aggregated
//!   [`MetricsRegistry`] as a canonical [`METRICS_FORMAT`] document
//!   (`mbaa sweep --metrics-out`, `mbaa report`).
//! * [`event_to_json`] / [`event_from`] — one telemetry [`Event`] as a
//!   kind-tagged object, written one-per-line by `mbaa run --events-out`
//!   and foldable back into a registry via
//!   [`MetricsRegistry::record_event`].
//!
//! Both round-trip losslessly through the canonical writer: counters are
//! exact `u64` literals and the floating-point fields are written in
//! Rust's shortest round-trip form.

use mbaa_obs::{ConvergenceEvent, Event, Histogram, MetricsRegistry, RoundEvent, RunEndEvent};

use crate::ctx::Ctx;
use crate::error::SchemaError;
use crate::value::Json;

/// Format tag of the aggregated metrics document.
pub const METRICS_FORMAT: &str = "mbaa-metrics/1";

// ---------------------------------------------------------------------------
// The metrics document.
// ---------------------------------------------------------------------------

fn histogram_to_json(histogram: &Histogram) -> Json {
    Json::object(vec![
        (
            "bounds",
            Json::array(histogram.bounds().iter().map(|&b| Json::f64(b)).collect()),
        ),
        (
            "counts",
            Json::array(histogram.counts().iter().map(|&c| Json::u64(c)).collect()),
        ),
    ])
}

fn histogram_from(ctx: Ctx) -> Result<Histogram, SchemaError> {
    let mut obj = ctx.object()?;
    let bounds_ctx = obj.req("bounds")?;
    let bounds = bounds_ctx
        .ctx()
        .array()?
        .iter()
        .map(|item| item.ctx().f64())
        .collect::<Result<Vec<f64>, _>>()?;
    let counts_ctx = obj.req("counts")?;
    let counts = counts_ctx
        .ctx()
        .array()?
        .iter()
        .map(|item| item.ctx().u64())
        .collect::<Result<Vec<u64>, _>>()?;
    obj.finish()?;
    // `Histogram::from_parts` panics on malformed input; a committed file
    // must fail with a position instead.
    if bounds.is_empty() {
        return Err(ctx.err("histogram needs at least one bound"));
    }
    if !bounds.windows(2).all(|w| w[0] < w[1]) {
        return Err(ctx.err("histogram bounds must be strictly ascending"));
    }
    if bounds.len() != counts.len() {
        return Err(ctx.err(format!(
            "histogram has {} bounds but {} counts",
            bounds.len(),
            counts.len()
        )));
    }
    Ok(Histogram::from_parts(bounds, counts))
}

/// Serializes an aggregated registry as a canonical [`METRICS_FORMAT`]
/// document.
#[must_use]
pub fn metrics_to_json(metrics: &MetricsRegistry) -> Json {
    Json::object(vec![
        ("format", Json::str(METRICS_FORMAT)),
        (
            "counters",
            Json::object(vec![
                ("runs", Json::u64(metrics.runs)),
                ("converged", Json::u64(metrics.converged)),
                ("validity_failures", Json::u64(metrics.validity_failures)),
                ("rounds_total", Json::u64(metrics.rounds_total)),
                ("messages_delivered", Json::u64(metrics.messages_delivered)),
                ("omissions", Json::u64(metrics.omissions)),
                ("link_omissions", Json::u64(metrics.link_omissions)),
                ("corruptions", Json::u64(metrics.corruptions)),
            ]),
        ),
        (
            "histograms",
            Json::object(vec![
                (
                    "rounds_to_converge",
                    histogram_to_json(&metrics.rounds_to_converge),
                ),
                (
                    "contraction_ratio",
                    histogram_to_json(&metrics.contraction_ratio),
                ),
            ]),
        ),
    ])
}

/// Deserializes a [`METRICS_FORMAT`] document.
///
/// # Errors
///
/// Rejects unknown formats, unknown fields, and malformed histograms, with
/// the field path and position of the offending value.
pub fn metrics_from(ctx: Ctx) -> Result<MetricsRegistry, SchemaError> {
    let mut obj = ctx.object()?;
    let format_ctx = obj.req("format")?;
    let format = format_ctx.ctx().str()?;
    if format != METRICS_FORMAT {
        return Err(format_ctx.ctx().err(format!(
            "unsupported format {format:?} (this build reads {METRICS_FORMAT:?})"
        )));
    }

    let counters_ctx = obj.req("counters")?;
    let mut counters = counters_ctx.ctx().object()?;
    let mut metrics = MetricsRegistry::new();
    metrics.runs = counters.req("runs")?.ctx().u64()?;
    metrics.converged = counters.req("converged")?.ctx().u64()?;
    metrics.validity_failures = counters.req("validity_failures")?.ctx().u64()?;
    metrics.rounds_total = counters.req("rounds_total")?.ctx().u64()?;
    metrics.messages_delivered = counters.req("messages_delivered")?.ctx().u64()?;
    metrics.omissions = counters.req("omissions")?.ctx().u64()?;
    metrics.link_omissions = counters.req("link_omissions")?.ctx().u64()?;
    metrics.corruptions = counters.req("corruptions")?.ctx().u64()?;
    counters.finish()?;

    let histograms_ctx = obj.req("histograms")?;
    let mut histograms = histograms_ctx.ctx().object()?;
    metrics.rounds_to_converge = histogram_from(histograms.req("rounds_to_converge")?.ctx())?;
    metrics.contraction_ratio = histogram_from(histograms.req("contraction_ratio")?.ctx())?;
    histograms.finish()?;

    obj.finish()?;
    Ok(metrics)
}

// ---------------------------------------------------------------------------
// Event lines.
// ---------------------------------------------------------------------------

fn opt_f64(value: Option<f64>) -> Json {
    value.map_or_else(Json::null, Json::f64)
}

/// Serializes one telemetry event as a kind-tagged object — rendered via
/// [`crate::write_line`], one line of an `--events-out` JSONL stream.
#[must_use]
pub fn event_to_json(event: &Event) -> Json {
    match event {
        Event::Round(e) => Json::object(vec![
            ("kind", Json::str("round")),
            ("seed", Json::u64(e.seed)),
            ("round", Json::u64(e.round)),
            ("diameter", Json::f64(e.diameter)),
            ("contraction", Json::f64(e.contraction)),
            ("faulty", Json::u64(u64::from(e.faulty))),
            ("cured", Json::u64(u64::from(e.cured))),
            ("corrupted", Json::u64(u64::from(e.corrupted))),
            ("delivered", Json::u64(e.delivered)),
            ("omissions", Json::u64(e.omissions)),
            ("link_omissions", Json::u64(e.link_omissions)),
            ("msr_width", Json::u64(u64::from(e.msr_width))),
        ]),
        Event::Convergence(e) => Json::object(vec![
            ("kind", Json::str("convergence")),
            ("seed", Json::u64(e.seed)),
            ("rounds", Json::u64(e.rounds)),
            ("initial_diameter", Json::f64(e.initial_diameter)),
            ("final_diameter", Json::f64(e.final_diameter)),
        ]),
        Event::RunEnd(e) => Json::object(vec![
            ("kind", Json::str("run_end")),
            ("seed", Json::u64(e.seed)),
            ("reached_agreement", Json::bool(e.reached_agreement)),
            ("validity", Json::bool(e.validity)),
            ("rounds", Json::u64(e.rounds)),
            ("initial_diameter", Json::f64(e.initial_diameter)),
            ("final_diameter", Json::f64(e.final_diameter)),
            ("mean_contraction", opt_f64(e.mean_contraction)),
            ("messages_delivered", Json::u64(e.messages_delivered)),
            ("omissions", Json::u64(e.omissions)),
            ("link_omissions", Json::u64(e.link_omissions)),
            ("corruptions", Json::u64(e.corruptions)),
        ]),
    }
}

fn u32_field(obj: &mut crate::ctx::ObjCtx, name: &str) -> Result<u32, SchemaError> {
    let child = obj.req(name)?;
    let value = child.ctx().u64()?;
    u32::try_from(value).map_err(|_| child.ctx().err(format!("{name} {value} overflows a u32")))
}

/// Deserializes one kind-tagged event line.
///
/// # Errors
///
/// Rejects unknown kinds and unknown fields, with the field path and
/// position of the offending value.
pub fn event_from(ctx: Ctx) -> Result<Event, SchemaError> {
    let mut obj = ctx.object()?;
    let kind_ctx = obj.req("kind")?;
    let kind = kind_ctx.ctx().str()?;
    let event = match kind {
        "round" => Event::Round(RoundEvent {
            seed: obj.req("seed")?.ctx().u64()?,
            round: obj.req("round")?.ctx().u64()?,
            diameter: obj.req("diameter")?.ctx().f64()?,
            contraction: obj.req("contraction")?.ctx().f64()?,
            faulty: u32_field(&mut obj, "faulty")?,
            cured: u32_field(&mut obj, "cured")?,
            corrupted: u32_field(&mut obj, "corrupted")?,
            delivered: obj.req("delivered")?.ctx().u64()?,
            omissions: obj.req("omissions")?.ctx().u64()?,
            link_omissions: obj.req("link_omissions")?.ctx().u64()?,
            msr_width: u32_field(&mut obj, "msr_width")?,
        }),
        "convergence" => Event::Convergence(ConvergenceEvent {
            seed: obj.req("seed")?.ctx().u64()?,
            rounds: obj.req("rounds")?.ctx().u64()?,
            initial_diameter: obj.req("initial_diameter")?.ctx().f64()?,
            final_diameter: obj.req("final_diameter")?.ctx().f64()?,
        }),
        "run_end" => Event::RunEnd(RunEndEvent {
            seed: obj.req("seed")?.ctx().u64()?,
            reached_agreement: obj.req("reached_agreement")?.ctx().bool()?,
            validity: obj.req("validity")?.ctx().bool()?,
            rounds: obj.req("rounds")?.ctx().u64()?,
            initial_diameter: obj.req("initial_diameter")?.ctx().f64()?,
            final_diameter: obj.req("final_diameter")?.ctx().f64()?,
            mean_contraction: match obj.opt("mean_contraction") {
                Some(child) => Some(child.ctx().f64()?),
                None => None,
            },
            messages_delivered: obj.req("messages_delivered")?.ctx().u64()?,
            omissions: obj.req("omissions")?.ctx().u64()?,
            link_omissions: obj.req("link_omissions")?.ctx().u64()?,
            corruptions: obj.req("corruptions")?.ctx().u64()?,
        }),
        other => {
            return Err(kind_ctx.ctx().err(format!(
                "unknown event kind {other:?} (expected round, convergence, or run_end)"
            )))
        }
    };
    obj.finish()?;
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::write::{write_line, write_string};

    fn sample_registry() -> MetricsRegistry {
        let mut metrics = MetricsRegistry::new();
        metrics.runs = 5;
        metrics.converged = 4;
        metrics.validity_failures = 1;
        metrics.rounds_total = 37;
        metrics.messages_delivered = 1234;
        metrics.omissions = 56;
        metrics.link_omissions = 7;
        metrics.corruptions = 3;
        metrics.rounds_to_converge.record(6.0);
        metrics.rounds_to_converge.record(9.0);
        metrics.contraction_ratio.record(0.45);
        metrics.contraction_ratio.record(1.2);
        metrics
    }

    #[test]
    fn metrics_document_round_trips_canonically() {
        let metrics = sample_registry();
        let text = write_string(&metrics_to_json(&metrics));
        let parsed = parse(&text).unwrap();
        let back = metrics_from(Ctx::root(&parsed)).unwrap();
        assert_eq!(back, metrics);
        // Canonical writer: one registry, one rendering.
        assert_eq!(write_string(&metrics_to_json(&back)), text);
    }

    #[test]
    fn metrics_document_rejects_unknown_format_and_fields() {
        let mut json = metrics_to_json(&sample_registry());
        let text = write_string(&json).replace("mbaa-metrics/1", "mbaa-metrics/9");
        let parsed = parse(&text).unwrap();
        let err = metrics_from(Ctx::root(&parsed)).unwrap_err();
        assert!(err.message.contains("unsupported format"));

        json = metrics_to_json(&sample_registry());
        let text = write_string(&json).replacen("\"runs\"", "\"rnus\"", 1);
        let parsed = parse(&text).unwrap();
        let err = metrics_from(Ctx::root(&parsed)).unwrap_err();
        assert!(err.message.contains("missing required field"));
    }

    #[test]
    fn metrics_document_rejects_malformed_histograms() {
        let metrics = sample_registry();
        let text = write_string(&metrics_to_json(&metrics));
        // Drop one count so bounds/counts disagree.
        let mangled = text.replacen("\"counts\": [", "\"counts\": [99, ", 1);
        let parsed = parse(&mangled).unwrap();
        let err = metrics_from(Ctx::root(&parsed)).unwrap_err();
        assert!(err.message.contains("bounds"), "{}", err.message);
    }

    #[test]
    fn event_lines_round_trip() {
        let events = [
            Event::Round(RoundEvent {
                seed: 9,
                round: 3,
                diameter: 0.5,
                contraction: 0.25,
                faulty: 2,
                cured: 2,
                corrupted: 1,
                delivered: 81,
                omissions: 18,
                link_omissions: 2,
                msr_width: 5,
            }),
            Event::Convergence(ConvergenceEvent {
                seed: 9,
                rounds: 12,
                initial_diameter: 1.0,
                final_diameter: 0.0009,
            }),
            Event::RunEnd(RunEndEvent {
                seed: 9,
                reached_agreement: true,
                validity: true,
                rounds: 12,
                initial_diameter: 1.0,
                final_diameter: 0.0009,
                mean_contraction: Some(0.55),
                messages_delivered: 972,
                omissions: 216,
                link_omissions: 24,
                corruptions: 4,
            }),
            Event::RunEnd(RunEndEvent {
                seed: 10,
                reached_agreement: false,
                validity: false,
                rounds: 300,
                initial_diameter: 1.0,
                final_diameter: 0.7,
                mean_contraction: None,
                messages_delivered: 1,
                omissions: 0,
                link_omissions: 0,
                corruptions: 0,
            }),
        ];
        for event in &events {
            let line = write_line(&event_to_json(event));
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let parsed = parse(&line).unwrap();
            assert_eq!(event_from(Ctx::root(&parsed)).unwrap(), *event);
        }
    }

    #[test]
    fn event_lines_reject_unknown_kinds() {
        let parsed = parse(r#"{"kind": "rounds", "seed": 1}"#).unwrap();
        let err = event_from(Ctx::root(&parsed)).unwrap_err();
        assert!(err.message.contains("unknown event kind"));
    }

    #[test]
    fn folded_event_stream_equals_the_recorded_registry() {
        // Writing events out and folding the parsed lines back must give
        // the same registry the run recorded directly.
        let events = [
            Event::Round(RoundEvent {
                seed: 1,
                round: 0,
                diameter: 0.5,
                contraction: 0.5,
                faulty: 1,
                cured: 0,
                corrupted: 0,
                delivered: 49,
                omissions: 0,
                link_omissions: 0,
                msr_width: 3,
            }),
            Event::Convergence(ConvergenceEvent {
                seed: 1,
                rounds: 1,
                initial_diameter: 1.0,
                final_diameter: 0.5,
            }),
            Event::RunEnd(RunEndEvent {
                seed: 1,
                reached_agreement: true,
                validity: true,
                rounds: 1,
                initial_diameter: 1.0,
                final_diameter: 0.5,
                mean_contraction: Some(0.5),
                messages_delivered: 49,
                omissions: 0,
                link_omissions: 0,
                corruptions: 0,
            }),
        ];
        let mut direct = MetricsRegistry::new();
        let mut folded = MetricsRegistry::new();
        for event in &events {
            direct.record_event(event);
            let line = write_line(&event_to_json(event));
            let parsed = parse(&line).unwrap();
            folded.record_event(&event_from(Ctx::root(&parsed)).unwrap());
        }
        assert_eq!(direct, folded);
    }
}
