//! Typed errors with `line:col` anchors.
//!
//! Two layers of failure exist, and both point at the source:
//!
//! * [`ParseError`] — the text is not JSON (unbalanced braces, a bad
//!   escape, a duplicate key). Anchored at the offending character.
//! * [`SchemaError`] — the text is JSON but not a valid scenario document
//!   (wrong type, unknown field, out-of-range value). Anchored at the
//!   offending *value* and carrying the field path
//!   (`scenario.topology.k`).
//!
//! [`JsonError`] unifies them for callers that just want one error type.

use std::fmt;

use crate::value::Pos;

/// What went wrong while tokenizing/parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The input ended in the middle of a value.
    UnexpectedEof,
    /// An unexpected character; carries what the parser was expecting.
    UnexpectedChar {
        /// The character found.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// A malformed number literal.
    InvalidNumber,
    /// A `\x` escape JSON does not define.
    InvalidEscape(char),
    /// A `\u` escape that is not four hex digits or encodes an unpaired
    /// surrogate.
    InvalidUnicodeEscape,
    /// A string literal that never closes.
    UnterminatedString,
    /// A raw control character inside a string literal.
    ControlCharacter,
    /// The same key appears twice in one object.
    DuplicateKey(String),
    /// Arrays/objects nested beyond the depth limit.
    TooDeep,
    /// Valid JSON followed by trailing non-whitespace.
    TrailingCharacters,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof => f.write_str("unexpected end of input"),
            ParseErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            ParseErrorKind::InvalidNumber => f.write_str("malformed number literal"),
            ParseErrorKind::InvalidEscape(c) => write!(f, "invalid escape sequence \\{c}"),
            ParseErrorKind::InvalidUnicodeEscape => f.write_str("invalid \\u escape"),
            ParseErrorKind::UnterminatedString => f.write_str("unterminated string literal"),
            ParseErrorKind::ControlCharacter => {
                f.write_str("raw control character inside a string literal")
            }
            ParseErrorKind::DuplicateKey(key) => write!(f, "duplicate object key {key:?}"),
            ParseErrorKind::TooDeep => f.write_str("nesting exceeds the depth limit"),
            ParseErrorKind::TrailingCharacters => {
                f.write_str("trailing characters after the top-level value")
            }
        }
    }
}

/// A syntax error, anchored at the offending character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending character.
    pub line: u32,
    /// 1-based column of the offending character.
    pub col: u32,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// A semantic error: valid JSON that does not describe a valid document.
/// Anchored at the offending value and carrying the field path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Dotted field path from the document root (`scenario.topology.k`).
    pub path: String,
    /// Position of the offending value (`0:0` for programmatic nodes).
    pub pos: Pos,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos.is_synthetic() {
            write!(f, "{}: {}", self.path, self.message)
        } else {
            write!(
                f,
                "{}:{}: {}: {}",
                self.pos.line, self.pos.col, self.path, self.message
            )
        }
    }
}

impl std::error::Error for SchemaError {}

/// Any `mbaa-json` failure: a syntax error or a schema error.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The text is not JSON.
    Parse(ParseError),
    /// The JSON does not describe a valid document.
    Schema(SchemaError),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse(e) => write!(f, "parse error at {e}"),
            JsonError::Schema(e) => write!(f, "schema error at {e}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<ParseError> for JsonError {
    fn from(e: ParseError) -> Self {
        JsonError::Parse(e)
    }
}

impl From<SchemaError> for JsonError {
    fn from(e: SchemaError) -> Self {
        JsonError::Schema(e)
    }
}
