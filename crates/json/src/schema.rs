//! (De)serializers for the scenario vocabulary.
//!
//! Every function pair here is a lossless inverse: `X_from(ctx)` applied
//! to `X_to_json(&x)` reconstructs `x` exactly (asserted by the seeded
//! round-trip batteries in `tests/roundtrip.rs`), and parsing rejects
//! unknown fields, wrong types, and out-of-range values with
//! [`SchemaError`]s anchored at the offending `line:col`.
//!
//! The textual conventions (documented field by field in
//! `docs/scenario-format.md`):
//!
//! * enum variants are kebab-case strings (`"round-robin"`), or
//!   single-key objects when they carry data (`{"ring": {"k": 2}}`);
//! * optional knobs may be omitted (or `null`) and take the same defaults
//!   [`Scenario::new`] decides;
//! * seeds and other `u64`s must be plain unsigned integer literals, so
//!   they never round through a lossy `f64`.

use mbaa::prelude::*;
use mbaa::{Reduction, Selection};

use crate::ctx::Ctx;
use crate::error::SchemaError;
use crate::value::Json;

// ---------------------------------------------------------------------------
// Leaf enums.
// ---------------------------------------------------------------------------

/// Serializes a [`MobileModel`] (`"garay"` / `"bonnet"` / `"sasaki"` /
/// `"buhrman"`).
#[must_use]
pub fn model_to_json(model: MobileModel) -> Json {
    Json::str(match model {
        MobileModel::Garay => "garay",
        MobileModel::Bonnet => "bonnet",
        MobileModel::Sasaki => "sasaki",
        MobileModel::Buhrman => "buhrman",
    })
}

/// Parses a [`MobileModel`]; the paper's M1–M4 shorthands are accepted too.
pub fn model_from(ctx: Ctx<'_>) -> Result<MobileModel, SchemaError> {
    match ctx.str()? {
        "garay" | "M1" => Ok(MobileModel::Garay),
        "bonnet" | "M2" => Ok(MobileModel::Bonnet),
        "sasaki" | "M3" => Ok(MobileModel::Sasaki),
        "buhrman" | "M4" => Ok(MobileModel::Buhrman),
        other => Err(ctx.err(format!(
            "unknown model {other:?} (expected \"garay\", \"bonnet\", \"sasaki\", or \"buhrman\")"
        ))),
    }
}

/// Serializes a [`MobilityStrategy`] as its kebab-case name.
#[must_use]
pub fn mobility_to_json(mobility: MobilityStrategy) -> Json {
    Json::str(match mobility {
        MobilityStrategy::Stationary => "stationary",
        MobilityStrategy::RoundRobin => "round-robin",
        MobilityStrategy::Random => "random",
        MobilityStrategy::TargetExtremes => "target-extremes",
        MobilityStrategy::Sweep => "sweep",
        MobilityStrategy::TargetMedian => "target-median",
    })
}

/// Parses a [`MobilityStrategy`].
pub fn mobility_from(ctx: Ctx<'_>) -> Result<MobilityStrategy, SchemaError> {
    match ctx.str()? {
        "stationary" => Ok(MobilityStrategy::Stationary),
        "round-robin" => Ok(MobilityStrategy::RoundRobin),
        "random" => Ok(MobilityStrategy::Random),
        "target-extremes" => Ok(MobilityStrategy::TargetExtremes),
        "sweep" => Ok(MobilityStrategy::Sweep),
        "target-median" => Ok(MobilityStrategy::TargetMedian),
        other => Err(ctx.err(format!("unknown mobility strategy {other:?}"))),
    }
}

/// Serializes a [`DisconnectionPolicy`] (`"record"` / `"reject"`).
#[must_use]
pub fn disconnection_to_json(policy: DisconnectionPolicy) -> Json {
    Json::str(match policy {
        DisconnectionPolicy::Record => "record",
        DisconnectionPolicy::Reject => "reject",
    })
}

/// Parses a [`DisconnectionPolicy`].
pub fn disconnection_from(ctx: Ctx<'_>) -> Result<DisconnectionPolicy, SchemaError> {
    match ctx.str()? {
        "record" => Ok(DisconnectionPolicy::Record),
        "reject" => Ok(DisconnectionPolicy::Reject),
        other => Err(ctx.err(format!("unknown disconnection policy {other:?}"))),
    }
}

/// Serializes an [`Observe`] level (`"full"` / `"snapshots"` /
/// `"summary"`).
#[must_use]
pub fn observe_to_json(observe: Observe) -> Json {
    Json::str(match observe {
        Observe::Full => "full",
        Observe::Snapshots => "snapshots",
        Observe::Summary => "summary",
    })
}

/// Parses an [`Observe`] level.
pub fn observe_from(ctx: Ctx<'_>) -> Result<Observe, SchemaError> {
    match ctx.str()? {
        "full" => Ok(Observe::Full),
        "snapshots" => Ok(Observe::Snapshots),
        "summary" => Ok(Observe::Summary),
        other => Err(ctx.err(format!("unknown observe level {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Adversary corruption.
// ---------------------------------------------------------------------------

/// Serializes a [`CorruptionStrategy`]: dataless variants as strings,
/// parameterized ones as `{"variant": {fields}}`.
#[must_use]
pub fn corruption_to_json(corruption: CorruptionStrategy) -> Json {
    match corruption {
        CorruptionStrategy::Silent => Json::str("silent"),
        CorruptionStrategy::BoundaryDrag => Json::str("boundary-drag"),
        CorruptionStrategy::Stealth => Json::str("stealth"),
        CorruptionStrategy::MedianPull => Json::str("median-pull"),
        CorruptionStrategy::Fixed { value } => Json::object(vec![(
            "fixed",
            Json::object(vec![("value", Json::f64(value.get()))]),
        )]),
        CorruptionStrategy::OutOfRange { magnitude } => Json::object(vec![(
            "out-of-range",
            Json::object(vec![("magnitude", Json::f64(magnitude))]),
        )]),
        CorruptionStrategy::Split { magnitude } => Json::object(vec![(
            "split",
            Json::object(vec![("magnitude", Json::f64(magnitude))]),
        )]),
        CorruptionStrategy::RandomNoise { lo, hi } => Json::object(vec![(
            "random-noise",
            Json::object(vec![("lo", Json::f64(lo)), ("hi", Json::f64(hi))]),
        )]),
    }
}

/// Parses a [`CorruptionStrategy`].
pub fn corruption_from(ctx: Ctx<'_>) -> Result<CorruptionStrategy, SchemaError> {
    let (tag, payload) = ctx.variant()?;
    match (tag, payload) {
        ("silent", None) => Ok(CorruptionStrategy::Silent),
        ("boundary-drag", None) => Ok(CorruptionStrategy::BoundaryDrag),
        ("stealth", None) => Ok(CorruptionStrategy::Stealth),
        ("median-pull", None) => Ok(CorruptionStrategy::MedianPull),
        ("fixed", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let value_ctx = obj.req("value")?;
            let raw = value_ctx.ctx().f64()?;
            let value = Value::try_new(raw)
                .ok_or_else(|| value_ctx.ctx().err(format!("{raw} is not a finite value")))?;
            obj.finish()?;
            Ok(CorruptionStrategy::Fixed { value })
        }
        ("out-of-range", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let magnitude = obj.req("magnitude")?.ctx().f64()?;
            obj.finish()?;
            Ok(CorruptionStrategy::OutOfRange { magnitude })
        }
        ("split", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let magnitude = obj.req("magnitude")?.ctx().f64()?;
            obj.finish()?;
            Ok(CorruptionStrategy::Split { magnitude })
        }
        ("random-noise", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let lo = obj.req("lo")?.ctx().f64()?;
            let hi = obj.req("hi")?.ctx().f64()?;
            obj.finish()?;
            Ok(CorruptionStrategy::RandomNoise { lo, hi })
        }
        (other, _) => Err(ctx.err(format!("unknown corruption strategy {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Topology and schedules.
// ---------------------------------------------------------------------------

/// Serializes a [`Topology`]. A custom adjacency is written as its
/// universe size plus the undirected edge list (each edge once, `a < b`);
/// self-links are structural and never written.
#[must_use]
pub fn topology_to_json(topology: &Topology) -> Json {
    match topology {
        Topology::Complete => Json::str("complete"),
        Topology::Grid => Json::str("grid"),
        Topology::Ring { k } => {
            Json::object(vec![("ring", Json::object(vec![("k", Json::usize(*k))]))])
        }
        Topology::RandomRegular { degree } => Json::object(vec![(
            "random-regular",
            Json::object(vec![("degree", Json::usize(*degree))]),
        )]),
        Topology::Custom(adjacency) => {
            let n = adjacency.n();
            let mut edges = Vec::new();
            for a in 0..n {
                for b in adjacency.neighbors(ProcessId::new(a)) {
                    if b.index() > a {
                        edges.push(Json::array(vec![Json::usize(a), Json::usize(b.index())]));
                    }
                }
            }
            Json::object(vec![(
                "custom",
                Json::object(vec![("n", Json::usize(n)), ("edges", Json::array(edges))]),
            )])
        }
    }
}

/// Parses a [`Topology`].
pub fn topology_from(ctx: Ctx<'_>) -> Result<Topology, SchemaError> {
    let (tag, payload) = ctx.variant()?;
    match (tag, payload) {
        ("complete", None) => Ok(Topology::Complete),
        ("grid", None) => Ok(Topology::Grid),
        ("ring", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let k = obj.req("k")?.ctx().usize()?;
            obj.finish()?;
            Ok(Topology::Ring { k })
        }
        ("random-regular", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let degree = obj.req("degree")?.ctx().usize()?;
            obj.finish()?;
            Ok(Topology::RandomRegular { degree })
        }
        ("custom", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let n = obj.req("n")?.ctx().usize()?;
            let edges_ctx = obj.req("edges")?;
            let mut edges = Vec::new();
            for pair in edges_ctx.ctx().array()? {
                let endpoints = pair.ctx().array()?;
                if endpoints.len() != 2 {
                    return Err(pair.ctx().err(format!(
                        "an edge is a two-element [a, b] pair, found {} elements",
                        endpoints.len()
                    )));
                }
                edges.push((endpoints[0].ctx().usize()?, endpoints[1].ctx().usize()?));
            }
            let adjacency = Adjacency::from_edges(n, edges)
                .map_err(|e| edges_ctx.ctx().err(format!("invalid adjacency: {e}")))?;
            obj.finish()?;
            Ok(Topology::Custom(adjacency))
        }
        (other, _) => Err(ctx.err(format!("unknown topology {other:?}"))),
    }
}

/// Serializes a [`TopologySchedule`].
#[must_use]
pub fn schedule_to_json(schedule: &TopologySchedule) -> Json {
    match schedule {
        TopologySchedule::Static(topology) => {
            Json::object(vec![("static", topology_to_json(topology))])
        }
        TopologySchedule::Periodic { phases } => Json::object(vec![(
            "periodic",
            Json::object(vec![(
                "phases",
                Json::array(phases.iter().map(topology_to_json).collect()),
            )]),
        )]),
        TopologySchedule::SeededChurn { base, flip_rate } => Json::object(vec![(
            "churn",
            Json::object(vec![
                ("base", topology_to_json(base)),
                ("flip_rate", Json::f64(*flip_rate)),
            ]),
        )]),
    }
}

/// Parses a [`TopologySchedule`].
pub fn schedule_from(ctx: Ctx<'_>) -> Result<TopologySchedule, SchemaError> {
    let (tag, payload) = ctx.variant()?;
    match (tag, payload) {
        ("static", Some(child)) => Ok(TopologySchedule::Static(topology_from(child.ctx())?)),
        ("periodic", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let phases = obj
                .req("phases")?
                .ctx()
                .array()?
                .iter()
                .map(|phase| topology_from(phase.ctx()))
                .collect::<Result<Vec<_>, _>>()?;
            obj.finish()?;
            Ok(TopologySchedule::Periodic { phases })
        }
        ("churn", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let base = topology_from(obj.req("base")?.ctx())?;
            let flip_rate = obj.req("flip_rate")?.ctx().f64()?;
            obj.finish()?;
            Ok(TopologySchedule::SeededChurn { base, flip_rate })
        }
        (other, _) => Err(ctx.err(format!("unknown topology schedule {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Link faults.
// ---------------------------------------------------------------------------

/// Serializes a [`LinkFaultPlan`] as its ordered rule list. Wildcarded
/// endpoints and unset behaviours are written as explicit `null`s, so a
/// committed file reads unambiguously.
#[must_use]
pub fn link_faults_to_json(plan: &LinkFaultPlan) -> Json {
    Json::array(
        plan.rules()
            .map(|rule| {
                Json::object(vec![
                    ("from", opt_usize_to_json(rule.from)),
                    ("to", opt_usize_to_json(rule.to)),
                    ("omit", rule.omit.map_or_else(Json::null, Json::f64)),
                    ("delay", opt_usize_to_json(rule.delay)),
                ])
            })
            .collect(),
    )
}

fn opt_usize_to_json(value: Option<usize>) -> Json {
    value.map_or_else(Json::null, Json::usize)
}

/// Parses a [`LinkFaultPlan`] from its rule list.
pub fn link_faults_from(ctx: Ctx<'_>) -> Result<LinkFaultPlan, SchemaError> {
    let mut plan = LinkFaultPlan::new();
    for rule_ctx in ctx.array()? {
        let mut obj = rule_ctx.ctx().object()?;
        let rule = LinkFaultRule {
            from: match obj.opt("from") {
                Some(c) => Some(c.ctx().usize()?),
                None => None,
            },
            to: match obj.opt("to") {
                Some(c) => Some(c.ctx().usize()?),
                None => None,
            },
            omit: match obj.opt("omit") {
                Some(c) => Some(c.ctx().f64()?),
                None => None,
            },
            delay: match obj.opt("delay") {
                Some(c) => Some(c.ctx().usize()?),
                None => None,
            },
        };
        if rule.omit.is_none() && rule.delay.is_none() {
            return Err(rule_ctx
                .ctx()
                .err("a link-fault rule must set \"omit\" and/or \"delay\""));
        }
        obj.finish()?;
        plan = plan.with_rule(rule);
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// MSR functions.
// ---------------------------------------------------------------------------

/// Serializes an [`MsrFunction`] as its reduction/selection pair.
#[must_use]
pub fn function_to_json(function: &MsrFunction) -> Json {
    let reduction = match function.reduction() {
        Reduction::Identity => Json::str("identity"),
        Reduction::Trim { tau } => Json::object(vec![(
            "trim",
            Json::object(vec![("tau", Json::usize(tau))]),
        )]),
    };
    let selection = match function.selection() {
        Selection::All => Json::str("all"),
        Selection::Extremes => Json::str("extremes"),
        Selection::MedianOnly => Json::str("median-only"),
        Selection::EveryKth { k } => Json::object(vec![(
            "every-kth",
            Json::object(vec![("k", Json::usize(k))]),
        )]),
    };
    Json::object(vec![("reduction", reduction), ("selection", selection)])
}

/// Parses an [`MsrFunction`].
pub fn function_from(ctx: Ctx<'_>) -> Result<MsrFunction, SchemaError> {
    let mut obj = ctx.object()?;
    let reduction_ctx = obj.req("reduction")?;
    let reduction = {
        let (tag, payload) = reduction_ctx.ctx().variant()?;
        match (tag, payload) {
            ("identity", None) => Reduction::Identity,
            ("trim", Some(child)) => {
                let mut trim = child.ctx().object()?;
                let tau = trim.req("tau")?.ctx().usize()?;
                trim.finish()?;
                Reduction::Trim { tau }
            }
            (other, _) => {
                return Err(reduction_ctx
                    .ctx()
                    .err(format!("unknown reduction {other:?}")))
            }
        }
    };
    let selection_ctx = obj.req("selection")?;
    let selection = {
        let (tag, payload) = selection_ctx.ctx().variant()?;
        match (tag, payload) {
            ("all", None) => Selection::All,
            ("extremes", None) => Selection::Extremes,
            ("median-only", None) => Selection::MedianOnly,
            ("every-kth", Some(child)) => {
                let mut every = child.ctx().object()?;
                let k = every.req("k")?.ctx().usize()?;
                every.finish()?;
                Selection::EveryKth { k }
            }
            (other, _) => {
                return Err(selection_ctx
                    .ctx()
                    .err(format!("unknown selection {other:?}")))
            }
        }
    };
    obj.finish()?;
    Ok(MsrFunction::new(reduction, selection))
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

/// Serializes a [`Workload`].
#[must_use]
pub fn workload_to_json(workload: &Workload) -> Json {
    match workload {
        Workload::UniformSpread { lo, hi } => Json::object(vec![(
            "uniform-spread",
            Json::object(vec![("lo", Json::f64(*lo)), ("hi", Json::f64(*hi))]),
        )]),
        Workload::RandomUniform { lo, hi } => Json::object(vec![(
            "random-uniform",
            Json::object(vec![("lo", Json::f64(*lo)), ("hi", Json::f64(*hi))]),
        )]),
        Workload::Clustered { centers, jitter } => Json::object(vec![(
            "clustered",
            Json::object(vec![
                (
                    "centers",
                    Json::array(centers.iter().map(|c| Json::f64(*c)).collect()),
                ),
                ("jitter", Json::f64(*jitter)),
            ]),
        )]),
        Workload::Fixed { values } => Json::object(vec![(
            "fixed",
            Json::object(vec![(
                "values",
                Json::array(values.iter().map(|v| Json::f64(v.get())).collect()),
            )]),
        )]),
    }
}

/// Parses a [`Workload`].
pub fn workload_from(ctx: Ctx<'_>) -> Result<Workload, SchemaError> {
    let (tag, payload) = ctx.variant()?;
    match (tag, payload) {
        ("uniform-spread", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let lo = obj.req("lo")?.ctx().f64()?;
            let hi = obj.req("hi")?.ctx().f64()?;
            obj.finish()?;
            Ok(Workload::UniformSpread { lo, hi })
        }
        ("random-uniform", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let lo = obj.req("lo")?.ctx().f64()?;
            let hi = obj.req("hi")?.ctx().f64()?;
            obj.finish()?;
            Ok(Workload::RandomUniform { lo, hi })
        }
        ("clustered", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let centers = obj
                .req("centers")?
                .ctx()
                .array()?
                .iter()
                .map(|c| c.ctx().f64())
                .collect::<Result<Vec<_>, _>>()?;
            let jitter = obj.req("jitter")?.ctx().f64()?;
            obj.finish()?;
            Ok(Workload::Clustered { centers, jitter })
        }
        ("fixed", Some(child)) => {
            let mut obj = child.ctx().object()?;
            let values_ctx = obj.req("values")?;
            let mut values = Vec::new();
            for v in values_ctx.ctx().array()? {
                let raw = v.ctx().f64()?;
                values.push(
                    Value::try_new(raw)
                        .ok_or_else(|| v.ctx().err(format!("{raw} is not a finite value")))?,
                );
            }
            obj.finish()?;
            Ok(Workload::Fixed { values })
        }
        (other, _) => Err(ctx.err(format!("unknown workload {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Scenario and ExperimentConfig.
// ---------------------------------------------------------------------------

/// Serializes a [`Scenario`] in canonical form: every non-optional knob is
/// written explicitly, optional knobs (`schedule`, `function`) only when
/// set.
#[must_use]
pub fn scenario_to_json(scenario: &Scenario) -> Json {
    let mut fields = vec![
        ("model", model_to_json(scenario.model)),
        ("n", Json::usize(scenario.n)),
        ("f", Json::usize(scenario.f)),
        ("epsilon", Json::f64(scenario.epsilon)),
        ("max_rounds", Json::usize(scenario.max_rounds)),
        ("mobility", mobility_to_json(scenario.mobility)),
        ("corruption", corruption_to_json(scenario.corruption)),
        ("topology", topology_to_json(&scenario.topology)),
    ];
    if let Some(schedule) = &scenario.schedule {
        fields.push(("schedule", schedule_to_json(schedule)));
    }
    fields.push(("link_faults", link_faults_to_json(&scenario.link_faults)));
    fields.push((
        "disconnection",
        disconnection_to_json(scenario.disconnection),
    ));
    if let Some(function) = &scenario.function {
        fields.push(("function", function_to_json(function)));
    }
    fields.push(("workload", workload_to_json(&scenario.workload)));
    fields.push((
        "allow_bound_violation",
        Json::bool(scenario.allow_bound_violation),
    ));
    fields.push(("observe", observe_to_json(scenario.observe)));
    Json::object(fields)
}

/// Parses a [`Scenario`]. Only `model`, `n`, and `f` are required; every
/// other field defaults exactly as [`Scenario::new`] does, so a minimal
/// committed file stays minimal.
pub fn scenario_from(ctx: Ctx<'_>) -> Result<Scenario, SchemaError> {
    let mut obj = ctx.object()?;
    let model = model_from(obj.req("model")?.ctx())?;
    let n = obj.req("n")?.ctx().usize()?;
    let f = obj.req("f")?.ctx().usize()?;
    let mut scenario = Scenario::new(model, n, f);
    if let Some(c) = obj.opt("epsilon") {
        scenario.epsilon = c.ctx().f64()?;
    }
    if let Some(c) = obj.opt("max_rounds") {
        scenario.max_rounds = c.ctx().usize()?;
    }
    if let Some(c) = obj.opt("mobility") {
        scenario.mobility = mobility_from(c.ctx())?;
    }
    if let Some(c) = obj.opt("corruption") {
        scenario.corruption = corruption_from(c.ctx())?;
    }
    if let Some(c) = obj.opt("topology") {
        scenario.topology = topology_from(c.ctx())?;
    }
    if let Some(c) = obj.opt("schedule") {
        scenario.schedule = Some(schedule_from(c.ctx())?);
    }
    if let Some(c) = obj.opt("link_faults") {
        scenario.link_faults = link_faults_from(c.ctx())?;
    }
    if let Some(c) = obj.opt("disconnection") {
        scenario.disconnection = disconnection_from(c.ctx())?;
    }
    if let Some(c) = obj.opt("function") {
        scenario.function = Some(function_from(c.ctx())?);
    }
    if let Some(c) = obj.opt("workload") {
        scenario.workload = workload_from(c.ctx())?;
    }
    if let Some(c) = obj.opt("allow_bound_violation") {
        scenario.allow_bound_violation = c.ctx().bool()?;
    }
    if let Some(c) = obj.opt("observe") {
        scenario.observe = observe_from(c.ctx())?;
    }
    obj.finish()?;
    Ok(scenario)
}

/// Serializes an [`ExperimentConfig`] — the lowered batch form — as its
/// scenario description plus the explicit seed list.
#[must_use]
pub fn experiment_to_json(config: &ExperimentConfig) -> Json {
    let scenario = Scenario {
        model: config.model,
        n: config.n,
        f: config.f,
        epsilon: config.epsilon,
        max_rounds: config.max_rounds,
        mobility: config.mobility,
        corruption: config.corruption,
        topology: config.topology.clone(),
        schedule: config.schedule.clone(),
        link_faults: config.link_faults.clone(),
        disconnection: config.disconnection,
        function: config.function,
        workload: config.workload.clone(),
        allow_bound_violation: config.allow_bound_violation,
        observe: config.observe,
    };
    Json::object(vec![
        ("scenario", scenario_to_json(&scenario)),
        (
            "seeds",
            Json::array(config.seeds.iter().map(|&s| Json::u64(s)).collect()),
        ),
    ])
}

/// Parses an [`ExperimentConfig`].
pub fn experiment_from(ctx: Ctx<'_>) -> Result<ExperimentConfig, SchemaError> {
    let mut obj = ctx.object()?;
    let scenario = scenario_from(obj.req("scenario")?.ctx())?;
    let seeds = obj
        .req("seeds")?
        .ctx()
        .array()?
        .iter()
        .map(|s| s.ctx().u64())
        .collect::<Result<Vec<_>, _>>()?;
    obj.finish()?;
    Ok(scenario.to_experiment(seeds))
}

// ---------------------------------------------------------------------------
// Run summaries (checkpoint/report rows).
// ---------------------------------------------------------------------------

/// Serializes a [`RunSummary`] — the per-seed row checkpoint chunks and
/// merged reports are made of.
#[must_use]
pub fn run_summary_to_json(summary: &RunSummary) -> Json {
    Json::object(vec![
        ("seed", Json::u64(summary.seed)),
        ("reached_agreement", Json::bool(summary.reached_agreement)),
        ("validity", Json::bool(summary.validity)),
        ("rounds", Json::usize(summary.rounds)),
        ("final_diameter", Json::f64(summary.final_diameter)),
        ("initial_diameter", Json::f64(summary.initial_diameter)),
        (
            "mean_contraction",
            summary.mean_contraction.map_or_else(Json::null, Json::f64),
        ),
    ])
}

/// Parses a [`RunSummary`].
pub fn run_summary_from(ctx: Ctx<'_>) -> Result<RunSummary, SchemaError> {
    let mut obj = ctx.object()?;
    let summary = RunSummary {
        seed: obj.req("seed")?.ctx().u64()?,
        reached_agreement: obj.req("reached_agreement")?.ctx().bool()?,
        validity: obj.req("validity")?.ctx().bool()?,
        rounds: obj.req("rounds")?.ctx().usize()?,
        final_diameter: obj.req("final_diameter")?.ctx().f64()?,
        initial_diameter: obj.req("initial_diameter")?.ctx().f64()?,
        mean_contraction: match obj.opt("mean_contraction") {
            Some(c) => Some(c.ctx().f64()?),
            None => None,
        },
    };
    obj.finish()?;
    Ok(summary)
}
