//! Typed, path-tracking accessors over a parsed [`Json`] tree.
//!
//! The schema layer never matches on [`Node`] directly: it walks the tree
//! through [`Ctx`] (one value plus the dotted path that led to it) and
//! [`ObjCtx`] (one object with required/optional field access and
//! unknown-field rejection), so every mismatch becomes a [`SchemaError`]
//! carrying both the field path and the `line:col` of the offending value.

use crate::error::SchemaError;
use crate::value::{Json, Key, Node};

/// Joins a parent path and a field name; the document root contributes no
/// prefix, so top-level fields read as plain `name`.
fn join(path: &str, name: &str) -> String {
    if path.is_empty() {
        name.to_string()
    } else {
        format!("{path}.{name}")
    }
}

/// The user-facing form of a path: the empty root reads as `<document>`.
fn display_path(path: &str) -> &str {
    if path.is_empty() {
        "<document>"
    } else {
        path
    }
}

/// One JSON value plus the dotted path from the document root.
#[derive(Debug, Clone, Copy)]
pub struct Ctx<'a> {
    json: &'a Json,
    path: &'a str,
}

/// An owned path segment stack is avoided by formatting lazily: children
/// allocate their joined path only when they are actually visited.
pub struct ChildCtx<'a> {
    json: &'a Json,
    path: String,
}

impl<'a> ChildCtx<'a> {
    /// Borrows this owned child as a [`Ctx`].
    #[must_use]
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx {
            json: self.json,
            path: &self.path,
        }
    }
}

impl<'a> Ctx<'a> {
    /// The root context of a parsed document.
    #[must_use]
    pub fn root(json: &'a Json) -> Ctx<'a> {
        Ctx { json, path: "" }
    }

    /// The underlying value.
    #[must_use]
    pub fn json(&self) -> &'a Json {
        self.json
    }

    fn display_path(&self) -> &str {
        display_path(self.path)
    }

    /// A schema error anchored at this value.
    #[must_use]
    pub fn err(&self, message: impl Into<String>) -> SchemaError {
        SchemaError {
            path: self.display_path().to_string(),
            pos: self.json.pos,
            message: message.into(),
        }
    }

    fn expected(&self, what: &str) -> SchemaError {
        self.err(format!("expected {what}, found {}", self.json.type_name()))
    }

    /// Returns `true` when the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self.json.node, Node::Null)
    }

    /// Reads a boolean.
    pub fn bool(&self) -> Result<bool, SchemaError> {
        match self.json.node {
            Node::Bool(b) => Ok(b),
            _ => Err(self.expected("a boolean")),
        }
    }

    /// Reads a finite `f64`.
    pub fn f64(&self) -> Result<f64, SchemaError> {
        match &self.json.node {
            Node::Number(text) => {
                let value: f64 = text
                    .parse()
                    .map_err(|_| self.err(format!("unreadable number {text:?}")))?;
                if !value.is_finite() {
                    return Err(self.err(format!("number {text} overflows a finite f64")));
                }
                Ok(value)
            }
            _ => Err(self.expected("a number")),
        }
    }

    /// Reads an exact `u64`: the literal must be a plain unsigned integer
    /// (no sign, fraction, or exponent), so 64-bit seeds never pass
    /// through a lossy float.
    pub fn u64(&self) -> Result<u64, SchemaError> {
        match &self.json.node {
            Node::Number(text) => text
                .parse::<u64>()
                .map_err(|_| self.err(format!("expected an unsigned integer, found {text}"))),
            _ => Err(self.expected("an unsigned integer")),
        }
    }

    /// Reads an exact `usize`.
    pub fn usize(&self) -> Result<usize, SchemaError> {
        match &self.json.node {
            Node::Number(text) => text
                .parse::<usize>()
                .map_err(|_| self.err(format!("expected an unsigned integer, found {text}"))),
            _ => Err(self.expected("an unsigned integer")),
        }
    }

    /// Reads a string.
    pub fn str(&self) -> Result<&'a str, SchemaError> {
        match &self.json.node {
            Node::String(text) => Ok(text),
            _ => Err(self.expected("a string")),
        }
    }

    /// Reads an array, yielding one indexed child context per element.
    pub fn array(&self) -> Result<Vec<ChildCtx<'a>>, SchemaError> {
        match &self.json.node {
            Node::Array(items) => Ok(items
                .iter()
                .enumerate()
                .map(|(i, item)| ChildCtx {
                    json: item,
                    path: format!("{}[{i}]", self.path),
                })
                .collect()),
            _ => Err(self.expected("an array")),
        }
    }

    /// Reads an object.
    pub fn object(&self) -> Result<ObjCtx<'a>, SchemaError> {
        match &self.json.node {
            Node::Object(fields) => Ok(ObjCtx {
                fields,
                path: self.path.to_string(),
                origin: self.err("object"),
                used: vec![false; fields.len()],
            }),
            _ => Err(self.expected("an object")),
        }
    }

    /// Reads an enum-shaped value: either a bare string (`"complete"`,
    /// returning the tag with no payload) or a single-key object
    /// (`{"ring": {...}}`, returning the key and its value).
    pub fn variant(&self) -> Result<(&'a str, Option<ChildCtx<'a>>), SchemaError> {
        match &self.json.node {
            Node::String(tag) => Ok((tag, None)),
            Node::Object(fields) => {
                if fields.len() != 1 {
                    return Err(self.err(format!(
                        "expected a single-variant object, found {} keys",
                        fields.len()
                    )));
                }
                let (key, value) = &fields[0];
                Ok((
                    &key.name,
                    Some(ChildCtx {
                        json: value,
                        path: join(self.path, &key.name),
                    }),
                ))
            }
            _ => Err(self.expected("a variant (string or single-key object)")),
        }
    }
}

/// One object with consumed-field tracking: every read marks its field,
/// and [`ObjCtx::finish`] rejects whatever was never consumed, so typos in
/// committed scenario files fail loudly instead of silently falling back
/// to a default.
pub struct ObjCtx<'a> {
    fields: &'a [(Key, Json)],
    path: String,
    origin: SchemaError,
    used: Vec<bool>,
}

impl<'a> ObjCtx<'a> {
    fn lookup(&mut self, name: &str) -> Option<ChildCtx<'a>> {
        let idx = self.fields.iter().position(|(k, _)| k.name == name)?;
        self.used[idx] = true;
        Some(ChildCtx {
            json: &self.fields[idx].1,
            path: join(&self.path, name),
        })
    }

    /// Reads a required field.
    pub fn req(&mut self, name: &str) -> Result<ChildCtx<'a>, SchemaError> {
        self.lookup(name).ok_or_else(|| SchemaError {
            path: display_path(&self.path).to_string(),
            pos: self.origin.pos,
            message: format!("missing required field {name:?}"),
        })
    }

    /// Reads an optional field; an explicit `null` reads as absent.
    pub fn opt(&mut self, name: &str) -> Option<ChildCtx<'a>> {
        self.lookup(name).filter(|c| !c.ctx().is_null())
    }

    /// Rejects any field no `req`/`opt` call consumed.
    pub fn finish(self) -> Result<(), SchemaError> {
        for (idx, (key, _)) in self.fields.iter().enumerate() {
            if !self.used[idx] {
                return Err(SchemaError {
                    path: join(&self.path, &key.name),
                    pos: key.pos,
                    message: format!("unknown field {:?}", key.name),
                });
            }
        }
        Ok(())
    }
}
