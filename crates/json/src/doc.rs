//! The committed scenario-file document (`*.scenario.json`).
//!
//! A [`ScenarioFile`] wraps one [`Scenario`] with the metadata the CLI and
//! the reproduction gallery need: a stable name, the paper table/figure it
//! reproduces, the exact seed batch, and (optionally) one sweep axis. The
//! format string `"mbaa-scenario/1"` is required at the top of every file
//! so future revisions can evolve without guessing.
//!
//! ```
//! use mbaa_json::ScenarioFile;
//!
//! let text = r#"{
//!   "format": "mbaa-scenario/1",
//!   "name": "demo",
//!   "scenario": {"model": "garay", "n": 9, "f": 2},
//!   "seeds": {"start": 0, "count": 3}
//! }"#;
//! let file = ScenarioFile::parse_str(text)?;
//! assert_eq!(file.seeds.seeds(), vec![0, 1, 2]);
//! assert_eq!(file.points().len(), 1);
//! // Canonical rendering is stable under a reparse.
//! let canon = file.to_json_string();
//! assert_eq!(ScenarioFile::parse_str(&canon)?.to_json_string(), canon);
//! # Ok::<(), mbaa_json::JsonError>(())
//! ```

use mbaa::prelude::*;

use crate::ctx::Ctx;
use crate::error::{JsonError, SchemaError};
use crate::schema::{scenario_from, scenario_to_json, topology_from, topology_to_json};
use crate::value::Json;
use crate::write::write_string;

/// The format tag every scenario file must carry.
pub const FORMAT: &str = "mbaa-scenario/1";

/// How a file names its seed batch: an explicit list or a contiguous
/// range. Both expand to the same `Vec<u64>`; the range form keeps large
/// committed batches readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedSpec {
    /// An explicit seed list, run in the given order.
    List(Vec<u64>),
    /// The contiguous batch `start, start+1, …, start+count-1`.
    Range {
        /// First seed of the batch.
        start: u64,
        /// Number of seeds.
        count: u64,
    },
}

impl SeedSpec {
    /// Expands to the explicit seed list.
    #[must_use]
    pub fn seeds(&self) -> Vec<u64> {
        match self {
            SeedSpec::List(seeds) => seeds.clone(),
            SeedSpec::Range { start, count } => (0..*count).map(|i| start + i).collect(),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            SeedSpec::List(seeds) => Json::array(seeds.iter().map(|&s| Json::u64(s)).collect()),
            SeedSpec::Range { start, count } => Json::object(vec![
                ("start", Json::u64(*start)),
                ("count", Json::u64(*count)),
            ]),
        }
    }

    fn from_ctx(ctx: Ctx<'_>) -> Result<Self, SchemaError> {
        if let Ok(items) = ctx.array() {
            let seeds = items
                .iter()
                .map(|s| s.ctx().u64())
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(SeedSpec::List(seeds));
        }
        let mut obj = ctx.object()?;
        let start = obj.req("start")?.ctx().u64()?;
        let count = obj.req("count")?.ctx().u64()?;
        obj.finish()?;
        if start.checked_add(count).is_none() {
            return Err(ctx.err("seed range overflows u64"));
        }
        Ok(SeedSpec::Range { start, count })
    }
}

/// One sweep axis over the base scenario. Each variant maps onto the
/// matching [`Scenario`] sweep constructor, so a committed file and the
/// equivalent example code expand to identical point lists.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// [`Scenario::sweep_n`]: `n` from the model's minimum up to
    /// minimum + `extra`.
    N {
        /// How far past the minimum to sweep.
        extra: usize,
    },
    /// [`Scenario::sweep_f`]: one point per fault budget, holding the
    /// margin above the bound.
    F {
        /// Fault budgets to sweep.
        values: Vec<usize>,
    },
    /// [`Scenario::sweep_connectivity`]: one point per topology.
    Connectivity {
        /// Topologies to sweep.
        topologies: Vec<Topology>,
    },
    /// [`Scenario::sweep_degrees`]: one point per target degree.
    Degrees {
        /// Degrees to sweep.
        degrees: Vec<usize>,
    },
    /// [`Scenario::sweep_churn`]: one point per edge flip rate.
    Churn {
        /// Per-round edge flip rates to sweep.
        flip_rates: Vec<f64>,
    },
}

impl SweepSpec {
    /// Expands the axis against `base` into labelled sweep points, one
    /// `(label, scenario)` pair per point, in axis order.
    #[must_use]
    pub fn points(&self, base: &Scenario) -> Vec<(String, Scenario)> {
        let sweep = match self {
            SweepSpec::N { extra } => base.sweep_n(*extra),
            SweepSpec::F { values } => base.sweep_f(values.iter().copied()),
            SweepSpec::Connectivity { topologies } => {
                base.sweep_connectivity(topologies.iter().cloned())
            }
            SweepSpec::Degrees { degrees } => base.sweep_degrees(degrees.iter().copied()),
            SweepSpec::Churn { flip_rates } => base.sweep_churn(flip_rates.iter().copied()),
        };
        sweep
            .points()
            .iter()
            .map(|point| (self.label(point), point.clone()))
            .collect()
    }

    fn label(&self, point: &Scenario) -> String {
        match self {
            SweepSpec::N { .. } => format!("n={}", point.n),
            SweepSpec::F { .. } => format!("f={}", point.f),
            SweepSpec::Connectivity { .. } | SweepSpec::Degrees { .. } => {
                format!("topology={}", topology_label(&point.topology))
            }
            SweepSpec::Churn { .. } => match &point.schedule {
                Some(TopologySchedule::SeededChurn { flip_rate, .. }) => {
                    format!("flip_rate={flip_rate}")
                }
                _ => "flip_rate=?".to_string(),
            },
        }
    }

    fn to_json(&self) -> Json {
        match self {
            SweepSpec::N { extra } => Json::object(vec![(
                "n",
                Json::object(vec![("extra", Json::usize(*extra))]),
            )]),
            SweepSpec::F { values } => Json::object(vec![(
                "f",
                Json::object(vec![(
                    "values",
                    Json::array(values.iter().map(|&v| Json::usize(v)).collect()),
                )]),
            )]),
            SweepSpec::Connectivity { topologies } => Json::object(vec![(
                "connectivity",
                Json::object(vec![(
                    "topologies",
                    Json::array(topologies.iter().map(topology_to_json).collect()),
                )]),
            )]),
            SweepSpec::Degrees { degrees } => Json::object(vec![(
                "degrees",
                Json::object(vec![(
                    "degrees",
                    Json::array(degrees.iter().map(|&d| Json::usize(d)).collect()),
                )]),
            )]),
            SweepSpec::Churn { flip_rates } => Json::object(vec![(
                "churn",
                Json::object(vec![(
                    "flip_rates",
                    Json::array(flip_rates.iter().map(|&r| Json::f64(r)).collect()),
                )]),
            )]),
        }
    }

    fn from_ctx(ctx: Ctx<'_>) -> Result<Self, SchemaError> {
        let (tag, payload) = ctx.variant()?;
        match (tag, payload) {
            ("n", Some(child)) => {
                let mut obj = child.ctx().object()?;
                let extra = obj.req("extra")?.ctx().usize()?;
                obj.finish()?;
                Ok(SweepSpec::N { extra })
            }
            ("f", Some(child)) => {
                let mut obj = child.ctx().object()?;
                let values = obj
                    .req("values")?
                    .ctx()
                    .array()?
                    .iter()
                    .map(|v| v.ctx().usize())
                    .collect::<Result<Vec<_>, _>>()?;
                obj.finish()?;
                Ok(SweepSpec::F { values })
            }
            ("connectivity", Some(child)) => {
                let mut obj = child.ctx().object()?;
                let topologies = obj
                    .req("topologies")?
                    .ctx()
                    .array()?
                    .iter()
                    .map(|t| topology_from(t.ctx()))
                    .collect::<Result<Vec<_>, _>>()?;
                obj.finish()?;
                Ok(SweepSpec::Connectivity { topologies })
            }
            ("degrees", Some(child)) => {
                let mut obj = child.ctx().object()?;
                let degrees = obj
                    .req("degrees")?
                    .ctx()
                    .array()?
                    .iter()
                    .map(|d| d.ctx().usize())
                    .collect::<Result<Vec<_>, _>>()?;
                obj.finish()?;
                Ok(SweepSpec::Degrees { degrees })
            }
            ("churn", Some(child)) => {
                let mut obj = child.ctx().object()?;
                let flip_rates = obj
                    .req("flip_rates")?
                    .ctx()
                    .array()?
                    .iter()
                    .map(|r| r.ctx().f64())
                    .collect::<Result<Vec<_>, _>>()?;
                obj.finish()?;
                Ok(SweepSpec::Churn { flip_rates })
            }
            (other, _) => Err(ctx.err(format!(
                "unknown sweep axis {other:?} (expected \"n\", \"f\", \"connectivity\", \
                 \"degrees\", or \"churn\")"
            ))),
        }
    }
}

/// A human-readable label for one topology (used in sweep point labels
/// and CLI tables).
#[must_use]
pub fn topology_label(topology: &Topology) -> String {
    match topology {
        Topology::Complete => "complete".to_string(),
        Topology::Grid => "grid".to_string(),
        Topology::Ring { k } => format!("ring(k={k})"),
        Topology::RandomRegular { degree } => format!("random-regular(degree={degree})"),
        Topology::Custom(adjacency) => format!("custom(n={})", adjacency.n()),
    }
}

/// One committed `*.scenario.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// Stable identifier; the gallery uses it as the scenario's name.
    pub name: String,
    /// Optional one-line human title.
    pub title: Option<String>,
    /// Optional pointer to what the file reproduces ("Table 1 of the
    /// paper", "examples/quickstart.rs", …).
    pub reproduces: Option<String>,
    /// The base scenario.
    pub scenario: Scenario,
    /// The seed batch.
    pub seeds: SeedSpec,
    /// At most one sweep axis; `None` means a single-point run.
    pub sweep: Option<SweepSpec>,
}

impl ScenarioFile {
    /// A single-point file with the given name, scenario, and seeds.
    #[must_use]
    pub fn new(name: impl Into<String>, scenario: Scenario, seeds: SeedSpec) -> Self {
        ScenarioFile {
            name: name.into(),
            title: None,
            reproduces: None,
            scenario,
            seeds,
            sweep: None,
        }
    }

    /// The labelled sweep points this file expands to: one point for a
    /// single run, or one per axis value. Expansion is deterministic —
    /// the same file always yields the same points in the same order.
    #[must_use]
    pub fn points(&self) -> Vec<(String, Scenario)> {
        match &self.sweep {
            None => vec![(self.name.clone(), self.scenario.clone())],
            Some(sweep) => sweep.points(&self.scenario),
        }
    }

    /// Serializes to a JSON tree (canonical field order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("format", Json::str(FORMAT)),
            ("name", Json::str(&self.name)),
        ];
        if let Some(title) = &self.title {
            fields.push(("title", Json::str(title)));
        }
        if let Some(reproduces) = &self.reproduces {
            fields.push(("reproduces", Json::str(reproduces)));
        }
        fields.push(("scenario", scenario_to_json(&self.scenario)));
        fields.push(("seeds", self.seeds.to_json()));
        if let Some(sweep) = &self.sweep {
            fields.push(("sweep", sweep.to_json()));
        }
        Json::object(fields)
    }

    /// Serializes to canonical text (no trailing newline).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        write_string(&self.to_json())
    }

    /// Parses a document from a JSON tree.
    pub fn from_json(json: &Json) -> Result<Self, SchemaError> {
        let ctx = Ctx::root(json);
        let mut obj = ctx.object()?;
        let format_ctx = obj.req("format")?;
        let format = format_ctx.ctx().str()?;
        if format != FORMAT {
            return Err(format_ctx.ctx().err(format!(
                "unsupported format {format:?} (this build reads {FORMAT:?})"
            )));
        }
        let name = obj.req("name")?.ctx().str()?.to_string();
        let title = match obj.opt("title") {
            Some(c) => Some(c.ctx().str()?.to_string()),
            None => None,
        };
        let reproduces = match obj.opt("reproduces") {
            Some(c) => Some(c.ctx().str()?.to_string()),
            None => None,
        };
        let scenario = scenario_from(obj.req("scenario")?.ctx())?;
        let seeds_ctx = obj.req("seeds")?;
        let seeds = SeedSpec::from_ctx(seeds_ctx.ctx())?;
        if seeds.seeds().is_empty() {
            return Err(seeds_ctx.ctx().err("the seed batch is empty"));
        }
        let sweep = match obj.opt("sweep") {
            Some(c) => Some(SweepSpec::from_ctx(c.ctx())?),
            None => None,
        };
        obj.finish()?;
        Ok(ScenarioFile {
            name,
            title,
            reproduces,
            scenario,
            seeds,
            sweep,
        })
    }

    /// Parses a document from text, reporting syntax and schema errors
    /// alike with `line:col` anchors.
    pub fn parse_str(text: &str) -> Result<Self, JsonError> {
        let json = crate::parse::parse(text)?;
        Ok(ScenarioFile::from_json(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_range_expands_contiguously() {
        let spec = SeedSpec::Range { start: 5, count: 3 };
        assert_eq!(spec.seeds(), vec![5, 6, 7]);
        assert_eq!(SeedSpec::List(vec![9, 1]).seeds(), vec![9, 1]);
    }

    #[test]
    fn minimal_file_round_trips() {
        let file = ScenarioFile::new(
            "minimal",
            Scenario::new(MobileModel::Garay, 9, 2),
            SeedSpec::Range { start: 0, count: 4 },
        );
        let text = file.to_json_string();
        let back = ScenarioFile::parse_str(&text).unwrap();
        assert_eq!(back, file);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn sweep_points_match_constructor() {
        let base = Scenario::new(MobileModel::Garay, 9, 1);
        let file = ScenarioFile {
            sweep: Some(SweepSpec::Churn {
                flip_rates: vec![0.0, 0.25],
            }),
            ..ScenarioFile::new("churn", base.clone(), SeedSpec::List(vec![0]))
        };
        let points = file.points();
        let direct = base.sweep_churn([0.0, 0.25]);
        assert_eq!(points.len(), 2);
        assert_eq!(
            points.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
            direct.points().to_vec()
        );
        assert_eq!(points[1].0, "flip_rate=0.25");
    }

    #[test]
    fn bad_format_tag_is_anchored() {
        let err = ScenarioFile::parse_str(
            "{\n  \"format\": \"mbaa-scenario/99\",\n  \"name\": \"x\",\n  \
             \"scenario\": {\"model\": \"garay\", \"n\": 9, \"f\": 2},\n  \"seeds\": [1]\n}",
        )
        .unwrap_err();
        match err {
            JsonError::Schema(schema) => {
                assert_eq!((schema.pos.line, schema.pos.col), (2, 13));
                assert!(schema.message.contains("unsupported format"));
            }
            other => panic!("expected a schema error, got {other:?}"),
        }
    }

    #[test]
    fn empty_seed_batch_is_rejected() {
        let err = ScenarioFile::parse_str(
            "{\"format\": \"mbaa-scenario/1\", \"name\": \"x\", \
             \"scenario\": {\"model\": \"garay\", \"n\": 9, \"f\": 2}, \"seeds\": []}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("seed batch is empty"));
    }
}
