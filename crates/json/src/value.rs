//! The spanned JSON document tree.
//!
//! Every parsed node carries the [`Pos`] (1-based line and column) of its
//! first character, so the schema layer can anchor *semantic* errors — a
//! wrong type, an out-of-range value, an unknown field — to the exact spot
//! in the source file, not just the syntax errors. Nodes built
//! programmatically (for serialization) carry the synthetic position
//! `0:0`, which the writer ignores.
//!
//! Numbers are kept as their raw text ([`Node::Number`]): `u64` seeds
//! round-trip exactly even beyond 2^53 (where `f64` would silently lose
//! precision), and `f64` fields round-trip bit for bit because Rust's
//! shortest-representation formatting and strtod-correct parsing are
//! inverses.

use std::fmt;

/// A 1-based source position (line, column). The synthetic position `0:0`
/// marks programmatically built nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number (0 for synthetic nodes).
    pub line: u32,
    /// 1-based column number, counted in characters (0 for synthetic).
    pub col: u32,
}

impl Pos {
    /// The position of programmatically built nodes.
    pub const SYNTHETIC: Pos = Pos { line: 0, col: 0 };

    /// Returns `true` for the synthetic `0:0` position.
    #[must_use]
    pub fn is_synthetic(self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            f.write_str("builder")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// One JSON value together with the source position of its first
/// character.
///
/// # Example
///
/// ```
/// use mbaa_json::{parse, Node};
///
/// let doc = parse("{\n  \"n\": 9\n}")?;
/// let Node::Object(fields) = &doc.node else { unreachable!() };
/// assert_eq!(fields[0].0.name, "n");
/// assert_eq!((fields[0].1.pos.line, fields[0].1.pos.col), (2, 8));
/// # Ok::<(), mbaa_json::JsonError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Json {
    /// Where the value starts in the source (synthetic when built).
    pub pos: Pos,
    /// The value itself.
    pub node: Node,
}

/// An object key together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Key {
    /// Where the key string starts in the source.
    pub pos: Pos,
    /// The key text.
    pub name: String,
}

/// The payload of a [`Json`] node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source (or canonically formatted) text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array, in element order.
    Array(Vec<Json>),
    /// An object, in key order as written; duplicate keys are a parse
    /// error, so lookups are unambiguous.
    Object(Vec<(Key, Json)>),
}

impl Json {
    /// A short human-readable name of the node's type, used in error
    /// messages ("expected unsigned integer, found string").
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match &self.node {
            Node::Null => "null",
            Node::Bool(_) => "boolean",
            Node::Number(_) => "number",
            Node::String(_) => "string",
            Node::Array(_) => "array",
            Node::Object(_) => "object",
        }
    }

    fn synthetic(node: Node) -> Json {
        Json {
            pos: Pos::SYNTHETIC,
            node,
        }
    }

    /// Builds a `null` node.
    #[must_use]
    pub fn null() -> Json {
        Json::synthetic(Node::Null)
    }

    /// Builds a boolean node.
    #[must_use]
    pub fn bool(value: bool) -> Json {
        Json::synthetic(Node::Bool(value))
    }

    /// Builds an unsigned-integer number node (exact for every `u64`).
    #[must_use]
    pub fn u64(value: u64) -> Json {
        Json::synthetic(Node::Number(value.to_string()))
    }

    /// Builds an unsigned-integer number node from a `usize`.
    #[must_use]
    pub fn usize(value: usize) -> Json {
        Json::synthetic(Node::Number(value.to_string()))
    }

    /// Builds a floating-point number node using Rust's
    /// shortest-round-trip formatting, so parsing the text back yields the
    /// bit-identical `f64`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — JSON has no representation for them,
    /// and every value the scenario schema serializes is finite by
    /// construction.
    #[must_use]
    pub fn f64(value: f64) -> Json {
        assert!(value.is_finite(), "JSON cannot represent {value}");
        Json::synthetic(Node::Number(format!("{value}")))
    }

    /// Builds a string node.
    #[must_use]
    pub fn str(value: impl Into<String>) -> Json {
        Json::synthetic(Node::String(value.into()))
    }

    /// Builds an array node.
    #[must_use]
    pub fn array(items: Vec<Json>) -> Json {
        Json::synthetic(Node::Array(items))
    }

    /// Builds an object node from `(key, value)` pairs, in the given order.
    #[must_use]
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::synthetic(Node::Object(
            fields
                .into_iter()
                .map(|(name, value)| {
                    (
                        Key {
                            pos: Pos::SYNTHETIC,
                            name: name.to_string(),
                        },
                        value,
                    )
                })
                .collect(),
        ))
    }
}
