//! A full synchronous execution under static mixed-mode faults.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mbaa_msr::{ConvergenceReport, VotingFunction};
use mbaa_net::{Outbox, SyncNetwork};
use mbaa_types::{Epsilon, Error, Interval, ProcessId, Result, Round, Value, ValueMultiset};

use crate::{FaultAssignment, StaticBehavior};

/// The outcome of a static mixed-mode execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticRunOutcome {
    /// Whether the correct processes reached ε-agreement within the round
    /// budget.
    pub reached_agreement: bool,
    /// The number of rounds executed.
    pub rounds_executed: usize,
    /// The final vote of every process (indexed by process; faulty
    /// processes report their last internal value, which is meaningless).
    pub final_votes: Vec<Value>,
    /// The convergence history of the correct processes' votes.
    pub report: ConvergenceReport,
    /// The range of the correct processes' *initial* values (the validity
    /// envelope).
    pub validity_envelope: Interval,
}

impl StaticRunOutcome {
    /// Returns `true` when every correct process' final vote lies within the
    /// validity envelope (the range of correct initial values).
    #[must_use]
    pub fn validity_holds(&self, assignment: &FaultAssignment) -> bool {
        assignment
            .correct_set()
            .iter()
            .all(|p| self.validity_envelope.contains(self.final_votes[p.index()]))
    }

    /// The final diameter of the correct processes' votes.
    #[must_use]
    pub fn final_diameter(&self, assignment: &FaultAssignment) -> f64 {
        let correct: ValueMultiset = assignment
            .correct_set()
            .iter()
            .map(|p| self.final_votes[p.index()])
            .collect();
        correct.diameter()
    }
}

/// Runs an approximate agreement algorithm under a *static* mixed-mode fault
/// assignment — the baseline computation of the paper's Theorem 1 argument.
///
/// Correct processes broadcast their current vote every round and apply the
/// voting function to the multiset of delivered values. Faulty processes
/// behave according to their class and the configured [`StaticBehavior`].
#[derive(Debug, Clone)]
pub struct StaticSimulator {
    assignment: FaultAssignment,
    behavior: StaticBehavior,
    seed: u64,
}

impl StaticSimulator {
    /// Creates a simulator for the given assignment and adversarial
    /// behaviour; `seed` makes the run reproducible.
    #[must_use]
    pub fn new(assignment: FaultAssignment, behavior: StaticBehavior, seed: u64) -> Self {
        StaticSimulator {
            assignment,
            behavior,
            seed,
        }
    }

    /// The fault assignment driving this simulator.
    #[must_use]
    pub fn assignment(&self) -> &FaultAssignment {
        &self.assignment
    }

    /// Runs the protocol until the correct processes' votes are within
    /// `epsilon` of each other or until `max_rounds` rounds have elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongInputCount`] when `initial_values` does not
    /// provide one value per process, and [`Error::InvalidParameter`] when
    /// `max_rounds` is zero.
    pub fn run(
        &self,
        function: &dyn VotingFunction,
        initial_values: &[Value],
        epsilon: Epsilon,
        max_rounds: usize,
    ) -> Result<StaticRunOutcome> {
        let n = self.assignment.universe();
        if initial_values.len() != n {
            return Err(Error::WrongInputCount {
                provided: initial_values.len(),
                expected: n,
            });
        }
        if max_rounds == 0 {
            return Err(Error::InvalidParameter("max_rounds must be > 0".into()));
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut network = SyncNetwork::without_trace(n);
        let mut votes: Vec<Value> = initial_values.to_vec();

        let correct_set = self.assignment.correct_set();
        let correct_values = |votes: &[Value]| -> ValueMultiset {
            correct_set.iter().map(|p| votes[p.index()]).collect()
        };

        let initial_correct = correct_values(&votes);
        let validity_envelope = initial_correct
            .range()
            .expect("bound n > 3a+2s+b guarantees at least one correct process");
        let mut report = ConvergenceReport::new(initial_correct.diameter());

        let mut reached = epsilon.covers_diameter(initial_correct.diameter());
        let mut rounds_executed = 0;

        for round_idx in 0..max_rounds {
            if reached {
                break;
            }
            let round = Round::new(round_idx as u64);
            let current_correct = correct_values(&votes);
            let correct_range = current_correct
                .range()
                .expect("at least one correct process");

            // Send phase.
            let outboxes: Vec<Outbox> = (0..n)
                .map(|i| {
                    let sender = ProcessId::new(i);
                    match self.assignment.class_of(sender) {
                        None => Outbox::broadcast(n, sender, votes[i]),
                        Some(class) => {
                            self.behavior
                                .outbox(class, sender, n, correct_range, &mut rng)
                        }
                    }
                })
                .collect();

            // Receive phase.
            let deliveries = network.exchange(round, outboxes)?;

            // Compute phase: every correct process applies the voting
            // function to what it received.
            for p in correct_set.iter() {
                let received = deliveries[p.index()].received_multiset();
                if let Some(next) = function.apply(&received) {
                    votes[p.index()] = next;
                }
            }

            rounds_executed = round_idx + 1;
            let diameter = correct_values(&votes).diameter();
            report.record_round(diameter);
            reached = epsilon.covers_diameter(diameter);
        }

        Ok(StaticRunOutcome {
            reached_agreement: reached,
            rounds_executed,
            final_votes: votes,
            report,
            validity_envelope,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_msr::MsrFunction;
    use mbaa_types::FaultCounts;

    fn inputs(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::new(i as f64 / n as f64)).collect()
    }

    #[test]
    fn fault_free_run_converges() {
        let assignment = FaultAssignment::all_correct(5);
        let sim = StaticSimulator::new(assignment.clone(), StaticBehavior::spread_attack(), 1);
        let outcome = sim
            .run(
                &MsrFunction::dolev_mean(0),
                &inputs(5),
                Epsilon::new(1e-9),
                10,
            )
            .unwrap();
        assert!(outcome.reached_agreement);
        // Plain averaging with full information agrees exactly in one round.
        assert_eq!(outcome.rounds_executed, 1);
        assert!(outcome.validity_holds(&assignment));
    }

    #[test]
    fn tolerates_mixed_faults_above_bound() {
        // a=1, s=1, b=1: bound is 3+2+1 = 6, so n=7 suffices.
        let counts = FaultCounts::new(1, 1, 1);
        let assignment = FaultAssignment::with_first_processes_faulty(7, counts).unwrap();
        let sim = StaticSimulator::new(assignment.clone(), StaticBehavior::spread_attack(), 7);
        let outcome = sim
            .run(
                &MsrFunction::for_fault_counts(counts),
                &inputs(7),
                Epsilon::new(1e-6),
                200,
            )
            .unwrap();
        assert!(
            outcome.reached_agreement,
            "diameter trace: {:?}",
            outcome.report.diameters()
        );
        assert!(outcome.validity_holds(&assignment));
        assert!(outcome.report.is_monotonically_non_expanding());
    }

    #[test]
    fn asymmetric_attack_defeated_by_sufficient_replication() {
        let counts = FaultCounts::new(2, 0, 0);
        let assignment = FaultAssignment::with_first_processes_faulty(7, counts).unwrap();
        for behavior in [
            StaticBehavior::spread_attack(),
            StaticBehavior::Fixed {
                value: Value::new(50.0),
            },
            StaticBehavior::Random {
                lo: -10.0,
                hi: 10.0,
            },
        ] {
            let sim = StaticSimulator::new(assignment.clone(), behavior, 3);
            let outcome = sim
                .run(
                    &MsrFunction::for_fault_counts(counts),
                    &inputs(7),
                    Epsilon::new(1e-4),
                    300,
                )
                .unwrap();
            assert!(
                outcome.reached_agreement,
                "behavior {behavior} did not converge"
            );
            assert!(
                outcome.validity_holds(&assignment),
                "behavior {behavior} broke validity"
            );
        }
    }

    #[test]
    fn rejects_wrong_input_count() {
        let assignment = FaultAssignment::all_correct(4);
        let sim = StaticSimulator::new(assignment, StaticBehavior::spread_attack(), 0);
        let err = sim
            .run(
                &MsrFunction::dolev_mean(0),
                &inputs(3),
                Epsilon::new(0.1),
                5,
            )
            .unwrap_err();
        assert!(matches!(err, Error::WrongInputCount { .. }));
    }

    #[test]
    fn rejects_zero_round_budget() {
        let assignment = FaultAssignment::all_correct(4);
        let sim = StaticSimulator::new(assignment, StaticBehavior::spread_attack(), 0);
        let err = sim
            .run(
                &MsrFunction::dolev_mean(0),
                &inputs(4),
                Epsilon::new(0.1),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn already_agreed_inputs_need_no_rounds() {
        let assignment = FaultAssignment::all_correct(3);
        let sim = StaticSimulator::new(assignment, StaticBehavior::spread_attack(), 0);
        let same = vec![Value::new(0.5); 3];
        let outcome = sim
            .run(&MsrFunction::dolev_mean(0), &same, Epsilon::new(0.1), 5)
            .unwrap();
        assert!(outcome.reached_agreement);
        assert_eq!(outcome.rounds_executed, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let counts = FaultCounts::new(1, 0, 0);
        let assignment = FaultAssignment::with_first_processes_faulty(4, counts).unwrap();
        let run = |seed| {
            StaticSimulator::new(
                assignment.clone(),
                StaticBehavior::Random { lo: -5.0, hi: 5.0 },
                seed,
            )
            .run(
                &MsrFunction::for_fault_counts(counts),
                &inputs(4),
                Epsilon::new(1e-6),
                50,
            )
            .unwrap()
        };
        assert_eq!(run(11), run(11));
    }
}
