//! Static assignment of mixed-mode fault classes to processes.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{Error, FaultCounts, MixedFaultClass, ProcessId, ProcessSet, Result};

/// A static assignment of fault classes to a universe of `n` processes.
///
/// A process is either correct (`None`) or carries one of the three
/// [`MixedFaultClass`]es for the *whole* computation — this is exactly the
/// "static computation" the paper builds as the equivalent of a mobile one.
///
/// # Example
///
/// ```
/// use mbaa_mixed::FaultAssignment;
/// use mbaa_types::{FaultCounts, MixedFaultClass, ProcessId};
///
/// let assignment = FaultAssignment::with_first_processes_faulty(
///     9,
///     FaultCounts::new(1, 1, 1),
/// ).unwrap();
/// assert_eq!(assignment.class_of(ProcessId::new(0)), Some(MixedFaultClass::Asymmetric));
/// assert_eq!(assignment.counts(), FaultCounts::new(1, 1, 1));
/// assert_eq!(assignment.correct_set().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAssignment {
    classes: Vec<Option<MixedFaultClass>>,
}

impl FaultAssignment {
    /// An assignment where every one of the `n` processes is correct.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn all_correct(n: usize) -> Self {
        assert!(n > 0, "assignment needs at least one process");
        FaultAssignment {
            classes: vec![None; n],
        }
    }

    /// Builds an assignment from an explicit class vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InsufficientProcessesMixed`] when the implied fault
    /// counts violate `n > 3a + 2s + b`, and [`Error::InvalidParameter`]
    /// when `classes` is empty.
    pub fn from_classes(classes: Vec<Option<MixedFaultClass>>) -> Result<Self> {
        if classes.is_empty() {
            return Err(Error::InvalidParameter(
                "assignment needs at least one process".into(),
            ));
        }
        let assignment = FaultAssignment { classes };
        let counts = assignment.counts();
        if !counts.tolerated_by(assignment.universe()) {
            return Err(Error::InsufficientProcessesMixed {
                n: assignment.universe(),
                required: counts.min_processes(),
            });
        }
        Ok(assignment)
    }

    /// Builds an assignment where the lowest-indexed processes carry the
    /// faults: first the asymmetric ones, then symmetric, then benign.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InsufficientProcessesMixed`] when
    /// `n <= 3a + 2s + b`, and [`Error::InvalidParameter`] when the faults
    /// outnumber the processes.
    pub fn with_first_processes_faulty(n: usize, counts: FaultCounts) -> Result<Self> {
        if counts.total() > n {
            return Err(Error::InvalidParameter(format!(
                "{} faults cannot be placed on {n} processes",
                counts.total()
            )));
        }
        let mut classes = vec![None; n];
        let mut idx = 0;
        for _ in 0..counts.asymmetric {
            classes[idx] = Some(MixedFaultClass::Asymmetric);
            idx += 1;
        }
        for _ in 0..counts.symmetric {
            classes[idx] = Some(MixedFaultClass::Symmetric);
            idx += 1;
        }
        for _ in 0..counts.benign {
            classes[idx] = Some(MixedFaultClass::Benign);
            idx += 1;
        }
        Self::from_classes(classes)
    }

    /// The number of processes `n`.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.classes.len()
    }

    /// The fault class of `p`, or `None` when `p` is correct.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn class_of(&self, p: ProcessId) -> Option<MixedFaultClass> {
        self.classes[p.index()]
    }

    /// Returns `true` when `p` is correct.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    #[must_use]
    pub fn is_correct(&self, p: ProcessId) -> bool {
        self.class_of(p).is_none()
    }

    /// The number of faults of each class.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.classes
            .iter()
            .flatten()
            .fold(FaultCounts::NONE, |acc, class| acc.with_fault(*class))
    }

    /// The set of correct processes.
    #[must_use]
    pub fn correct_set(&self) -> ProcessSet {
        ProcessSet::from_indices(
            self.universe(),
            self.classes
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.is_none().then_some(i)),
        )
    }

    /// The set of processes carrying the given fault class.
    #[must_use]
    pub fn set_of(&self, class: MixedFaultClass) -> ProcessSet {
        ProcessSet::from_indices(
            self.universe(),
            self.classes
                .iter()
                .enumerate()
                .filter_map(|(i, c)| (*c == Some(class)).then_some(i)),
        )
    }

    /// Returns `true` when the assignment satisfies `n > 3a + 2s + b`.
    #[must_use]
    pub fn satisfies_bound(&self) -> bool {
        self.counts().tolerated_by(self.universe())
    }

    /// Iterates over `(process, class)` pairs (correct processes included
    /// with `None`).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Option<MixedFaultClass>)> + '_ {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ProcessId::new(i), *c))
    }
}

impl fmt::Display for FaultAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}, {}", self.universe(), self.counts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct_has_no_faults() {
        let a = FaultAssignment::all_correct(4);
        assert_eq!(a.universe(), 4);
        assert_eq!(a.counts(), FaultCounts::NONE);
        assert!(a.satisfies_bound());
        assert_eq!(a.correct_set().len(), 4);
    }

    #[test]
    fn first_processes_faulty_places_in_order() {
        let a =
            FaultAssignment::with_first_processes_faulty(10, FaultCounts::new(2, 1, 1)).unwrap();
        assert_eq!(
            a.class_of(ProcessId::new(0)),
            Some(MixedFaultClass::Asymmetric)
        );
        assert_eq!(
            a.class_of(ProcessId::new(1)),
            Some(MixedFaultClass::Asymmetric)
        );
        assert_eq!(
            a.class_of(ProcessId::new(2)),
            Some(MixedFaultClass::Symmetric)
        );
        assert_eq!(a.class_of(ProcessId::new(3)), Some(MixedFaultClass::Benign));
        assert!(a.is_correct(ProcessId::new(4)));
        assert_eq!(a.counts(), FaultCounts::new(2, 1, 1));
        assert_eq!(a.set_of(MixedFaultClass::Asymmetric).len(), 2);
        assert_eq!(a.correct_set().len(), 6);
    }

    #[test]
    fn bound_violation_rejected() {
        // 3a + 2s + b = 6; n must exceed 6.
        let err =
            FaultAssignment::with_first_processes_faulty(6, FaultCounts::new(2, 0, 0)).unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientProcessesMixed { n: 6, required: 7 }
        ));

        assert!(FaultAssignment::with_first_processes_faulty(7, FaultCounts::new(2, 0, 0)).is_ok());
    }

    #[test]
    fn too_many_faults_rejected() {
        let err =
            FaultAssignment::with_first_processes_faulty(2, FaultCounts::new(1, 1, 1)).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn from_classes_round_trips() {
        let classes = vec![Some(MixedFaultClass::Benign), None, None];
        let a = FaultAssignment::from_classes(classes).unwrap();
        assert_eq!(a.counts(), FaultCounts::new(0, 0, 1));
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs[0], (ProcessId::new(0), Some(MixedFaultClass::Benign)));
        assert_eq!(pairs[1], (ProcessId::new(1), None));
    }

    #[test]
    fn from_classes_rejects_empty() {
        assert!(matches!(
            FaultAssignment::from_classes(vec![]),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn display_summarises() {
        let a = FaultAssignment::with_first_processes_faulty(8, FaultCounts::new(1, 1, 0)).unwrap();
        assert_eq!(a.to_string(), "n=8, a=1, s=1, b=0");
    }
}
