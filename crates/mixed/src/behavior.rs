//! Send-phase behaviour of statically faulty processes.

use std::fmt;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use mbaa_net::Outbox;
use mbaa_types::{Interval, MixedFaultClass, ProcessId, Value};

/// The strategy a statically faulty process uses to manufacture its outbox.
///
/// The benign class always produces a silent outbox (its fault is
/// self-incriminating), so the strategy only chooses the values sent by
/// symmetric and asymmetric processes. All strategies are *adversarial*:
/// they aim either to drag the correct processes' votes outside their own
/// range or to keep the correct processes split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StaticBehavior {
    /// Symmetric processes broadcast a value far above the correct range;
    /// asymmetric processes send a far-low value to the lower half of the
    /// receivers and a far-high value to the upper half (the classic
    /// "split" attack). `magnitude` controls how far outside the correct
    /// range the planted values sit.
    Spread {
        /// Distance beyond the correct range of the planted values.
        magnitude: f64,
    },
    /// Every faulty process pushes the same fixed value (symmetrically), and
    /// asymmetric processes alternate between that value and its negation.
    Fixed {
        /// The planted value.
        value: Value,
    },
    /// Faulty processes draw uniformly random values from an interval.
    /// Asymmetric processes draw a fresh value per receiver; symmetric
    /// processes draw one per round.
    Random {
        /// Lower bound of the planted values.
        lo: f64,
        /// Upper bound of the planted values.
        hi: f64,
    },
}

impl StaticBehavior {
    /// The default adversarial strategy: a split/spread attack planting
    /// values one full correct-diameter outside the correct range.
    #[must_use]
    pub fn spread_attack() -> Self {
        StaticBehavior::Spread { magnitude: 1.0 }
    }

    /// Builds the outbox of a faulty process for one round.
    ///
    /// * `class` — the sender's fault class.
    /// * `sender` — the sender's identity.
    /// * `n` — the system size.
    /// * `correct_range` — the current range of correct votes, which the
    ///   adversary is assumed to know (worst case).
    /// * `rng` — the adversary's randomness source.
    #[must_use]
    pub fn outbox<R: Rng + ?Sized>(
        &self,
        class: MixedFaultClass,
        sender: ProcessId,
        n: usize,
        correct_range: Interval,
        rng: &mut R,
    ) -> Outbox {
        match class {
            MixedFaultClass::Benign => Outbox::silent(n, sender),
            MixedFaultClass::Symmetric => {
                Outbox::broadcast(n, sender, self.symmetric_value(correct_range, rng))
            }
            MixedFaultClass::Asymmetric => {
                let slots = (0..n)
                    .map(|receiver| Some(self.asymmetric_value(correct_range, receiver, n, rng)))
                    .collect();
                Outbox::per_receiver(sender, slots)
            }
        }
    }

    /// The single value a symmetric faulty process broadcasts this round.
    fn symmetric_value<R: Rng + ?Sized>(&self, correct_range: Interval, rng: &mut R) -> Value {
        match self {
            StaticBehavior::Spread { magnitude } => {
                Value::new(correct_range.hi().get() + magnitude.max(f64::MIN_POSITIVE))
            }
            StaticBehavior::Fixed { value } => *value,
            StaticBehavior::Random { lo, hi } => Value::new(rng.random_range(*lo..=*hi)),
        }
    }

    /// The value an asymmetric faulty process sends to one given receiver.
    fn asymmetric_value<R: Rng + ?Sized>(
        &self,
        correct_range: Interval,
        receiver: usize,
        n: usize,
        rng: &mut R,
    ) -> Value {
        match self {
            StaticBehavior::Spread { magnitude } => {
                let margin = magnitude.max(f64::MIN_POSITIVE);
                if receiver < n / 2 {
                    Value::new(correct_range.lo().get() - margin)
                } else {
                    Value::new(correct_range.hi().get() + margin)
                }
            }
            StaticBehavior::Fixed { value } => {
                if receiver.is_multiple_of(2) {
                    *value
                } else {
                    -*value
                }
            }
            StaticBehavior::Random { lo, hi } => Value::new(rng.random_range(*lo..=*hi)),
        }
    }
}

impl Default for StaticBehavior {
    fn default() -> Self {
        Self::spread_attack()
    }
}

impl fmt::Display for StaticBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticBehavior::Spread { magnitude } => write!(f, "spread(±{magnitude})"),
            StaticBehavior::Fixed { value } => write!(f, "fixed({value})"),
            StaticBehavior::Random { lo, hi } => write!(f, "random[{lo}, {hi}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn range01() -> Interval {
        Interval::new(Value::new(0.0), Value::new(1.0))
    }

    #[test]
    fn benign_is_always_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        for behavior in [
            StaticBehavior::spread_attack(),
            StaticBehavior::Fixed {
                value: Value::new(5.0),
            },
            StaticBehavior::Random { lo: -1.0, hi: 1.0 },
        ] {
            let o = behavior.outbox(
                MixedFaultClass::Benign,
                ProcessId::new(0),
                4,
                range01(),
                &mut rng,
            );
            assert!(o.is_silent(), "{behavior}");
        }
    }

    #[test]
    fn symmetric_is_uniform_and_outside_range_for_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = StaticBehavior::spread_attack().outbox(
            MixedFaultClass::Symmetric,
            ProcessId::new(1),
            5,
            range01(),
            &mut rng,
        );
        assert!(o.is_uniform());
        let v = o.get(ProcessId::new(0)).unwrap();
        assert!(v > Value::new(1.0));
    }

    #[test]
    fn asymmetric_spread_splits_receivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = StaticBehavior::spread_attack().outbox(
            MixedFaultClass::Asymmetric,
            ProcessId::new(0),
            4,
            range01(),
            &mut rng,
        );
        assert!(!o.is_uniform());
        assert!(o.get(ProcessId::new(0)).unwrap() < Value::new(0.0));
        assert!(o.get(ProcessId::new(3)).unwrap() > Value::new(1.0));
    }

    #[test]
    fn fixed_behavior_plants_the_fixed_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let behavior = StaticBehavior::Fixed {
            value: Value::new(9.0),
        };
        let sym = behavior.outbox(
            MixedFaultClass::Symmetric,
            ProcessId::new(0),
            3,
            range01(),
            &mut rng,
        );
        assert_eq!(sym.get(ProcessId::new(2)), Some(Value::new(9.0)));

        let asym = behavior.outbox(
            MixedFaultClass::Asymmetric,
            ProcessId::new(0),
            3,
            range01(),
            &mut rng,
        );
        assert_eq!(asym.get(ProcessId::new(0)), Some(Value::new(9.0)));
        assert_eq!(asym.get(ProcessId::new(1)), Some(Value::new(-9.0)));
    }

    #[test]
    fn random_behavior_is_deterministic_under_seed() {
        let behavior = StaticBehavior::Random { lo: -2.0, hi: 2.0 };
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            behavior.outbox(
                MixedFaultClass::Asymmetric,
                ProcessId::new(0),
                4,
                range01(),
                &mut rng,
            )
        };
        assert_eq!(run(7), run(7));
        // Values stay within the configured interval.
        let o = run(7);
        for (_, v) in o.iter() {
            let v = v.unwrap().get();
            assert!((-2.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(StaticBehavior::spread_attack().to_string(), "spread(±1)");
        assert_eq!(
            StaticBehavior::Fixed {
                value: Value::new(2.0)
            }
            .to_string(),
            "fixed(2)"
        );
        assert_eq!(
            StaticBehavior::Random { lo: 0.0, hi: 1.0 }.to_string(),
            "random[0, 1]"
        );
    }
}
