//! The Mixed-Mode static fault model of Kieckhafer & Azadmanesh (IEEE TPDS
//! 1994), the target of the paper's Mobile-Byzantine-to-Mixed-Mode mapping.
//!
//! In the Mixed-Mode model faults are *static* — the same processes are
//! faulty for the whole computation — and partitioned into three classes:
//!
//! * **benign** faults are self-incriminating (every correct process detects
//!   them immediately, e.g. an omission in a synchronous round),
//! * **symmetric** faults are perceived identically by all correct processes
//!   (the same wrong value broadcast to everyone),
//! * **asymmetric** faults are classical Byzantine (different observers may
//!   see different behaviour).
//!
//! MSR algorithms tolerate `a` asymmetric, `s` symmetric and `b` benign
//! faults whenever `n > 3a + 2s + b`.
//!
//! This crate provides:
//!
//! * [`FaultAssignment`] — which process carries which static fault class.
//! * [`StaticBehavior`] — how each fault class manufactures its outbox in
//!   the send phase (the adversarial value strategies for symmetric and
//!   asymmetric processes).
//! * [`StaticSimulator`] / [`StaticRunOutcome`] — a complete synchronous
//!   execution of an MSR instance under a static fault assignment, used as
//!   the *baseline* the mobile executions are compared against
//!   (Theorem 1's "static computation").
//!
//! # Example
//!
//! ```
//! use mbaa_mixed::{FaultAssignment, StaticBehavior, StaticSimulator};
//! use mbaa_msr::MsrFunction;
//! use mbaa_types::{Epsilon, FaultCounts, MixedFaultClass, Value};
//!
//! // 7 processes, one asymmetric + one benign fault: 7 > 3*1 + 0 + 1.
//! let assignment = FaultAssignment::with_first_processes_faulty(
//!     7,
//!     FaultCounts::new(1, 0, 1),
//! ).unwrap();
//!
//! let inputs: Vec<Value> = (0..7).map(|i| Value::new(i as f64 / 7.0)).collect();
//! let sim = StaticSimulator::new(assignment, StaticBehavior::spread_attack(), 42);
//! let outcome = sim
//!     .run(&MsrFunction::for_fault_counts(FaultCounts::new(1, 0, 1)), &inputs,
//!          Epsilon::new(1e-3), 100)
//!     .unwrap();
//! assert!(outcome.reached_agreement);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assignment;
mod behavior;
mod simulator;

pub use assignment::FaultAssignment;
pub use behavior::StaticBehavior;
pub use simulator::{StaticRunOutcome, StaticSimulator};
