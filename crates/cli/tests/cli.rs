//! Black-box tests for the `mbaa` binary: exit codes, validate/explain/
//! gallery output, and the load-bearing guarantee of the checkpoint
//! subsystem — a killed sweep, resumed and merged, produces a report
//! byte-identical to an uninterrupted `run --out`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_mbaa");

/// A fresh scratch directory per call (no tempdir crate in the
/// workspace; cleaned up best-effort by the caller where it matters).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mbaa-cli-test-{}-{tag}-{id}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn mbaa(args: &[&str], cwd: &Path) -> Output {
    Command::new(BIN)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn mbaa")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// A small but non-trivial document: a 2-point `n` sweep over 6 seeds
/// (12 runs), cheap enough to execute several times per test run.
const SWEEP_DOC: &str = r#"{
  "format": "mbaa-scenario/1",
  "name": "ckpt-test",
  "scenario": {"model": "garay", "n": 9, "f": 2, "max_rounds": 50},
  "seeds": {"start": 0, "count": 6},
  "sweep": {"n": {"extra": 1}}
}"#;

// ---------------------------------------------------------------------------
// Exit codes and usage.
// ---------------------------------------------------------------------------

#[test]
fn unknown_command_is_a_usage_error() {
    let dir = scratch("usage");
    let out = mbaa(&["frobnicate"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let dir = scratch("flag");
    let out = mbaa(&["run", "--frobnicate"], &dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag --frobnicate"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let dir = scratch("help");
    for invocation in [&["help"][..], &["--help"][..]] {
        let out = mbaa(invocation, &dir);
        assert_eq!(out.status.code(), Some(0));
        let text = stdout(&out);
        for command in [
            "run", "sweep", "resume", "merge", "validate", "explain", "gallery",
        ] {
            assert!(text.contains(command), "usage is missing {command:?}");
        }
    }
}

#[test]
fn missing_file_is_a_failure_not_a_usage_error() {
    let dir = scratch("missing");
    let out = mbaa(&["run", "no-such-file.scenario.json"], &dir);
    assert_eq!(out.status.code(), Some(1));
}

// ---------------------------------------------------------------------------
// validate / explain / gallery.
// ---------------------------------------------------------------------------

#[test]
fn validate_reports_line_col_and_counts_failures() {
    let dir = scratch("validate");
    let good = dir.join("good.scenario.json");
    let bad = dir.join("bad.scenario.json");
    fs::write(&good, SWEEP_DOC).unwrap();
    // An unknown field, anchored at its key on line 4.
    fs::write(
        &bad,
        "{\n  \"format\": \"mbaa-scenario/1\",\n  \"name\": \"bad\",\n  \"bogus\": 1,\n  \
         \"scenario\": {\"model\": \"garay\", \"n\": 9, \"f\": 2},\n  \"seeds\": [0]\n}",
    )
    .unwrap();

    let ok = mbaa(&["validate", good.to_str().unwrap()], &dir);
    assert_eq!(ok.status.code(), Some(0));
    assert!(stdout(&ok).contains("ok (ckpt-test, 2 point(s), 6 seed(s))"));

    let mixed = mbaa(
        &["validate", good.to_str().unwrap(), bad.to_str().unwrap()],
        &dir,
    );
    assert_eq!(mixed.status.code(), Some(1));
    let err = stderr(&mixed);
    assert!(
        err.contains("4:3: bogus: unknown field \"bogus\""),
        "missing line:col anchor: {err}"
    );
    assert!(err.contains("1 of 2 file(s) failed validation"));
}

#[test]
fn explain_shows_bound_and_points() {
    let dir = scratch("explain");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let out = mbaa(&["explain", file.to_str().unwrap()], &dir);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("bound needs n \u{2265} 9, satisfied"));
    assert!(text.contains("points:      2"));
    assert!(text.contains("- n=9:"));
    assert!(text.contains("- n=10:"));
}

#[test]
fn gallery_lists_committed_scenarios() {
    let root = repo_root();
    let out = mbaa(&["gallery", "scenarios"], &root);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for name in ["quickstart", "table2-thresholds", "paper-report-f2"] {
        assert!(text.contains(name), "gallery is missing {name:?}");
    }
    assert!(text.contains("run with: mbaa run"));
}

#[test]
fn gallery_run_executes_and_writes_reports_identical_to_run() {
    // `gallery --run` must share `run`'s execution path exactly: the
    // report it writes for a scenario is byte-identical to `mbaa run
    // --out` over the same (smoke-trimmed) file.
    let dir = scratch("gallery_run");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let reports = dir.join("reports");
    let out = mbaa(
        &[
            "gallery",
            dir.to_str().unwrap(),
            "--run",
            "--smoke",
            "--workers",
            "2",
            "--out",
            reports.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("mean rounds"), "point table missing:\n{text}");

    let direct = dir.join("direct.json");
    let run = mbaa(
        &[
            "run",
            file.to_str().unwrap(),
            "--smoke",
            "--out",
            direct.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(run.status.code(), Some(0), "stderr: {}", stderr(&run));
    let written: Vec<_> = fs::read_dir(&reports)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(written.len(), 1, "one report per scenario: {written:?}");
    assert_eq!(
        fs::read_to_string(&written[0]).unwrap(),
        fs::read_to_string(&direct).unwrap(),
        "gallery --run report must be byte-identical to mbaa run --out"
    );
}

#[test]
fn gallery_rejects_run_flags_without_run() {
    let root = repo_root();
    let out = mbaa(&["gallery", "scenarios", "--smoke"], &root);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--run"));
}

#[test]
fn committed_gallery_runs_in_smoke_mode() {
    // Every committed scenario must stay executable; the cheapest one
    // proves the plumbing here, CI runs the full set.
    let root = repo_root();
    let out = mbaa(
        &[
            "run",
            "scenarios/quickstart.scenario.json",
            "--smoke",
            "--workers",
            "2",
        ],
        &root,
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("quickstart"));
    assert!(text.contains('2'), "smoke mode should run 2 seeds");
}

// ---------------------------------------------------------------------------
// The checkpoint guarantee: kill, resume, merge == uninterrupted run.
// ---------------------------------------------------------------------------

#[test]
fn killed_sweep_resumes_to_a_byte_identical_report() {
    let dir = scratch("resume");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let ckpt = dir.join("ckpt");
    let direct = dir.join("direct.json");
    let merged = dir.join("merged.json");

    // The uninterrupted reference run.
    let run = mbaa(
        &[
            "run",
            file.to_str().unwrap(),
            "--out",
            direct.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(run.status.code(), Some(0), "stderr: {}", stderr(&run));

    // "Kill" a sweep partway: execute only chunk 0 of 3 (12 runs at
    // chunk size 5), single-threaded.
    let partial = mbaa(
        &[
            "sweep",
            file.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--chunk-size",
            "5",
            "--chunks",
            "0..1",
            "--workers",
            "1",
        ],
        &dir,
    );
    assert_eq!(
        partial.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&partial)
    );
    assert!(ckpt.join("chunk-00000.json").exists());
    assert!(!ckpt.join("chunk-00001.json").exists());

    // Merging an incomplete checkpoint must fail loudly and name the
    // first missing chunk, never emit a partial report.
    let premature = mbaa(&["merge", ckpt.to_str().unwrap()], &dir);
    assert_eq!(premature.status.code(), Some(1));
    let err = stderr(&premature);
    assert!(
        err.contains("chunk-00001.json"),
        "unhelpful merge error: {err}"
    );
    assert!(err.contains("mbaa resume"));

    // Resume from the directory alone, with a different worker count
    // than the reference run — results must not care.
    let resume = mbaa(&["resume", ckpt.to_str().unwrap(), "--workers", "3"], &dir);
    assert_eq!(resume.status.code(), Some(0), "stderr: {}", stderr(&resume));
    let text = stdout(&resume);
    assert!(text.contains("2 chunk(s) executed, 1 already complete"));

    // A second resume is a no-op.
    let again = mbaa(&["resume", ckpt.to_str().unwrap()], &dir);
    assert_eq!(again.status.code(), Some(0));
    assert!(stdout(&again).contains("0 chunk(s) executed, 3 already complete"));

    let merge = mbaa(
        &[
            "merge",
            ckpt.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(merge.status.code(), Some(0), "stderr: {}", stderr(&merge));

    let direct_bytes = fs::read(&direct).unwrap();
    let merged_bytes = fs::read(&merged).unwrap();
    assert!(!direct_bytes.is_empty(), "reference report is empty");
    assert_eq!(
        direct_bytes, merged_bytes,
        "merged report differs from the uninterrupted run"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tampered_chunk_is_a_hard_error() {
    let dir = scratch("tamper");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let ckpt = dir.join("ckpt");

    let sweep = mbaa(
        &[
            "sweep",
            file.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--chunk-size",
            "5",
        ],
        &dir,
    );
    assert_eq!(sweep.status.code(), Some(0), "stderr: {}", stderr(&sweep));

    // Atomic writes mean a kill cannot produce a torn chunk, so a chunk
    // that exists but does not validate is tampering — both resume and
    // merge must refuse rather than silently recompute.
    let chunk = ckpt.join("chunk-00001.json");
    let mut text = fs::read_to_string(&chunk).unwrap();
    text.truncate(text.len() / 2);
    fs::write(&chunk, text).unwrap();

    for command in ["resume", "merge"] {
        let out = mbaa(&[command, ckpt.to_str().unwrap()], &dir);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{command} accepted a torn chunk"
        );
        assert!(stderr(&out).contains("chunk-00001.json"));
    }

    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Telemetry: --metrics-out / --events-out / report.
// ---------------------------------------------------------------------------

#[test]
fn metrics_out_leaves_stdout_and_report_byte_identical() {
    // Attaching telemetry must not perturb the deterministic outputs:
    // stdout and the --out report stay byte-identical with and without
    // --metrics-out.
    let dir = scratch("metrics_inert");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let plain_report = dir.join("plain.json");
    let metered_report = dir.join("metered.json");
    let metrics = dir.join("metrics.json");

    let plain = mbaa(
        &[
            "run",
            file.to_str().unwrap(),
            "--out",
            plain_report.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(plain.status.code(), Some(0), "stderr: {}", stderr(&plain));
    let metered = mbaa(
        &[
            "run",
            file.to_str().unwrap(),
            "--out",
            metered_report.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(
        metered.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&metered)
    );
    // stdout differs only by the "written to" trailers (different paths
    // and the extra metrics line) — the result table itself is identical.
    let strip = |out: &Output| -> String {
        stdout(out)
            .lines()
            .filter(|l| !l.contains("written to"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    assert_eq!(strip(&plain), strip(&metered));
    assert_eq!(
        fs::read(&plain_report).unwrap(),
        fs::read(&metered_report).unwrap(),
        "--metrics-out must not change the report"
    );

    let text = fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("\"format\": \"mbaa-metrics/1\""));
    assert!(text.contains("\"runs\": 12"), "2 points x 6 seeds: {text}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn report_renders_doc_and_events_identically_and_round_trips() {
    // The same run, exported two ways — aggregated document and raw
    // event stream — must fold to the same table, and `report --out`
    // must re-emit the canonical document byte-identically.
    let dir = scratch("report");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let metrics = dir.join("metrics.json");
    let events = dir.join("events.jsonl");

    let run = mbaa(
        &[
            "run",
            file.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--events-out",
            events.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(run.status.code(), Some(0), "stderr: {}", stderr(&run));
    let events_text = fs::read_to_string(&events).unwrap();
    assert!(
        events_text.lines().all(|l| l.starts_with('{')),
        "events must be one JSON object per line"
    );
    assert!(events_text.contains("\"kind\": \"round\""));
    assert!(events_text.contains("\"kind\": \"run_end\""));

    let from_doc = mbaa(&["report", metrics.to_str().unwrap()], &dir);
    assert_eq!(
        from_doc.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&from_doc)
    );
    let table = stdout(&from_doc);
    assert!(table.contains("runs"), "missing counter rows:\n{table}");
    assert!(table.contains("convergence rate"));
    assert!(table.contains("rounds to converge"));

    let from_events = mbaa(&["report", events.to_str().unwrap()], &dir);
    assert_eq!(
        from_events.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&from_events)
    );
    assert_eq!(
        table,
        stdout(&from_events),
        "event stream and aggregated document disagree"
    );

    let rewritten = dir.join("rewritten.json");
    let round_trip = mbaa(
        &[
            "report",
            events.to_str().unwrap(),
            "--out",
            rewritten.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(round_trip.status.code(), Some(0));
    assert_eq!(
        fs::read(&metrics).unwrap(),
        fs::read(&rewritten).unwrap(),
        "report --out must reproduce the canonical document"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn report_rejects_garbage_with_a_location() {
    let dir = scratch("report_bad");
    let bad = dir.join("bad.jsonl");
    fs::write(&bad, "{\"kind\": \"round\"}\n").unwrap();
    let out = mbaa(&["report", bad.to_str().unwrap()], &dir);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("bad.jsonl:1:"),
        "error must name file and line: {}",
        stderr(&out)
    );

    let empty = dir.join("empty.jsonl");
    fs::write(&empty, "\n").unwrap();
    let out = mbaa(&["report", empty.to_str().unwrap()], &dir);
    assert_eq!(out.status.code(), Some(1));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sweep_metrics_out_counts_only_this_invocation() {
    // Chunked sweeps aggregate only what they execute: a partial sweep's
    // registry covers its chunks, the resume's registry covers the rest,
    // and a no-op resume reports zero runs.
    let dir = scratch("sweep_metrics");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();
    let ckpt = dir.join("ckpt");
    let first = dir.join("first.json");
    let rest = dir.join("rest.json");
    let noop = dir.join("noop.json");

    let partial = mbaa(
        &[
            "sweep",
            file.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--chunk-size",
            "5",
            "--chunks",
            "0..1",
            "--metrics-out",
            first.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(
        partial.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&partial)
    );
    assert!(fs::read_to_string(&first).unwrap().contains("\"runs\": 5"));

    let resume = mbaa(
        &[
            "resume",
            ckpt.to_str().unwrap(),
            "--metrics-out",
            rest.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(resume.status.code(), Some(0), "stderr: {}", stderr(&resume));
    assert!(fs::read_to_string(&rest).unwrap().contains("\"runs\": 7"));

    let again = mbaa(
        &[
            "resume",
            ckpt.to_str().unwrap(),
            "--metrics-out",
            noop.to_str().unwrap(),
        ],
        &dir,
    );
    assert_eq!(again.status.code(), Some(0));
    assert!(fs::read_to_string(&noop).unwrap().contains("\"runs\": 0"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn profile_and_progress_write_to_stderr_only() {
    let dir = scratch("profile");
    let file = dir.join("sweep.scenario.json");
    fs::write(&file, SWEEP_DOC).unwrap();

    let plain = mbaa(&["run", file.to_str().unwrap()], &dir);
    let profiled = mbaa(
        &["run", file.to_str().unwrap(), "--profile", "--progress"],
        &dir,
    );
    assert_eq!(
        profiled.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&profiled)
    );
    assert_eq!(
        stdout(&plain),
        stdout(&profiled),
        "--profile/--progress must never touch stdout"
    );
    let err = stderr(&profiled);
    assert!(err.contains("phase breakdown"), "missing breakdown: {err}");
    for phase in ["adversary_plan", "exchange", "msr_apply", "record"] {
        assert!(err.contains(phase), "breakdown is missing {phase:?}: {err}");
    }
    assert!(err.contains("ETA"), "missing progress line: {err}");

    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Committed scenario files mean what the examples they reproduce mean.
// ---------------------------------------------------------------------------

#[test]
fn quickstart_scenario_file_equals_the_example_builder() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("scenarios/quickstart.scenario.json")).unwrap();
    let doc = mbaa_json::ScenarioFile::parse_str(&text).unwrap();
    let expected = mbaa::prelude::Scenario::new(mbaa::prelude::MobileModel::Garay, 9, 2)
        .epsilon(1e-4)
        .max_rounds(200);
    assert_eq!(doc.scenario, expected);
    assert_eq!(doc.seeds.seeds(), (0..16).collect::<Vec<u64>>());
    assert!(doc.sweep.is_none());
}

#[test]
fn table2_scenario_file_expands_like_the_example_sweep() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("scenarios/table2-thresholds.scenario.json")).unwrap();
    let doc = mbaa_json::ScenarioFile::parse_str(&text).unwrap();
    let base = mbaa::prelude::Scenario::new(mbaa::prelude::MobileModel::Garay, 9, 2);
    let direct = base.sweep_n(3);
    let points = doc.points();
    assert_eq!(
        points.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
        direct.points().to_vec()
    );
    assert_eq!(points[0].0, "n=9");
}
