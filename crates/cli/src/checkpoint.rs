//! Checkpointed sweep execution.
//!
//! A sweep flattens its `(point, seed)` grid into one global run list —
//! point-major, seed-minor — and shards that list into fixed-size chunks.
//! Each completed chunk is written to its own `chunk-NNNNN.json` next to a
//! `manifest.json` that embeds the scenario document and a fingerprint of
//! its canonical text. Writes are atomic (`.tmp` + rename), so a killed
//! run leaves only whole chunks behind; `resume` re-reads the manifest,
//! skips every chunk that validates, and executes the rest. Because every
//! run is independently seeded, the merged result is *byte-identical* to
//! an uninterrupted run — the integration tests assert exactly that.

use std::fmt;
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};

use mbaa::prelude::*;
use mbaa_json::schema::{run_summary_from, run_summary_to_json};
use mbaa_json::{parse, write_string, Ctx, Json, ScenarioFile};

/// Format tag of `manifest.json`.
pub const MANIFEST_FORMAT: &str = "mbaa-checkpoint/1";
/// Format tag of every `chunk-NNNNN.json`.
pub const CHUNK_FORMAT: &str = "mbaa-chunk/1";
/// Default runs per chunk.
pub const DEFAULT_CHUNK_SIZE: usize = 64;

/// FNV-1a 64 over the canonical document text, rendered as 16 lowercase
/// hex digits. Chunks carry it so a checkpoint directory can never be
/// silently resumed against an edited scenario file.
///
/// ```
/// use mbaa_cli::checkpoint::fingerprint;
///
/// assert_eq!(fingerprint(""), "cbf29ce484222325");
/// assert_eq!(fingerprint("mbaa"), fingerprint("mbaa"));
/// assert_ne!(fingerprint("mbaa"), fingerprint("mbab"));
/// ```
#[must_use]
pub fn fingerprint(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Everything fixed about a sweep before any run executes: the document,
/// its expanded points, the normalized seed batch, and the chunk grid.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The scenario document driving the sweep.
    pub doc: ScenarioFile,
    /// Fingerprint of the document's canonical text.
    pub fingerprint: String,
    /// Expanded `(label, scenario)` sweep points, in axis order.
    pub points: Vec<(String, Scenario)>,
    /// The seed batch, sorted and deduplicated (the same normalization
    /// every `Runner` applies, so all execution paths agree on the runs).
    pub seeds: Vec<u64>,
    /// Runs per chunk.
    pub chunk_size: usize,
}

impl SweepPlan {
    /// Plans a sweep: expands the document and fixes the chunk grid.
    #[must_use]
    pub fn new(doc: &ScenarioFile, chunk_size: usize) -> SweepPlan {
        let mut seeds = doc.seeds.seeds();
        seeds.sort_unstable();
        seeds.dedup();
        SweepPlan {
            fingerprint: fingerprint(&doc.to_json_string()),
            points: doc.points(),
            seeds,
            chunk_size: chunk_size.max(1),
            doc: doc.clone(),
        }
    }

    /// Total runs in the flattened grid.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.points.len() * self.seeds.len()
    }

    /// Number of chunks the grid shards into.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.total_runs().div_ceil(self.chunk_size)
    }

    /// The global run indices chunk `index` covers.
    #[must_use]
    pub fn chunk_range(&self, index: usize) -> Range<usize> {
        let start = index * self.chunk_size;
        start..(start + self.chunk_size).min(self.total_runs())
    }

    /// Decodes a global run index into its `(point, seed)` pair
    /// (point-major, seed-minor).
    #[must_use]
    pub fn pair(&self, run: usize) -> (usize, u64) {
        (run / self.seeds.len(), self.seeds[run % self.seeds.len()])
    }

    /// The manifest document for this plan.
    #[must_use]
    pub fn manifest_json(&self) -> Json {
        Json::object(vec![
            ("format", Json::str(MANIFEST_FORMAT)),
            ("fingerprint", Json::str(&self.fingerprint)),
            ("chunk_size", Json::usize(self.chunk_size)),
            ("total_runs", Json::usize(self.total_runs())),
            ("chunks", Json::usize(self.chunk_count())),
            ("doc", self.doc.to_json()),
        ])
    }
}

/// One completed run inside a chunk file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkEntry {
    /// Index into the plan's point list.
    pub point: usize,
    /// The seed that drove the run.
    pub seed: u64,
    /// The run's summary row.
    pub summary: RunSummary,
}

/// A checkpoint failure, with enough context to say *which* file broke.
#[derive(Debug)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CheckpointError {}

fn fail(message: impl Into<String>) -> CheckpointError {
    CheckpointError(message.into())
}

/// The file name of chunk `index` (`chunk-00042.json`).
#[must_use]
pub fn chunk_file_name(index: usize) -> String {
    format!("chunk-{index:05}.json")
}

/// Writes `text` (plus a trailing newline) atomically: the bytes land in
/// `<path>.tmp` first and are renamed into place, so readers — and
/// resumed runs — never observe a half-written file.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("json.tmp");
    let mut data = text.to_string();
    data.push('\n');
    fs::write(&tmp, data).map_err(|e| fail(format!("{}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    Ok(())
}

/// Renders one chunk file.
#[must_use]
pub fn chunk_json(plan: &SweepPlan, index: usize, entries: &[ChunkEntry]) -> Json {
    Json::object(vec![
        ("format", Json::str(CHUNK_FORMAT)),
        ("fingerprint", Json::str(&plan.fingerprint)),
        ("chunk", Json::usize(index)),
        (
            "entries",
            Json::array(
                entries
                    .iter()
                    .map(|entry| {
                        Json::object(vec![
                            ("point", Json::usize(entry.point)),
                            ("seed", Json::u64(entry.seed)),
                            ("summary", run_summary_to_json(&entry.summary)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Reads and fully validates one chunk file against the plan: format tag,
/// fingerprint, chunk index, entry count, and every entry's `(point,
/// seed)` pair must match the grid exactly. Any mismatch is an error —
/// a missing file is `Ok(None)` (the chunk simply has not run yet).
pub fn read_chunk(
    dir: &Path,
    plan: &SweepPlan,
    index: usize,
) -> Result<Option<Vec<ChunkEntry>>, CheckpointError> {
    let path = dir.join(chunk_file_name(index));
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(fail(format!("{}: {e}", path.display()))),
    };
    let invalid = |message: String| fail(format!("{}: {message}", path.display()));
    let tree = parse(&text).map_err(|e| invalid(format!("not valid JSON: {e}")))?;
    let entries = (|| -> Result<Vec<ChunkEntry>, String> {
        let ctx = Ctx::root(&tree);
        let mut obj = ctx.object().map_err(|e| e.to_string())?;
        let read_str = |c: &mbaa_json::ChildCtx<'_>| c.ctx().str().map(str::to_string);
        let format =
            read_str(&obj.req("format").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
        if format != CHUNK_FORMAT {
            return Err(format!("unsupported chunk format {format:?}"));
        }
        let fp = read_str(&obj.req("fingerprint").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        if fp != plan.fingerprint {
            return Err(format!(
                "fingerprint {fp} does not match the scenario document ({}); \
                 the checkpoint belongs to a different sweep",
                plan.fingerprint
            ));
        }
        let chunk_child = obj.req("chunk").map_err(|e| e.to_string())?;
        let chunk = chunk_child.ctx().usize().map_err(|e| e.to_string())?;
        if chunk != index {
            return Err(format!("file claims chunk {chunk}, expected {index}"));
        }
        let range = plan.chunk_range(index);
        let entries_child = obj.req("entries").map_err(|e| e.to_string())?;
        let items = entries_child.ctx().array().map_err(|e| e.to_string())?;
        if items.len() != range.len() {
            return Err(format!(
                "{} entries, expected {} (incomplete chunk)",
                items.len(),
                range.len()
            ));
        }
        let mut entries = Vec::with_capacity(items.len());
        for (offset, item) in items.iter().enumerate() {
            let mut entry = item.ctx().object().map_err(|e| e.to_string())?;
            let point_child = entry.req("point").map_err(|e| e.to_string())?;
            let point = point_child.ctx().usize().map_err(|e| e.to_string())?;
            let seed_child = entry.req("seed").map_err(|e| e.to_string())?;
            let seed = seed_child.ctx().u64().map_err(|e| e.to_string())?;
            let summary_child = entry.req("summary").map_err(|e| e.to_string())?;
            let summary = run_summary_from(summary_child.ctx()).map_err(|e| e.to_string())?;
            let (want_point, want_seed) = plan.pair(range.start + offset);
            if (point, seed) != (want_point, want_seed) {
                return Err(format!(
                    "entry {offset} is (point {point}, seed {seed}), \
                     expected (point {want_point}, seed {want_seed})"
                ));
            }
            if summary.seed != seed {
                return Err(format!(
                    "entry {offset}: summary seed {} disagrees with entry seed {seed}",
                    summary.seed
                ));
            }
            entries.push(ChunkEntry {
                point,
                seed,
                summary,
            });
        }
        Ok(entries)
    })()
    .map_err(invalid)?;
    Ok(Some(entries))
}

/// Initializes (or re-validates) a checkpoint directory for the plan: the
/// directory is created if needed, and a manifest is written on first use
/// or checked against the plan's fingerprint on every later use.
pub fn ensure_manifest(dir: &Path, plan: &SweepPlan) -> Result<(), CheckpointError> {
    fs::create_dir_all(dir).map_err(|e| fail(format!("{}: {e}", dir.display())))?;
    let path = dir.join("manifest.json");
    if path.exists() {
        let existing = read_manifest_doc(dir)?;
        let fp = fingerprint(&existing.to_json_string());
        if fp != plan.fingerprint {
            return Err(fail(format!(
                "{}: checkpoint was created for a different scenario document \
                 (fingerprint {fp}, this sweep is {})",
                path.display(),
                plan.fingerprint
            )));
        }
        return Ok(());
    }
    write_atomic(&path, &write_string(&plan.manifest_json()))
}

/// Reads the scenario document embedded in a checkpoint's manifest.
pub fn read_manifest_doc(dir: &Path) -> Result<ScenarioFile, CheckpointError> {
    let path = dir.join("manifest.json");
    let text = fs::read_to_string(&path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    let invalid = |message: String| fail(format!("{}: {message}", path.display()));
    let tree = parse(&text).map_err(|e| invalid(format!("not valid JSON: {e}")))?;
    let ctx = Ctx::root(&tree);
    let mut obj = ctx.object().map_err(|e| invalid(e.to_string()))?;
    let format = obj
        .req("format")
        .and_then(|c| c.ctx().str().map(str::to_string))
        .map_err(|e| invalid(e.to_string()))?;
    if format != MANIFEST_FORMAT {
        return Err(invalid(format!("unsupported manifest format {format:?}")));
    }
    let doc_ctx = obj.req("doc").map_err(|e| invalid(e.to_string()))?;
    ScenarioFile::from_json(doc_ctx.ctx().json()).map_err(|e| invalid(e.to_string()))
}

/// The path of chunk `index` inside `dir`.
#[must_use]
pub fn chunk_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(chunk_file_name(index))
}

/// Executes the runs of one chunk on the work-stealing pool and returns
/// the entries in grid order. Consecutive runs of the same point form one
/// seed segment, and all of a chunk's segments execute as **one**
/// cross-point packed pool (`mbaa::stream_segments`): shape-compatible
/// neighbouring points share seed-batched engine launches, so a chunk
/// spanning a point boundary no longer pays one under-full launch per
/// point. Chunk bytes depend only on the summaries, which are
/// bit-identical to the per-point path, so resumable checkpoints stay
/// byte-identical.
pub fn execute_chunk(
    plan: &SweepPlan,
    index: usize,
    workers: Option<usize>,
) -> Result<Vec<ChunkEntry>, CheckpointError> {
    execute_chunk_metrics(plan, index, workers, None)
}

/// [`execute_chunk`] with an optional metrics sink: when present, every
/// run's telemetry is folded into it through the registry-merging
/// streaming path. The summaries are bit-identical either way, and the
/// merged registry is bit-identical for every worker count — counter
/// addition commutes, so completion order cannot show through.
pub fn execute_chunk_metrics(
    plan: &SweepPlan,
    index: usize,
    workers: Option<usize>,
    metrics: Option<&mut MetricsRegistry>,
) -> Result<Vec<ChunkEntry>, CheckpointError> {
    let range = plan.chunk_range(index);
    // Gather the chunk's per-point seed segments in grid order.
    let mut segments: Vec<(Scenario, Vec<u64>)> = Vec::new();
    let mut segment_points: Vec<usize> = Vec::new();
    let mut cursor = range.start;
    while cursor < range.end {
        let (point, _) = plan.pair(cursor);
        // Extend over every consecutive run of the same point.
        let mut stop = cursor + 1;
        while stop < range.end && plan.pair(stop).0 == point {
            stop += 1;
        }
        let seeds: Vec<u64> = (cursor..stop).map(|run| plan.pair(run).1).collect();
        segments.push((plan.points[point].1.clone(), seeds));
        segment_points.push(point);
        cursor = stop;
    }
    let results = match metrics {
        Some(sink) => {
            let (results, local) = mbaa::stream_segments_metrics(&segments, workers);
            sink.merge(&local);
            results
        }
        None => mbaa::stream_segments(&segments, workers),
    };
    let mut entries = Vec::with_capacity(range.len());
    for (&point, result) in segment_points.iter().zip(results) {
        let result = result.map_err(|e| fail(format!("point {point} failed: {e}")))?;
        for summary in result.runs {
            entries.push(ChunkEntry {
                point,
                seed: summary.seed,
                summary,
            });
        }
    }
    Ok(entries)
}
