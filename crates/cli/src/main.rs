use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(u8::try_from(mbaa_cli::run_cli(&args)).unwrap_or(1))
}
