//! The `mbaa` command line: executes committed `*.scenario.json` files on
//! the work-stealing pool, shards large sweeps into resumable checkpoints,
//! and merges checkpoint directories into reports that are byte-identical
//! to an uninterrupted run.
//!
//! The subcommand surface (full reference in `docs/cli.md`):
//!
//! | command | what it does |
//! |---|---|
//! | `run` | execute a scenario file, print per-point tables, optionally write a report |
//! | `sweep` | execute through a checkpoint directory, one chunk file at a time |
//! | `resume` | finish an interrupted `sweep` from its checkpoint directory |
//! | `merge` | assemble a completed checkpoint directory into one report |
//! | `validate` | parse scenario files, reporting `line:col`-anchored errors |
//! | `explain` | show how a file expands: bounds, points, seeds |
//! | `gallery` | list the committed reproduction scenarios; `--run` re-executes each one |
//!
//! Exit codes: `0` success, `1` execution or validation failure, `2`
//! usage error. All output is deterministic — tables and reports depend
//! only on the scenario file, never on thread scheduling or worker count.

pub mod checkpoint;
pub mod report;

use std::fs;
use std::path::{Path, PathBuf};

use mbaa::prelude::*;
use mbaa_json::{topology_label, write_string, ScenarioFile};

use checkpoint::{CheckpointError, SweepPlan, DEFAULT_CHUNK_SIZE};
use report::ReportPoint;

/// Process exit code for success.
pub const EXIT_OK: i32 = 0;
/// Process exit code for an execution or validation failure.
pub const EXIT_FAILURE: i32 = 1;
/// Process exit code for a usage error (bad flags, missing arguments).
pub const EXIT_USAGE: i32 = 2;

/// Seeds kept per point when `--smoke` trims a batch for CI.
const SMOKE_SEEDS: usize = 2;

const USAGE: &str = "\
mbaa — approximate agreement under mobile Byzantine faults

USAGE:
    mbaa <command> [options]

COMMANDS:
    run <file>       Execute a scenario file and print per-point results
                       --workers <n>   cap worker threads
                       --out <path>    write the merged report JSON
                       --smoke         trim each point to 2 seeds (CI mode)
    sweep <file>     Execute through a resumable checkpoint directory
                       --checkpoint <dir>   where chunks live (required)
                       --chunk-size <n>     runs per chunk (default 64)
                       --chunks <a>..<b>    only execute chunk indices [a, b)
                       --workers <n>        cap worker threads
    resume <dir>     Finish an interrupted sweep from its checkpoint
                       --workers <n>        cap worker threads
    merge <dir>      Assemble a completed checkpoint into one report
                       --out <path>    write the report (default: stdout)
    validate <file>...   Parse scenario files; errors carry line:col
    explain <file>   Show how a file expands: bounds, points, seeds
    gallery [dir]    List committed scenarios (default dir: scenarios)
                       --run           execute each scenario after listing it
                       --smoke         with --run: trim each point to 2 seeds
                       --workers <n>   with --run: cap worker threads
                       --out <dir>     with --run: write <dir>/<name>.report.json per scenario
    help             Show this message

EXIT CODES:
    0  success    1  execution/validation failure    2  usage error";

/// A failure on its way to becoming an exit code.
enum CliError {
    /// Wrong invocation: prints to stderr and exits 2.
    Usage(String),
    /// A real failure (unparseable file, failed run): exits 1.
    Failure(String),
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        CliError::Failure(e.to_string())
    }
}

/// Runs the CLI against `args` (without the program name) and returns the
/// process exit code.
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let outcome = match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("gallery") => cmd_gallery(&args[1..]),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match outcome {
        Ok(()) => EXIT_OK,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("run `mbaa help` for usage");
            EXIT_USAGE
        }
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            EXIT_FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Option parsing (hand-rolled; the workspace takes no external deps).
// ---------------------------------------------------------------------------

/// Parsed flags plus positional arguments.
struct Opts {
    positional: Vec<String>,
    workers: Option<usize>,
    out: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    chunk_size: Option<usize>,
    chunks: Option<(usize, usize)>,
    smoke: bool,
    run: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut opts = Opts {
        positional: Vec::new(),
        workers: None,
        out: None,
        checkpoint: None,
        chunk_size: None,
        chunks: None,
        smoke: false,
        run: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--workers" => {
                let raw = value_of("--workers")?;
                opts.workers = Some(parse_count("--workers", &raw)?);
            }
            "--out" => opts.out = Some(PathBuf::from(value_of("--out")?)),
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value_of("--checkpoint")?)),
            "--chunk-size" => {
                let raw = value_of("--chunk-size")?;
                opts.chunk_size = Some(parse_count("--chunk-size", &raw)?);
            }
            "--chunks" => {
                let raw = value_of("--chunks")?;
                let (a, b) = raw
                    .split_once("..")
                    .ok_or_else(|| CliError::Usage("--chunks wants <a>..<b>".to_string()))?;
                let a = a
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad chunk index {a:?}")))?;
                let b = b
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad chunk index {b:?}")))?;
                if a >= b {
                    return Err(CliError::Usage(format!("empty chunk range {raw}")));
                }
                opts.chunks = Some((a, b));
            }
            "--smoke" => opts.smoke = true,
            "--run" => opts.run = true,
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag}")));
            }
            _ => opts.positional.push(arg.clone()),
        }
    }
    Ok(opts)
}

fn parse_count(flag: &str, raw: &str) -> Result<usize, CliError> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::Usage(format!(
            "{flag} wants a positive integer, got {raw:?}"
        ))),
    }
}

fn one_positional(opts: &Opts, what: &str) -> Result<PathBuf, CliError> {
    match opts.positional.as_slice() {
        [one] => Ok(PathBuf::from(one)),
        [] => Err(CliError::Usage(format!("missing {what}"))),
        _ => Err(CliError::Usage(format!("expected exactly one {what}"))),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

fn load_doc(path: &Path) -> Result<ScenarioFile, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    ScenarioFile::parse_str(&text)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))
}

/// `--smoke`: keep the first [`SMOKE_SEEDS`] of the normalized batch so a
/// CI pass over the whole gallery stays cheap while still executing every
/// point of every scenario. Determinism is untouched — the trimmed batch
/// is itself a fixed function of the file.
fn apply_smoke(doc: &ScenarioFile) -> ScenarioFile {
    let mut seeds = doc.seeds.seeds();
    seeds.sort_unstable();
    seeds.dedup();
    seeds.truncate(SMOKE_SEEDS);
    let mut trimmed = doc.clone();
    trimmed.seeds = mbaa_json::SeedSpec::List(seeds);
    trimmed
}

/// One table row per point: label, runs, success rate, mean rounds, mean
/// contraction.
fn print_point_table(points: &[(String, Scenario)], rows: &[ReportPoint]) {
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(["point".len()])
        .max()
        .unwrap_or(5);
    println!(
        "{:<label_width$}  {:>5}  {:>9}  {:>11}  {:>12}",
        "point", "runs", "success", "mean rounds", "contraction"
    );
    for (row, (_, scenario)) in rows.iter().zip(points) {
        let aggregate = row.aggregate(scenario);
        let mean_rounds = aggregate
            .mean_rounds()
            .map_or_else(|| "-".to_string(), |r| format!("{r:.2}"));
        let contraction = aggregate
            .mean_contraction()
            .map_or_else(|| "-".to_string(), |c| format!("{c:.4}"));
        println!(
            "{:<label_width$}  {:>5}  {:>8.1}%  {:>11}  {:>12}",
            row.label,
            row.runs.len(),
            aggregate.success_rate() * 100.0,
            mean_rounds,
            contraction
        );
    }
}

fn write_report(
    doc: &ScenarioFile,
    points: &[(String, Scenario)],
    rows: &[ReportPoint],
    out: Option<&Path>,
) -> Result<(), CliError> {
    let text = write_string(&report::report_json(doc, points, rows));
    match out {
        Some(path) => {
            checkpoint::write_atomic(path, &text)?;
            println!("report written to {}", path.display());
        }
        None => println!("{text}"),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

/// The labelled scenario points of a plan, as `print_point_table` and
/// `write_report` consume them.
type LabelledPoints = Vec<(String, Scenario)>;

/// Executes every point of `doc` and returns the labelled points with one
/// report row each. One plan with a single all-covering chunk per point
/// keeps `run`, `gallery --run`, and `sweep` on the same execution path —
/// that shared path is what makes their reports byte-identical.
fn execute_doc(
    doc: &ScenarioFile,
    workers: Option<usize>,
) -> Result<(LabelledPoints, Vec<ReportPoint>), CliError> {
    let plan = SweepPlan::new(doc, doc.seeds.seeds().len().max(1));
    let mut rows = Vec::with_capacity(plan.points.len());
    for (index, (label, _)) in plan.points.iter().enumerate() {
        let entries = checkpoint::execute_chunk(&plan, index, workers)?;
        rows.push(ReportPoint {
            label: label.clone(),
            runs: entries.into_iter().map(|e| e.summary).collect(),
        });
    }
    Ok((plan.points, rows))
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "scenario file")?;
    let mut doc = load_doc(&path)?;
    if opts.smoke {
        doc = apply_smoke(&doc);
    }
    let (points, rows) = execute_doc(&doc, opts.workers)?;
    print_point_table(&points, &rows);
    if opts.out.is_some() {
        write_report(&doc, &points, &rows, opts.out.as_deref())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// sweep / resume
// ---------------------------------------------------------------------------

fn run_chunks(
    dir: &Path,
    plan: &SweepPlan,
    only: Option<(usize, usize)>,
    workers: Option<usize>,
) -> Result<(), CliError> {
    checkpoint::ensure_manifest(dir, plan)?;
    let total = plan.chunk_count();
    let (lo, hi) = match only {
        Some((a, b)) => (a.min(total), b.min(total)),
        None => (0, total),
    };
    let mut executed = 0usize;
    let mut skipped = 0usize;
    for index in lo..hi {
        if checkpoint::read_chunk(dir, plan, index)?.is_some() {
            skipped += 1;
            continue;
        }
        let entries = checkpoint::execute_chunk(plan, index, workers)?;
        let text = write_string(&checkpoint::chunk_json(plan, index, &entries));
        checkpoint::write_atomic(&checkpoint::chunk_path(dir, index), &text)?;
        executed += 1;
        println!(
            "chunk {index:>5}/{total}: {} runs written",
            plan.chunk_range(index).len()
        );
    }
    println!(
        "{executed} chunk(s) executed, {skipped} already complete, \
         {total} total ({} runs over {} points)",
        plan.total_runs(),
        plan.points.len()
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "scenario file")?;
    let dir = opts
        .checkpoint
        .clone()
        .ok_or_else(|| CliError::Usage("sweep needs --checkpoint <dir>".to_string()))?;
    let doc = load_doc(&path)?;
    let plan = SweepPlan::new(&doc, opts.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE));
    run_chunks(&dir, &plan, opts.chunks, opts.workers)
}

fn cmd_resume(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let dir = one_positional(&opts, "checkpoint directory")?;
    let doc = checkpoint::read_manifest_doc(&dir)?;
    let chunk_size = read_manifest_chunk_size(&dir)?;
    let plan = SweepPlan::new(&doc, chunk_size);
    run_chunks(&dir, &plan, opts.chunks, opts.workers)
}

/// The chunk size is part of the grid geometry, so `resume` must reuse
/// the manifest's value — a different `--chunk-size` would re-shard the
/// grid and invalidate every completed chunk.
fn read_manifest_chunk_size(dir: &Path) -> Result<usize, CliError> {
    let path = dir.join("manifest.json");
    let text = fs::read_to_string(&path)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    let tree = mbaa_json::parse(&text)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    let ctx = mbaa_json::Ctx::root(&tree);
    let mut obj = ctx
        .object()
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    obj.req("chunk_size")
        .and_then(|c| c.ctx().usize())
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

fn cmd_merge(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let dir = one_positional(&opts, "checkpoint directory")?;
    let doc = checkpoint::read_manifest_doc(&dir)?;
    let plan = SweepPlan::new(&doc, read_manifest_chunk_size(&dir)?);
    let mut missing = Vec::new();
    let mut per_point: Vec<Vec<RunSummary>> = vec![Vec::new(); plan.points.len()];
    for index in 0..plan.chunk_count() {
        match checkpoint::read_chunk(&dir, &plan, index)? {
            Some(entries) => {
                for entry in entries {
                    per_point[entry.point].push(entry.summary);
                }
            }
            None => missing.push(index),
        }
    }
    if !missing.is_empty() {
        return Err(CliError::Failure(format!(
            "checkpoint is incomplete: {} of {} chunks missing (first missing: {}); \
             run `mbaa resume {}` to finish it",
            missing.len(),
            plan.chunk_count(),
            checkpoint::chunk_file_name(missing[0]),
            dir.display()
        )));
    }
    let rows: Vec<ReportPoint> = plan
        .points
        .iter()
        .zip(per_point)
        .map(|((label, _), runs)| ReportPoint {
            label: label.clone(),
            runs,
        })
        .collect();
    write_report(&doc, &plan.points, &rows, opts.out.as_deref())
}

// ---------------------------------------------------------------------------
// validate / explain / gallery
// ---------------------------------------------------------------------------

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if opts.positional.is_empty() {
        return Err(CliError::Usage(
            "validate needs at least one scenario file".to_string(),
        ));
    }
    let mut failures = 0usize;
    for raw in &opts.positional {
        let path = Path::new(raw);
        match fs::read_to_string(path) {
            Ok(text) => match ScenarioFile::parse_str(&text) {
                Ok(doc) => {
                    let points = doc.points();
                    println!(
                        "{}: ok ({}, {} point(s), {} seed(s))",
                        path.display(),
                        doc.name,
                        points.len(),
                        doc.seeds.seeds().len()
                    );
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(CliError::Failure(format!(
            "{failures} of {} file(s) failed validation",
            opts.positional.len()
        )));
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "scenario file")?;
    let doc = load_doc(&path)?;
    let scenario = &doc.scenario;
    println!("name:        {}", doc.name);
    if let Some(title) = &doc.title {
        println!("title:       {title}");
    }
    if let Some(reproduces) = &doc.reproduces {
        println!("reproduces:  {reproduces}");
    }
    let required = scenario.model.required_processes(scenario.f);
    println!(
        "model:       {:?} (n = {}, f = {}; bound needs n \u{2265} {}{})",
        scenario.model,
        scenario.n,
        scenario.f,
        required,
        if scenario.n >= required {
            ", satisfied"
        } else if scenario.allow_bound_violation {
            ", VIOLATED by request"
        } else {
            ", VIOLATED"
        }
    );
    println!(
        "protocol:    epsilon = {}, max_rounds = {}",
        scenario.epsilon, scenario.max_rounds
    );
    println!("topology:    {}", topology_label(&scenario.topology));
    println!(
        "adversary:   {:?} / {:?}",
        scenario.mobility, scenario.corruption
    );
    let seeds = doc.seeds.seeds();
    println!("seeds:       {} ({} after normalization)", seeds.len(), {
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    });
    let points = doc.points();
    println!("points:      {}", points.len());
    for (label, point) in &points {
        println!(
            "  - {label}: n = {}, f = {}, topology = {}",
            point.n,
            point.f,
            topology_label(&point.topology)
        );
    }
    Ok(())
}

fn cmd_gallery(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if !opts.run && (opts.smoke || opts.workers.is_some() || opts.out.is_some()) {
        return Err(CliError::Usage(
            "--smoke/--workers/--out only make sense with gallery --run".to_string(),
        ));
    }
    let dir = match opts.positional.as_slice() {
        [] => PathBuf::from("scenarios"),
        [one] => PathBuf::from(one),
        _ => {
            return Err(CliError::Usage(
                "expected at most one directory".to_string(),
            ))
        }
    };
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| CliError::Failure(format!("{}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".scenario.json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Failure(format!(
            "{}: no *.scenario.json files",
            dir.display()
        )));
    }
    println!(
        "{} committed scenario(s) in {}:",
        paths.len(),
        dir.display()
    );
    if let Some(out_dir) = opts.out.as_deref() {
        fs::create_dir_all(out_dir)
            .map_err(|e| CliError::Failure(format!("{}: {e}", out_dir.display())))?;
    }
    for path in &paths {
        let mut doc = load_doc(path)?;
        let points = doc.points();
        let seeds = doc.seeds.seeds().len();
        println!();
        println!("  {} ({})", doc.name, path.display());
        if let Some(title) = &doc.title {
            println!("    {title}");
        }
        if let Some(reproduces) = &doc.reproduces {
            println!("    reproduces: {reproduces}");
        }
        println!(
            "    {} point(s) \u{d7} {} seed(s); run with: mbaa run {}",
            points.len(),
            seeds,
            path.display()
        );
        if opts.run {
            // `gallery --run` regenerates every committed scenario's
            // results through the exact per-file execution path of
            // `mbaa run`, so a CI pass is one invocation instead of a
            // shell loop and the reports stay byte-identical to it.
            if opts.smoke {
                doc = apply_smoke(&doc);
            }
            let (run_points, rows) = execute_doc(&doc, opts.workers)?;
            println!();
            print_point_table(&run_points, &rows);
            if let Some(out_dir) = opts.out.as_deref() {
                let report_path = out_dir.join(format!("{}.report.json", doc.name));
                write_report(&doc, &run_points, &rows, Some(&report_path))?;
            }
        }
    }
    Ok(())
}
