//! The `mbaa` command line: executes committed `*.scenario.json` files on
//! the work-stealing pool, shards large sweeps into resumable checkpoints,
//! and merges checkpoint directories into reports that are byte-identical
//! to an uninterrupted run.
//!
//! The subcommand surface (full reference in `docs/cli.md`):
//!
//! | command | what it does |
//! |---|---|
//! | `run` | execute a scenario file, print per-point tables, optionally write a report |
//! | `sweep` | execute through a checkpoint directory, one chunk file at a time |
//! | `resume` | finish an interrupted `sweep` from its checkpoint directory |
//! | `merge` | assemble a completed checkpoint directory into one report |
//! | `report` | render an `mbaa-metrics/1` document (or fold an events JSONL stream) as a table |
//! | `validate` | parse scenario files, reporting `line:col`-anchored errors |
//! | `explain` | show how a file expands: bounds, points, seeds |
//! | `gallery` | list the committed reproduction scenarios; `--run` re-executes each one |
//!
//! Telemetry rides along without disturbing any of it: `--metrics-out`
//! (on `run`, `sweep`, `resume`, and `gallery --run`) aggregates every
//! executed run into a canonical `mbaa-metrics/1` document, `run
//! --events-out` writes the per-round event stream as JSONL, `run
//! --profile` prints the sanctioned wall-clock phase breakdown to stderr,
//! and `--progress` keeps a live stderr line with throughput and ETA.
//! See `docs/observability.md`.
//!
//! Exit codes: `0` success, `1` execution or validation failure, `2`
//! usage error. All stdout output is deterministic — tables and reports
//! depend only on the scenario file, never on thread scheduling or worker
//! count; wall-clock readings (`--progress`, `--profile`) go to stderr
//! only.

pub mod checkpoint;
pub mod report;

use std::fs;
use std::path::{Path, PathBuf};

use mbaa::prelude::*;
use mbaa_json::{topology_label, write_string, ScenarioFile};

use checkpoint::{CheckpointError, SweepPlan, DEFAULT_CHUNK_SIZE};
use report::ReportPoint;

/// Process exit code for success.
pub const EXIT_OK: i32 = 0;
/// Process exit code for an execution or validation failure.
pub const EXIT_FAILURE: i32 = 1;
/// Process exit code for a usage error (bad flags, missing arguments).
pub const EXIT_USAGE: i32 = 2;

/// Seeds kept per point when `--smoke` trims a batch for CI.
const SMOKE_SEEDS: usize = 2;

const USAGE: &str = "\
mbaa — approximate agreement under mobile Byzantine faults

USAGE:
    mbaa <command> [options]

COMMANDS:
    run <file>       Execute a scenario file and print per-point results
                       --workers <n>        cap worker threads
                       --out <path>         write the merged report JSON
                       --smoke              trim each point to 2 seeds (CI mode)
                       --metrics-out <path> write the aggregated mbaa-metrics/1 document
                       --events-out <path>  write the per-round telemetry stream as JSONL
                       --profile            print the wall-clock phase breakdown (stderr)
                       --progress           live stderr progress line (points/s, ETA)
    sweep <file>     Execute through a resumable checkpoint directory
                       --checkpoint <dir>   where chunks live (required)
                       --chunk-size <n>     runs per chunk (default 64)
                       --chunks <a>..<b>    only execute chunk indices [a, b)
                       --workers <n>        cap worker threads
                       --metrics-out <path> metrics of the chunks executed THIS invocation
                       --progress           live stderr progress line (chunks/s, ETA)
    resume <dir>     Finish an interrupted sweep from its checkpoint
                       --workers <n>        cap worker threads
                       --metrics-out <path> metrics of the chunks executed THIS invocation
                       --progress           live stderr progress line (chunks/s, ETA)
    merge <dir>      Assemble a completed checkpoint into one report
                       --out <path>    write the report (default: stdout)
    report <file>    Render an mbaa-metrics/1 document — or fold an
                     events JSONL stream into one — as a table
                       --out <path>    also write the canonical metrics document
    validate <file>...   Parse scenario files; errors carry line:col
    explain <file>   Show how a file expands: bounds, points, seeds
    gallery [dir]    List committed scenarios (default dir: scenarios)
                       --run           execute each scenario after listing it
                       --smoke         with --run: trim each point to 2 seeds
                       --workers <n>   with --run: cap worker threads
                       --out <dir>     with --run: write <dir>/<name>.report.json per scenario
                       --metrics-out <path>  with --run: one merged metrics document
                       --progress      with --run: live stderr progress line
    help             Show this message

EXIT CODES:
    0  success    1  execution/validation failure    2  usage error";

/// A failure on its way to becoming an exit code.
enum CliError {
    /// Wrong invocation: prints to stderr and exits 2.
    Usage(String),
    /// A real failure (unparseable file, failed run): exits 1.
    Failure(String),
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        CliError::Failure(e.to_string())
    }
}

/// Runs the CLI against `args` (without the program name) and returns the
/// process exit code.
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let outcome = match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("gallery") => cmd_gallery(&args[1..]),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match outcome {
        Ok(()) => EXIT_OK,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("run `mbaa help` for usage");
            EXIT_USAGE
        }
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            EXIT_FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Option parsing (hand-rolled; the workspace takes no external deps).
// ---------------------------------------------------------------------------

/// Parsed flags plus positional arguments.
struct Opts {
    positional: Vec<String>,
    workers: Option<usize>,
    out: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    chunk_size: Option<usize>,
    chunks: Option<(usize, usize)>,
    smoke: bool,
    run: bool,
    metrics_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    profile: bool,
    progress: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut opts = Opts {
        positional: Vec::new(),
        workers: None,
        out: None,
        checkpoint: None,
        chunk_size: None,
        chunks: None,
        smoke: false,
        run: false,
        metrics_out: None,
        events_out: None,
        profile: false,
        progress: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--workers" => {
                let raw = value_of("--workers")?;
                opts.workers = Some(parse_count("--workers", &raw)?);
            }
            "--out" => opts.out = Some(PathBuf::from(value_of("--out")?)),
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value_of("--checkpoint")?)),
            "--chunk-size" => {
                let raw = value_of("--chunk-size")?;
                opts.chunk_size = Some(parse_count("--chunk-size", &raw)?);
            }
            "--chunks" => {
                let raw = value_of("--chunks")?;
                let (a, b) = raw
                    .split_once("..")
                    .ok_or_else(|| CliError::Usage("--chunks wants <a>..<b>".to_string()))?;
                let a = a
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad chunk index {a:?}")))?;
                let b = b
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad chunk index {b:?}")))?;
                if a >= b {
                    return Err(CliError::Usage(format!("empty chunk range {raw}")));
                }
                opts.chunks = Some((a, b));
            }
            "--metrics-out" => {
                opts.metrics_out = Some(PathBuf::from(value_of("--metrics-out")?));
            }
            "--events-out" => {
                opts.events_out = Some(PathBuf::from(value_of("--events-out")?));
            }
            "--smoke" => opts.smoke = true,
            "--run" => opts.run = true,
            "--profile" => opts.profile = true,
            "--progress" => opts.progress = true,
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag}")));
            }
            _ => opts.positional.push(arg.clone()),
        }
    }
    Ok(opts)
}

fn parse_count(flag: &str, raw: &str) -> Result<usize, CliError> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::Usage(format!(
            "{flag} wants a positive integer, got {raw:?}"
        ))),
    }
}

fn one_positional(opts: &Opts, what: &str) -> Result<PathBuf, CliError> {
    match opts.positional.as_slice() {
        [one] => Ok(PathBuf::from(one)),
        [] => Err(CliError::Usage(format!("missing {what}"))),
        _ => Err(CliError::Usage(format!("expected exactly one {what}"))),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

fn load_doc(path: &Path) -> Result<ScenarioFile, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    ScenarioFile::parse_str(&text)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))
}

/// `--smoke`: keep the first [`SMOKE_SEEDS`] of the normalized batch so a
/// CI pass over the whole gallery stays cheap while still executing every
/// point of every scenario. Determinism is untouched — the trimmed batch
/// is itself a fixed function of the file.
fn apply_smoke(doc: &ScenarioFile) -> ScenarioFile {
    let mut seeds = doc.seeds.seeds();
    seeds.sort_unstable();
    seeds.dedup();
    seeds.truncate(SMOKE_SEEDS);
    let mut trimmed = doc.clone();
    trimmed.seeds = mbaa_json::SeedSpec::List(seeds);
    trimmed
}

/// One table row per point: label, runs, success rate, mean rounds, mean
/// contraction.
fn print_point_table(points: &[(String, Scenario)], rows: &[ReportPoint]) {
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(["point".len()])
        .max()
        .unwrap_or(5);
    println!(
        "{:<label_width$}  {:>5}  {:>9}  {:>11}  {:>12}",
        "point", "runs", "success", "mean rounds", "contraction"
    );
    for (row, (_, scenario)) in rows.iter().zip(points) {
        let aggregate = row.aggregate(scenario);
        let mean_rounds = aggregate
            .mean_rounds()
            .map_or_else(|| "-".to_string(), |r| format!("{r:.2}"));
        let contraction = aggregate
            .mean_contraction()
            .map_or_else(|| "-".to_string(), |c| format!("{c:.4}"));
        println!(
            "{:<label_width$}  {:>5}  {:>8.1}%  {:>11}  {:>12}",
            row.label,
            row.runs.len(),
            aggregate.success_rate() * 100.0,
            mean_rounds,
            contraction
        );
    }
}

fn write_report(
    doc: &ScenarioFile,
    points: &[(String, Scenario)],
    rows: &[ReportPoint],
    out: Option<&Path>,
) -> Result<(), CliError> {
    let text = write_string(&report::report_json(doc, points, rows));
    match out {
        Some(path) => {
            checkpoint::write_atomic(path, &text)?;
            println!("report written to {}", path.display());
        }
        None => println!("{text}"),
    }
    Ok(())
}

/// Writes an aggregated registry as a canonical `mbaa-metrics/1` document.
fn write_metrics(path: &Path, metrics: &MetricsRegistry) -> Result<(), CliError> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)
            .map_err(|e| CliError::Failure(format!("{}: {e}", parent.display())))?;
    }
    let text = write_string(&mbaa_json::metrics_to_json(metrics));
    checkpoint::write_atomic(path, &text)?;
    println!("metrics written to {}", path.display());
    Ok(())
}

/// `--progress`: one carriage-return-rewritten stderr line with
/// throughput and ETA. Never touches stdout, so tables and reports stay
/// byte-identical with or without it; the wall clock it reads is the
/// sanctioned [`Stopwatch`](mbaa::obs::timing::Stopwatch).
fn progress_line(unit: &str, done: usize, total: usize, watch: &mbaa::obs::timing::Stopwatch) {
    let elapsed = watch.elapsed_secs();
    let rate = if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        0.0
    };
    let eta = if rate > 0.0 {
        (total.saturating_sub(done)) as f64 / rate
    } else {
        0.0
    };
    eprint!("\r{done}/{total} {unit}(s) \u{b7} {rate:.1} {unit}s/s \u{b7} ETA {eta:.0}s    ");
    if done == total {
        eprintln!();
    }
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

/// The labelled scenario points of a plan, as `print_point_table` and
/// `write_report` consume them.
type LabelledPoints = Vec<(String, Scenario)>;

/// Executes every point of `doc` and returns the labelled points with one
/// report row each. One plan with a single all-covering chunk per point
/// keeps `run`, `gallery --run`, and `sweep` on the same execution path —
/// that shared path is what makes their reports byte-identical. When a
/// metrics sink is supplied, every run's telemetry is folded into it;
/// `progress` keeps a live stderr line (stdout is untouched by both).
fn execute_doc(
    doc: &ScenarioFile,
    workers: Option<usize>,
    mut metrics: Option<&mut MetricsRegistry>,
    progress: bool,
) -> Result<(LabelledPoints, Vec<ReportPoint>), CliError> {
    let plan = SweepPlan::new(doc, doc.seeds.seeds().len().max(1));
    let total = plan.points.len();
    let watch = mbaa::obs::timing::Stopwatch::start();
    let mut rows = Vec::with_capacity(plan.points.len());
    for (index, (label, _)) in plan.points.iter().enumerate() {
        let entries =
            checkpoint::execute_chunk_metrics(&plan, index, workers, metrics.as_deref_mut())?;
        rows.push(ReportPoint {
            label: label.clone(),
            runs: entries.into_iter().map(|e| e.summary).collect(),
        });
        if progress {
            progress_line("point", index + 1, total, &watch);
        }
    }
    Ok((plan.points, rows))
}

/// `--events-out`: replays every `(point, seed)` run on the scalar engine
/// with an [`EventLog`] attached and writes one kind-tagged JSON line per
/// event, point-major / seed-minor. The replay is sound because results —
/// and therefore event streams — are bit-identical with any observer
/// attached; the tables already printed came from the very same runs.
fn write_events(
    doc: &ScenarioFile,
    points: &[(String, Scenario)],
    path: &Path,
) -> Result<(), CliError> {
    let mut seeds = doc.seeds.seeds();
    seeds.sort_unstable();
    seeds.dedup();
    let mut lines = String::new();
    for (label, scenario) in points {
        for &seed in &seeds {
            let mut log = EventLog::new();
            scenario
                .run_observed(seed, &mut log)
                .map_err(|e| CliError::Failure(format!("{label}, seed {seed}: {e}")))?;
            for event in log.events() {
                lines.push_str(&mbaa_json::write_line(&mbaa_json::event_to_json(event)));
                lines.push('\n');
            }
        }
    }
    // `write_atomic` supplies the trailing newline.
    lines.pop();
    checkpoint::write_atomic(path, &lines)?;
    println!("events written to {}", path.display());
    Ok(())
}

/// `--profile`: replays every `(point, seed)` run sequentially with the
/// sanctioned [`PhaseProfiler`](mbaa::obs::timing::PhaseProfiler) attached
/// and prints the wall-clock phase breakdown to stderr — stdout stays
/// byte-identical to an unprofiled invocation. The profiler reports
/// `enabled() == false`, so the engine skips telemetry assembly and the
/// timings measure the protocol, not the observability layer.
fn profile_doc(doc: &ScenarioFile, points: &[(String, Scenario)]) -> Result<(), CliError> {
    let mut seeds = doc.seeds.seeds();
    seeds.sort_unstable();
    seeds.dedup();
    let mut profiler = mbaa::obs::timing::PhaseProfiler::new();
    for (label, scenario) in points {
        for &seed in &seeds {
            scenario
                .run_observed(seed, &mut profiler)
                .map_err(|e| CliError::Failure(format!("{label}, seed {seed}: {e}")))?;
        }
    }
    eprintln!(
        "wall-clock phase breakdown over {} run(s) (scalar engine):",
        points.len() * seeds.len()
    );
    eprint!("{}", profiler.breakdown().render());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "scenario file")?;
    let mut doc = load_doc(&path)?;
    if opts.smoke {
        doc = apply_smoke(&doc);
    }
    let mut metrics = opts.metrics_out.as_ref().map(|_| MetricsRegistry::new());
    let (points, rows) = execute_doc(&doc, opts.workers, metrics.as_mut(), opts.progress)?;
    print_point_table(&points, &rows);
    if opts.out.is_some() {
        write_report(&doc, &points, &rows, opts.out.as_deref())?;
    }
    if let Some(out) = opts.metrics_out.as_deref() {
        write_metrics(
            out,
            &metrics.expect("registry exists whenever --metrics-out does"),
        )?;
    }
    if let Some(out) = opts.events_out.as_deref() {
        write_events(&doc, &points, out)?;
    }
    if opts.profile {
        profile_doc(&doc, &points)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// sweep / resume
// ---------------------------------------------------------------------------

fn run_chunks(
    dir: &Path,
    plan: &SweepPlan,
    only: Option<(usize, usize)>,
    workers: Option<usize>,
    mut metrics: Option<&mut MetricsRegistry>,
    progress: bool,
) -> Result<(), CliError> {
    checkpoint::ensure_manifest(dir, plan)?;
    let total = plan.chunk_count();
    let (lo, hi) = match only {
        Some((a, b)) => (a.min(total), b.min(total)),
        None => (0, total),
    };
    let watch = mbaa::obs::timing::Stopwatch::start();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    for index in lo..hi {
        if checkpoint::read_chunk(dir, plan, index)?.is_some() {
            skipped += 1;
        } else {
            let entries =
                checkpoint::execute_chunk_metrics(plan, index, workers, metrics.as_deref_mut())?;
            let text = write_string(&checkpoint::chunk_json(plan, index, &entries));
            checkpoint::write_atomic(&checkpoint::chunk_path(dir, index), &text)?;
            executed += 1;
            println!(
                "chunk {index:>5}/{total}: {} runs written",
                plan.chunk_range(index).len()
            );
        }
        if progress {
            progress_line("chunk", index + 1 - lo, hi - lo, &watch);
        }
    }
    println!(
        "{executed} chunk(s) executed, {skipped} already complete, \
         {total} total ({} runs over {} points)",
        plan.total_runs(),
        plan.points.len()
    );
    Ok(())
}

/// The metrics surface of `sweep`/`resume`: `--metrics-out` aggregates the
/// chunks executed by *this* invocation (already-complete chunks are not
/// re-run, so their runs are absent — the full-sweep document comes from
/// `mbaa run --metrics-out` or a single uninterrupted sweep).
fn finish_chunked(opts: &Opts, metrics: Option<MetricsRegistry>) -> Result<(), CliError> {
    if let Some(out) = opts.metrics_out.as_deref() {
        write_metrics(
            out,
            &metrics.expect("registry exists whenever --metrics-out does"),
        )?;
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "scenario file")?;
    let dir = opts
        .checkpoint
        .clone()
        .ok_or_else(|| CliError::Usage("sweep needs --checkpoint <dir>".to_string()))?;
    let doc = load_doc(&path)?;
    let plan = SweepPlan::new(&doc, opts.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE));
    let mut metrics = opts.metrics_out.as_ref().map(|_| MetricsRegistry::new());
    run_chunks(
        &dir,
        &plan,
        opts.chunks,
        opts.workers,
        metrics.as_mut(),
        opts.progress,
    )?;
    finish_chunked(&opts, metrics)
}

fn cmd_resume(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let dir = one_positional(&opts, "checkpoint directory")?;
    let doc = checkpoint::read_manifest_doc(&dir)?;
    let chunk_size = read_manifest_chunk_size(&dir)?;
    let plan = SweepPlan::new(&doc, chunk_size);
    let mut metrics = opts.metrics_out.as_ref().map(|_| MetricsRegistry::new());
    run_chunks(
        &dir,
        &plan,
        opts.chunks,
        opts.workers,
        metrics.as_mut(),
        opts.progress,
    )?;
    finish_chunked(&opts, metrics)
}

/// The chunk size is part of the grid geometry, so `resume` must reuse
/// the manifest's value — a different `--chunk-size` would re-shard the
/// grid and invalidate every completed chunk.
fn read_manifest_chunk_size(dir: &Path) -> Result<usize, CliError> {
    let path = dir.join("manifest.json");
    let text = fs::read_to_string(&path)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    let tree = mbaa_json::parse(&text)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    let ctx = mbaa_json::Ctx::root(&tree);
    let mut obj = ctx
        .object()
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    obj.req("chunk_size")
        .and_then(|c| c.ctx().usize())
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

fn cmd_merge(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let dir = one_positional(&opts, "checkpoint directory")?;
    let doc = checkpoint::read_manifest_doc(&dir)?;
    let plan = SweepPlan::new(&doc, read_manifest_chunk_size(&dir)?);
    let mut missing = Vec::new();
    let mut per_point: Vec<Vec<RunSummary>> = vec![Vec::new(); plan.points.len()];
    for index in 0..plan.chunk_count() {
        match checkpoint::read_chunk(&dir, &plan, index)? {
            Some(entries) => {
                for entry in entries {
                    per_point[entry.point].push(entry.summary);
                }
            }
            None => missing.push(index),
        }
    }
    if !missing.is_empty() {
        return Err(CliError::Failure(format!(
            "checkpoint is incomplete: {} of {} chunks missing (first missing: {}); \
             run `mbaa resume {}` to finish it",
            missing.len(),
            plan.chunk_count(),
            checkpoint::chunk_file_name(missing[0]),
            dir.display()
        )));
    }
    let rows: Vec<ReportPoint> = plan
        .points
        .iter()
        .zip(per_point)
        .map(|((label, _), runs)| ReportPoint {
            label: label.clone(),
            runs,
        })
        .collect();
    write_report(&doc, &plan.points, &rows, opts.out.as_deref())
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

/// Folds an events JSONL stream (one kind-tagged event per line, as
/// written by `mbaa run --events-out`) into a fresh registry.
fn fold_events(path: &Path, text: &str) -> Result<MetricsRegistry, CliError> {
    let mut metrics = MetricsRegistry::new();
    let mut folded = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: &dyn std::fmt::Display| {
            CliError::Failure(format!("{}:{}: {e}", path.display(), lineno + 1))
        };
        let tree = mbaa_json::parse(line).map_err(|e| at(&e))?;
        let event = mbaa_json::event_from(mbaa_json::Ctx::root(&tree)).map_err(|e| at(&e))?;
        metrics.record_event(&event);
        folded += 1;
    }
    if folded == 0 {
        return Err(CliError::Failure(format!(
            "{}: neither an mbaa-metrics/1 document nor a non-empty events JSONL stream",
            path.display()
        )));
    }
    Ok(metrics)
}

fn histogram_rows(histogram: &mbaa::Histogram) -> Vec<(String, u64)> {
    let bounds = histogram.bounds();
    histogram
        .counts()
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let label = match bounds.get(i + 1) {
                Some(hi) => format!("[{}, {})", bounds[i], hi),
                None => format!("[{}, \u{221e})", bounds[i]),
            };
            (label, count)
        })
        .collect()
}

fn print_histogram(title: &str, histogram: &mbaa::Histogram) {
    println!();
    println!("{title} ({} sample(s)):", histogram.total());
    let rows = histogram_rows(histogram);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, count) in rows {
        println!("  {label:<label_width$}  {count:>8}");
    }
}

/// Renders an aggregated registry as the `mbaa report` table.
fn print_metrics_report(metrics: &MetricsRegistry) {
    println!("{:<20}  {:>12}", "counter", "value");
    for (name, value) in [
        ("runs", metrics.runs),
        ("converged", metrics.converged),
        ("validity_failures", metrics.validity_failures),
        ("rounds_total", metrics.rounds_total),
        ("messages_delivered", metrics.messages_delivered),
        ("omissions", metrics.omissions),
        ("link_omissions", metrics.link_omissions),
        ("corruptions", metrics.corruptions),
    ] {
        println!("{name:<20}  {value:>12}");
    }
    println!();
    let rate = metrics
        .convergence_rate()
        .map_or_else(|| "-".to_string(), |r| format!("{:.1}%", r * 100.0));
    let mean = metrics
        .mean_rounds()
        .map_or_else(|| "-".to_string(), |m| format!("{m:.2}"));
    println!("convergence rate: {rate}   mean rounds per run: {mean}");
    print_histogram("rounds to converge", &metrics.rounds_to_converge);
    print_histogram("per-round contraction ratio", &metrics.contraction_ratio);
}

fn cmd_report(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "metrics document or events JSONL file")?;
    let text = fs::read_to_string(&path)
        .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?;
    // Dispatch on shape: a whole-file JSON object carrying a `format` field
    // is the aggregated document; anything else is treated as JSONL.
    let metrics = match mbaa_json::parse(&text) {
        Ok(tree)
            if mbaa_json::Ctx::root(&tree)
                .object()
                .is_ok_and(|mut obj| obj.opt("format").is_some()) =>
        {
            mbaa_json::metrics_from(mbaa_json::Ctx::root(&tree))
                .map_err(|e| CliError::Failure(format!("{}: {e}", path.display())))?
        }
        _ => fold_events(&path, &text)?,
    };
    print_metrics_report(&metrics);
    if let Some(out) = opts.out.as_deref() {
        write_metrics(out, &metrics)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// validate / explain / gallery
// ---------------------------------------------------------------------------

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if opts.positional.is_empty() {
        return Err(CliError::Usage(
            "validate needs at least one scenario file".to_string(),
        ));
    }
    let mut failures = 0usize;
    for raw in &opts.positional {
        let path = Path::new(raw);
        match fs::read_to_string(path) {
            Ok(text) => match ScenarioFile::parse_str(&text) {
                Ok(doc) => {
                    let points = doc.points();
                    println!(
                        "{}: ok ({}, {} point(s), {} seed(s))",
                        path.display(),
                        doc.name,
                        points.len(),
                        doc.seeds.seeds().len()
                    );
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(CliError::Failure(format!(
            "{failures} of {} file(s) failed validation",
            opts.positional.len()
        )));
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let path = one_positional(&opts, "scenario file")?;
    let doc = load_doc(&path)?;
    let scenario = &doc.scenario;
    println!("name:        {}", doc.name);
    if let Some(title) = &doc.title {
        println!("title:       {title}");
    }
    if let Some(reproduces) = &doc.reproduces {
        println!("reproduces:  {reproduces}");
    }
    let required = scenario.model.required_processes(scenario.f);
    println!(
        "model:       {:?} (n = {}, f = {}; bound needs n \u{2265} {}{})",
        scenario.model,
        scenario.n,
        scenario.f,
        required,
        if scenario.n >= required {
            ", satisfied"
        } else if scenario.allow_bound_violation {
            ", VIOLATED by request"
        } else {
            ", VIOLATED"
        }
    );
    println!(
        "protocol:    epsilon = {}, max_rounds = {}",
        scenario.epsilon, scenario.max_rounds
    );
    println!("topology:    {}", topology_label(&scenario.topology));
    println!(
        "adversary:   {:?} / {:?}",
        scenario.mobility, scenario.corruption
    );
    let seeds = doc.seeds.seeds();
    println!("seeds:       {} ({} after normalization)", seeds.len(), {
        let mut s = seeds.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    });
    let points = doc.points();
    println!("points:      {}", points.len());
    for (label, point) in &points {
        println!(
            "  - {label}: n = {}, f = {}, topology = {}",
            point.n,
            point.f,
            topology_label(&point.topology)
        );
    }
    Ok(())
}

fn cmd_gallery(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if !opts.run
        && (opts.smoke
            || opts.workers.is_some()
            || opts.out.is_some()
            || opts.metrics_out.is_some())
    {
        return Err(CliError::Usage(
            "--smoke/--workers/--out/--metrics-out only make sense with gallery --run".to_string(),
        ));
    }
    // One registry across every scenario file: `--metrics-out` on the
    // gallery is the whole-corpus aggregate, not one document per file.
    let mut metrics = opts.metrics_out.as_ref().map(|_| MetricsRegistry::new());
    let dir = match opts.positional.as_slice() {
        [] => PathBuf::from("scenarios"),
        [one] => PathBuf::from(one),
        _ => {
            return Err(CliError::Usage(
                "expected at most one directory".to_string(),
            ))
        }
    };
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| CliError::Failure(format!("{}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".scenario.json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Failure(format!(
            "{}: no *.scenario.json files",
            dir.display()
        )));
    }
    println!(
        "{} committed scenario(s) in {}:",
        paths.len(),
        dir.display()
    );
    if let Some(out_dir) = opts.out.as_deref() {
        fs::create_dir_all(out_dir)
            .map_err(|e| CliError::Failure(format!("{}: {e}", out_dir.display())))?;
    }
    for path in &paths {
        let mut doc = load_doc(path)?;
        let points = doc.points();
        let seeds = doc.seeds.seeds().len();
        println!();
        println!("  {} ({})", doc.name, path.display());
        if let Some(title) = &doc.title {
            println!("    {title}");
        }
        if let Some(reproduces) = &doc.reproduces {
            println!("    reproduces: {reproduces}");
        }
        println!(
            "    {} point(s) \u{d7} {} seed(s); run with: mbaa run {}",
            points.len(),
            seeds,
            path.display()
        );
        if opts.run {
            // `gallery --run` regenerates every committed scenario's
            // results through the exact per-file execution path of
            // `mbaa run`, so a CI pass is one invocation instead of a
            // shell loop and the reports stay byte-identical to it.
            if opts.smoke {
                doc = apply_smoke(&doc);
            }
            let (run_points, rows) =
                execute_doc(&doc, opts.workers, metrics.as_mut(), opts.progress)?;
            println!();
            print_point_table(&run_points, &rows);
            if let Some(out_dir) = opts.out.as_deref() {
                let report_path = out_dir.join(format!("{}.report.json", doc.name));
                write_report(&doc, &run_points, &rows, Some(&report_path))?;
            }
        }
    }
    if let Some(out) = opts.metrics_out.as_deref() {
        write_metrics(
            out,
            &metrics.expect("registry exists whenever --metrics-out does"),
        )?;
    }
    Ok(())
}
