//! The merged sweep report.
//!
//! `mbaa run --out` and `mbaa merge` both funnel through
//! [`report_json`], so a report assembled from checkpoint chunks is
//! byte-identical to one produced by an uninterrupted run — that equality
//! is the resume correctness criterion, and the integration tests assert
//! it on raw bytes.

use mbaa::prelude::*;
use mbaa_json::schema::run_summary_to_json;
use mbaa_json::{Json, ScenarioFile};

/// Format tag of a report document.
pub const REPORT_FORMAT: &str = "mbaa-report/1";

/// One evaluated sweep point: its label plus every per-seed summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportPoint {
    /// The axis label (`n=9`, `flip_rate=0.25`, or the scenario name for
    /// single-point runs).
    pub label: String,
    /// Per-seed rows, in ascending seed order.
    pub runs: Vec<RunSummary>,
}

impl ReportPoint {
    /// The aggregate view of this point (success rate, mean rounds, mean
    /// contraction), computed through the same `ExperimentResult` methods
    /// every other execution path uses.
    #[must_use]
    pub fn aggregate(&self, scenario: &Scenario) -> ExperimentResult {
        ExperimentResult {
            config: scenario.to_experiment(self.runs.iter().map(|r| r.seed)),
            runs: self.runs.clone(),
        }
    }
}

/// Renders the canonical report document for a scenario file and its
/// evaluated points (one [`ReportPoint`] per expanded sweep point, in
/// axis order).
#[must_use]
pub fn report_json(
    doc: &ScenarioFile,
    points: &[(String, Scenario)],
    rows: &[ReportPoint],
) -> Json {
    let point_docs = rows
        .iter()
        .zip(points)
        .map(|(row, (_, scenario))| {
            let aggregate = row.aggregate(scenario);
            Json::object(vec![
                ("label", Json::str(&row.label)),
                ("success_rate", Json::f64(aggregate.success_rate())),
                (
                    "mean_rounds",
                    aggregate.mean_rounds().map_or_else(Json::null, Json::f64),
                ),
                (
                    "mean_contraction",
                    aggregate
                        .mean_contraction()
                        .map_or_else(Json::null, Json::f64),
                ),
                (
                    "runs",
                    Json::array(row.runs.iter().map(run_summary_to_json).collect()),
                ),
            ])
        })
        .collect();
    Json::object(vec![
        ("format", Json::str(REPORT_FORMAT)),
        ("name", Json::str(&doc.name)),
        ("doc", doc.to_json()),
        ("points", Json::array(point_docs)),
    ])
}
