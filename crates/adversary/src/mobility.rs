//! Agent placement strategies: where the `f` agents sit each round.

use std::fmt;

use rand::seq::index::sample_into;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mbaa_types::{ProcessId, ProcessSet};

use crate::AdversaryView;

/// A strategy deciding which processes the `f` mobile agents occupy in a
/// given round.
///
/// All strategies return exactly `min(f, n)` distinct processes. They differ
/// in how adversarial the placement is:
///
/// * [`MobilityStrategy::Stationary`] never moves the agents — the mobile
///   model degenerates to static Byzantine faults (a useful control in the
///   ablation experiments).
/// * [`MobilityStrategy::RoundRobin`] slides the agent block by `f`
///   positions every round, so every process is hit regularly and the number
///   of cured processes is always `f`.
/// * [`MobilityStrategy::Random`] picks `f` fresh processes uniformly at
///   random every round.
/// * [`MobilityStrategy::TargetExtremes`] occupies the non-faulty processes
///   whose votes are currently the extreme ones — the most damaging choice,
///   since it corrupts exactly the states that anchor the correct range and
///   maximises the cured fallout next round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MobilityStrategy {
    /// Agents stay where they started.
    Stationary,
    /// Agents slide over the ring of processes by `f` positions per round.
    #[default]
    RoundRobin,
    /// Agents jump to uniformly random distinct processes every round.
    Random,
    /// Agents occupy the processes holding the currently most extreme votes.
    TargetExtremes,
    /// Agents sweep over the ring one position at a time, maximising the
    /// number of distinct processes that are cured at least once over a
    /// window of rounds (the "slow contagion" pattern).
    Sweep,
    /// Agents occupy the processes holding the most *central* votes —
    /// an attack on median-style voting rules.
    TargetMedian,
}

impl MobilityStrategy {
    /// All strategies, for ablation sweeps.
    pub const ALL: [MobilityStrategy; 6] = [
        MobilityStrategy::Stationary,
        MobilityStrategy::RoundRobin,
        MobilityStrategy::Random,
        MobilityStrategy::TargetExtremes,
        MobilityStrategy::Sweep,
        MobilityStrategy::TargetMedian,
    ];

    /// Chooses the set of processes occupied this round.
    ///
    /// `previous` is the set occupied in the previous round (`None` before
    /// the first placement). The result always has `min(f, n)` members.
    #[must_use]
    pub fn place<R: Rng + ?Sized>(
        &self,
        view: &AdversaryView<'_>,
        f: usize,
        previous: Option<&ProcessSet>,
        rng: &mut R,
    ) -> ProcessSet {
        let mut out = ProcessSet::empty(view.universe());
        let mut order = Vec::new();
        self.place_into(view, f, previous, rng, &mut out, &mut order);
        out
    }

    /// In-place form of [`MobilityStrategy::place`]: overwrites `out` with
    /// the round's placement, reusing its allocation and the caller's
    /// `order` scratch (the sort buffer of the vote-targeting strategies).
    /// Draws, tie-breaking, and the resulting set are identical to
    /// [`place`](MobilityStrategy::place) — once the buffers are warm, no
    /// strategy allocates.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s universe differs from the view's.
    // mbaa: alloc-free
    pub fn place_into<R: Rng + ?Sized>(
        &self,
        view: &AdversaryView<'_>,
        f: usize,
        previous: Option<&ProcessSet>,
        rng: &mut R,
        out: &mut ProcessSet,
        order: &mut Vec<usize>,
    ) {
        let n = view.universe();
        assert_eq!(out.universe(), n, "placement universe mismatch");
        let f = f.min(n);
        out.clear();
        if f == 0 {
            return;
        }
        // Sorting (vote, index) pairs unstably is the same permutation the
        // historical stable sort by vote produced over the ascending index
        // array — ties keep index order — without the merge sort's
        // temporary buffer.
        let sort_by_vote = |order: &mut Vec<usize>| {
            order.clear();
            // mbaa: allow(hot-path/vec-growth, refills the cleared sort scratch to the fixed universe size n)
            order.extend(0..n);
            order.sort_unstable_by(|&a, &b| view.votes[a].cmp(&view.votes[b]).then(a.cmp(&b)));
        };
        match self {
            MobilityStrategy::Stationary => match previous {
                Some(prev) if prev.len() == f => out.copy_from(prev),
                _ => (0..f).for_each(|i| {
                    out.insert(ProcessId::new(i));
                }),
            },
            MobilityStrategy::RoundRobin => {
                let shift = (view.round.index() as usize).wrapping_mul(f) % n;
                for i in 0..f {
                    out.insert(ProcessId::new((shift + i) % n));
                }
            }
            MobilityStrategy::Random => {
                sample_into(rng, n, f, order);
                for &i in order.iter() {
                    out.insert(ProcessId::new(i));
                }
            }
            MobilityStrategy::TargetExtremes => {
                // Sort processes by vote and alternately pick from the two
                // ends: the agents swallow the extreme-most *currently
                // non-faulty* states.
                sort_by_vote(order);
                let mut lo = 0usize;
                let mut hi = n - 1;
                for k in 0..f {
                    let idx = if k % 2 == 0 {
                        let i = order[hi];
                        hi = hi.saturating_sub(1);
                        i
                    } else {
                        let i = order[lo];
                        lo += 1;
                        i
                    };
                    out.insert(ProcessId::new(idx));
                }
            }
            MobilityStrategy::Sweep => {
                let shift = (view.round.index() as usize) % n;
                for i in 0..f {
                    out.insert(ProcessId::new((shift + i) % n));
                }
            }
            MobilityStrategy::TargetMedian => {
                // Sort processes by vote and occupy the ones closest to the
                // median, working outwards.
                sort_by_vote(order);
                let mid = n / 2;
                let mut picked = 0usize;
                let mut offset = 0usize;
                while picked < f {
                    let below = mid.checked_sub(offset);
                    let above = mid + offset;
                    if offset > 0 {
                        if let Some(b) = below {
                            if picked < f && out.insert(ProcessId::new(order[b])) {
                                picked += 1;
                            }
                        }
                    }
                    if above < n && picked < f && out.insert(ProcessId::new(order[above])) {
                        picked += 1;
                    }
                    offset += 1;
                }
            }
        }
    }
}

impl fmt::Display for MobilityStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MobilityStrategy::Stationary => "stationary",
            MobilityStrategy::RoundRobin => "round-robin",
            MobilityStrategy::Random => "random",
            MobilityStrategy::TargetExtremes => "target-extremes",
            MobilityStrategy::Sweep => "sweep",
            MobilityStrategy::TargetMedian => "target-median",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::{Interval, Round, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view(round: u64, votes: &[Value]) -> AdversaryView<'_> {
        AdversaryView {
            round: Round::new(round),
            votes,
            correct_range: Interval::hull(votes.iter().copied()).unwrap(),
        }
    }

    fn votes(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::new(i as f64)).collect()
    }

    #[test]
    fn placements_have_exactly_f_members() {
        let votes = votes(7);
        let mut rng = StdRng::seed_from_u64(0);
        for strategy in MobilityStrategy::ALL {
            for round in 0..5 {
                let v = view(round, &votes);
                let set = strategy.place(&v, 3, None, &mut rng);
                assert_eq!(set.len(), 3, "{strategy} round {round}");
            }
        }
    }

    #[test]
    fn zero_agents_yield_empty_placement() {
        let votes = votes(4);
        let mut rng = StdRng::seed_from_u64(0);
        let v = view(0, &votes);
        assert!(MobilityStrategy::Random
            .place(&v, 0, None, &mut rng)
            .is_empty());
    }

    #[test]
    fn f_larger_than_n_is_clamped() {
        let votes = votes(3);
        let mut rng = StdRng::seed_from_u64(0);
        let v = view(0, &votes);
        let set = MobilityStrategy::RoundRobin.place(&v, 10, None, &mut rng);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn stationary_keeps_previous_placement() {
        let votes = votes(6);
        let mut rng = StdRng::seed_from_u64(0);
        let v0 = view(0, &votes);
        let first = MobilityStrategy::Stationary.place(&v0, 2, None, &mut rng);
        let v1 = view(1, &votes);
        let second = MobilityStrategy::Stationary.place(&v1, 2, Some(&first), &mut rng);
        assert_eq!(first, second);
    }

    #[test]
    fn round_robin_moves_every_round() {
        let votes = votes(6);
        let mut rng = StdRng::seed_from_u64(0);
        let placements: Vec<ProcessSet> = (0..3)
            .map(|r| MobilityStrategy::RoundRobin.place(&view(r, &votes), 2, None, &mut rng))
            .collect();
        assert_eq!(placements[0], ProcessSet::from_indices(6, [0, 1]));
        assert_eq!(placements[1], ProcessSet::from_indices(6, [2, 3]));
        assert_eq!(placements[2], ProcessSet::from_indices(6, [4, 5]));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let votes = votes(9);
        let place = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            MobilityStrategy::Random.place(&view(4, &votes), 3, None, &mut rng)
        };
        assert_eq!(place(5), place(5));
    }

    #[test]
    fn target_extremes_occupies_extreme_votes() {
        let votes = vec![
            Value::new(5.0),
            Value::new(-10.0),
            Value::new(0.0),
            Value::new(42.0),
            Value::new(1.0),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        let set = MobilityStrategy::TargetExtremes.place(&view(0, &votes), 2, None, &mut rng);
        // Picks the max (p3, vote 42) first, then the min (p1, vote -10).
        assert!(set.contains(ProcessId::new(3)));
        assert!(set.contains(ProcessId::new(1)));
    }

    #[test]
    fn display_and_default() {
        assert_eq!(MobilityStrategy::default(), MobilityStrategy::RoundRobin);
        assert_eq!(
            MobilityStrategy::TargetExtremes.to_string(),
            "target-extremes"
        );
        assert_eq!(MobilityStrategy::Sweep.to_string(), "sweep");
        assert_eq!(MobilityStrategy::TargetMedian.to_string(), "target-median");
    }

    #[test]
    fn sweep_moves_one_position_per_round() {
        let votes = votes(5);
        let mut rng = StdRng::seed_from_u64(0);
        let placements: Vec<ProcessSet> = (0..3)
            .map(|r| MobilityStrategy::Sweep.place(&view(r, &votes), 2, None, &mut rng))
            .collect();
        assert_eq!(placements[0], ProcessSet::from_indices(5, [0, 1]));
        assert_eq!(placements[1], ProcessSet::from_indices(5, [1, 2]));
        assert_eq!(placements[2], ProcessSet::from_indices(5, [2, 3]));
    }

    #[test]
    fn target_median_occupies_central_votes() {
        let votes = vec![
            Value::new(100.0),
            Value::new(0.0),
            Value::new(50.0),
            Value::new(-100.0),
            Value::new(49.0),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        let set = MobilityStrategy::TargetMedian.place(&view(0, &votes), 2, None, &mut rng);
        // Median-most votes are 49.0 (p4) and 50.0 (p2) — with 0.0 (p1) the
        // next candidate; the extreme holders p0 and p3 must not be chosen.
        assert_eq!(set.len(), 2);
        assert!(!set.contains(ProcessId::new(0)));
        assert!(!set.contains(ProcessId::new(3)));
    }

    #[test]
    fn target_median_handles_f_equal_n() {
        let votes = votes(3);
        let mut rng = StdRng::seed_from_u64(0);
        let set = MobilityStrategy::TargetMedian.place(&view(0, &votes), 3, None, &mut rng);
        assert_eq!(set.len(), 3);
    }
}
