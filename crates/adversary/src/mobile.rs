//! The mobile adversary: agent movement and per-round fault planning for the
//! four models M1–M4.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbaa_net::Outbox;
use mbaa_types::{MobileModel, ProcessSet, Value};

use crate::{AdversaryView, CorruptionStrategy, MobilityStrategy};

/// Everything the adversary decides for one round, consumed by the protocol
/// engine.
///
/// * `faulty` — processes occupied by an agent during this round's send
///   phase; their outgoing messages are in `faulty_outboxes`.
/// * `cured` — processes an agent left at the beginning of this round; the
///   state value the agent left behind is in `corrupted_states`, and under
///   Sasaki's model the poisoned outgoing queue they will unknowingly flush
///   is in `poisoned_outboxes`.
///
/// All vectors are indexed by process and hold `Some(_)` exactly for the
/// processes in the corresponding set.
#[derive(Debug, Clone)]
pub struct RoundFaultPlan {
    /// Processes occupied by an agent this round.
    pub faulty: ProcessSet,
    /// Processes an agent just left (empty under Buhrman's model).
    pub cured: ProcessSet,
    /// Outbox of every faulty process.
    pub faulty_outboxes: Vec<Option<Outbox>>,
    /// The state value the departing agent wrote into each cured process.
    pub corrupted_states: Vec<Option<Value>>,
    /// The poisoned outgoing queue of each cured process (Sasaki only).
    pub poisoned_outboxes: Vec<Option<Outbox>>,
}

impl RoundFaultPlan {
    /// The number of processes covered by this plan.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.faulty_outboxes.len()
    }
}

/// The mobile Byzantine adversary: owns the `f` agents, decides where they
/// go each round ([`MobilityStrategy`]) and what damage they do
/// ([`CorruptionStrategy`]), respecting the movement and awareness semantics
/// of the chosen [`MobileModel`].
///
/// The adversary is deterministic given its seed, which is what makes every
/// experiment in the workspace reproducible.
#[derive(Debug)]
pub struct MobileAdversary {
    model: MobileModel,
    n: usize,
    f: usize,
    mobility: MobilityStrategy,
    corruption: CorruptionStrategy,
    rng: StdRng,
    occupied: Option<ProcessSet>,
}

impl MobileAdversary {
    /// Creates an adversary controlling `f` agents over `n` processes.
    ///
    /// `f` may exceed the model's resilience bound — that is exactly what
    /// the lower-bound experiments need — but it is clamped to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(
        model: MobileModel,
        n: usize,
        f: usize,
        mobility: MobilityStrategy,
        corruption: CorruptionStrategy,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "adversary needs at least one process to attack");
        MobileAdversary {
            model,
            n,
            f: f.min(n),
            mobility,
            corruption,
            rng: StdRng::seed_from_u64(seed),
            occupied: None,
        }
    }

    /// The mobile Byzantine model this adversary obeys.
    #[must_use]
    pub fn model(&self) -> MobileModel {
        self.model
    }

    /// The number of agents.
    #[must_use]
    pub fn agents(&self) -> usize {
        self.f
    }

    /// The processes currently hosting an agent (before the next
    /// [`MobileAdversary::begin_round`] call), if any round has been planned.
    #[must_use]
    pub fn occupied(&self) -> Option<&ProcessSet> {
        self.occupied.as_ref()
    }

    /// Plans one round: moves the agents according to the model's movement
    /// rule and produces the complete fault plan for the round.
    pub fn begin_round(&mut self, view: &AdversaryView<'_>) -> RoundFaultPlan {
        assert_eq!(
            view.universe(),
            self.n,
            "adversary was configured for {} processes, view has {}",
            self.n,
            view.universe()
        );

        let (faulty, cured) = self.move_agents(view);

        let mut plan = RoundFaultPlan {
            faulty: faulty.clone(),
            cured: cured.clone(),
            faulty_outboxes: vec![None; self.n],
            corrupted_states: vec![None; self.n],
            poisoned_outboxes: vec![None; self.n],
        };

        for p in faulty.iter() {
            plan.faulty_outboxes[p.index()] =
                Some(self.corruption.faulty_outbox(p, view, &mut self.rng));
        }
        for p in cured.iter() {
            plan.corrupted_states[p.index()] =
                Some(self.corruption.corrupted_state(view, &mut self.rng));
            if self.model == MobileModel::Sasaki {
                plan.poisoned_outboxes[p.index()] =
                    Some(self.corruption.poisoned_outbox(p, view, &mut self.rng));
            }
        }

        self.occupied = Some(faulty);
        plan
    }

    /// Applies the model's movement rule and returns `(faulty, cured)` for
    /// the upcoming round.
    fn move_agents(&mut self, view: &AdversaryView<'_>) -> (ProcessSet, ProcessSet) {
        let previous = self.occupied.clone();
        let placement = self
            .mobility
            .place(view, self.f, previous.as_ref(), &mut self.rng);

        match self.model {
            // Agents ride the messages: by the time anyone sends, the host
            // the agent left has already recovered, so the send phase sees
            // exactly `f` faulty processes and no cured ones (Lemma 4).
            MobileModel::Buhrman => (placement, ProcessSet::empty(self.n)),
            // Agents move between rounds: whoever hosted an agent last round
            // and no longer does is cured this round.
            MobileModel::Garay | MobileModel::Bonnet | MobileModel::Sasaki => {
                let cured = match previous {
                    None => ProcessSet::empty(self.n),
                    Some(prev) => prev.intersection(&placement.complement()),
                };
                (placement, cured)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::{Interval, ProcessId, Round};

    fn make_view(round: u64, votes: &[Value]) -> AdversaryView<'_> {
        AdversaryView {
            round: Round::new(round),
            votes,
            correct_range: Interval::hull(votes.iter().copied()).unwrap(),
        }
    }

    fn adversary(model: MobileModel, n: usize, f: usize) -> MobileAdversary {
        MobileAdversary::new(
            model,
            n,
            f,
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::split_attack(),
            7,
        )
    }

    #[test]
    fn first_round_has_no_cured_processes() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        for model in MobileModel::ALL {
            let mut adv = adversary(model, 9, 2);
            let plan = adv.begin_round(&make_view(0, &votes));
            assert_eq!(plan.faulty.len(), 2, "{model}");
            assert!(plan.cured.is_empty(), "{model}");
            assert_eq!(plan.universe(), 9);
        }
    }

    #[test]
    fn subsequent_rounds_produce_cured_processes_in_between_round_models() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        for model in [MobileModel::Garay, MobileModel::Bonnet, MobileModel::Sasaki] {
            let mut adv = adversary(model, 9, 2);
            adv.begin_round(&make_view(0, &votes));
            let plan = adv.begin_round(&make_view(1, &votes));
            assert_eq!(plan.faulty.len(), 2, "{model}");
            // Round-robin moved both agents, so both vacated hosts are cured.
            assert_eq!(plan.cured.len(), 2, "{model}");
            assert!(plan.faulty.is_disjoint(&plan.cured), "{model}");
        }
    }

    #[test]
    fn buhrman_never_has_cured_processes() {
        let votes: Vec<Value> = (0..7).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Buhrman, 7, 2);
        for round in 0..5 {
            let plan = adv.begin_round(&make_view(round, &votes));
            assert_eq!(plan.faulty.len(), 2);
            assert!(plan.cured.is_empty());
        }
    }

    #[test]
    fn faulty_processes_get_outboxes_cured_get_states() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Bonnet, 9, 2);
        adv.begin_round(&make_view(0, &votes));
        let plan = adv.begin_round(&make_view(1, &votes));

        for p in plan.faulty.iter() {
            assert!(plan.faulty_outboxes[p.index()].is_some());
        }
        for p in plan.cured.iter() {
            assert!(plan.corrupted_states[p.index()].is_some());
            // Bonnet cured processes have no poisoned queue.
            assert!(plan.poisoned_outboxes[p.index()].is_none());
        }
        // Non-faulty processes have no adversary-made outbox.
        for p in plan.faulty.complement().iter() {
            assert!(plan.faulty_outboxes[p.index()].is_none());
        }
    }

    #[test]
    fn sasaki_cured_processes_get_poisoned_queues() {
        let votes: Vec<Value> = (0..13).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Sasaki, 13, 2);
        adv.begin_round(&make_view(0, &votes));
        let plan = adv.begin_round(&make_view(1, &votes));
        assert!(!plan.cured.is_empty());
        for p in plan.cured.iter() {
            assert!(plan.poisoned_outboxes[p.index()].is_some());
        }
    }

    #[test]
    fn stationary_mobility_keeps_processes_faulty_with_no_cured() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let mut adv = MobileAdversary::new(
            MobileModel::Garay,
            9,
            2,
            MobilityStrategy::Stationary,
            CorruptionStrategy::split_attack(),
            3,
        );
        let first = adv.begin_round(&make_view(0, &votes));
        let second = adv.begin_round(&make_view(1, &votes));
        assert_eq!(first.faulty, second.faulty);
        assert!(second.cured.is_empty());
    }

    #[test]
    fn agent_count_is_clamped_to_universe() {
        let votes: Vec<Value> = (0..3).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Garay, 3, 10);
        assert_eq!(adv.agents(), 3);
        let plan = adv.begin_round(&make_view(0, &votes));
        assert_eq!(plan.faulty.len(), 3);
    }

    #[test]
    fn occupied_tracks_latest_placement() {
        let votes: Vec<Value> = (0..6).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Garay, 6, 1);
        assert!(adv.occupied().is_none());
        let plan = adv.begin_round(&make_view(0, &votes));
        assert_eq!(adv.occupied(), Some(&plan.faulty));
        assert_eq!(adv.model(), MobileModel::Garay);
    }

    #[test]
    fn deterministic_under_seed() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let run = |seed| {
            let mut adv = MobileAdversary::new(
                MobileModel::Sasaki,
                9,
                2,
                MobilityStrategy::Random,
                CorruptionStrategy::RandomNoise { lo: -5.0, hi: 5.0 },
                seed,
            );
            let mut sets = Vec::new();
            for round in 0..4 {
                let plan = adv.begin_round(&make_view(round, &votes));
                sets.push((plan.faulty, plan.cured));
            }
            sets
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let _ = adversary(MobileModel::Garay, 0, 1);
    }

    #[test]
    #[should_panic(expected = "configured for")]
    fn mismatched_view_panics() {
        let votes: Vec<Value> = (0..4).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Garay, 9, 2);
        let _ = adv.begin_round(&make_view(0, &votes));
    }

    #[test]
    fn targeted_mobility_hits_extreme_processes() {
        let votes = vec![
            Value::new(0.0),
            Value::new(100.0),
            Value::new(1.0),
            Value::new(-50.0),
            Value::new(2.0),
        ];
        let mut adv = MobileAdversary::new(
            MobileModel::Buhrman,
            5,
            1,
            MobilityStrategy::TargetExtremes,
            CorruptionStrategy::split_attack(),
            0,
        );
        let plan = adv.begin_round(&make_view(0, &votes));
        assert!(plan.faulty.contains(ProcessId::new(1)));
    }
}
