//! The mobile adversary: agent movement and per-round fault planning for the
//! four models M1–M4.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbaa_net::Outbox;
use mbaa_types::{MobileModel, ProcessId, ProcessSet, Value};

use crate::{AdversaryView, CorruptionStrategy, MobilityStrategy};

/// Everything the adversary decides for one round, consumed by the protocol
/// engine.
///
/// * `faulty` — processes occupied by an agent during this round's send
///   phase; their outgoing messages are in `faulty_outboxes`.
/// * `cured` — processes an agent left at the beginning of this round; the
///   state value the agent left behind is in `corrupted_states`, and under
///   Sasaki's model the poisoned outgoing queue they will unknowingly flush
///   is in `poisoned_outboxes`.
///
/// All vectors are indexed by process and hold `Some(_)` exactly for the
/// processes in the corresponding set.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFaultPlan {
    /// Processes occupied by an agent this round.
    pub faulty: ProcessSet,
    /// Processes an agent just left (empty under Buhrman's model).
    pub cured: ProcessSet,
    /// Outbox of every faulty process.
    pub faulty_outboxes: Vec<Option<Outbox>>,
    /// The state value the departing agent wrote into each cured process.
    pub corrupted_states: Vec<Option<Value>>,
    /// The poisoned outgoing queue of each cured process (Sasaki only).
    pub poisoned_outboxes: Vec<Option<Outbox>>,
}

impl RoundFaultPlan {
    /// An empty plan over `n` processes: no agent placed, nothing
    /// corrupted. Used as the reusable scratch of
    /// [`MobileAdversary::begin_round_into`], which overwrites it in place
    /// every round.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        RoundFaultPlan {
            faulty: ProcessSet::empty(n),
            cured: ProcessSet::empty(n),
            faulty_outboxes: vec![None; n],
            corrupted_states: vec![None; n],
            poisoned_outboxes: vec![None; n],
        }
    }

    /// The number of processes covered by this plan.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.faulty_outboxes.len()
    }

    /// Clears the plan for reuse, recycling every outbox it holds into
    /// `pool` instead of dropping the allocations.
    // mbaa: alloc-free
    fn recycle_into(&mut self, pool: &mut Vec<Outbox>) {
        self.faulty.clear();
        self.cured.clear();
        self.corrupted_states.fill(None);
        for slot in self
            .faulty_outboxes
            .iter_mut()
            .chain(self.poisoned_outboxes.iter_mut())
        {
            if let Some(outbox) = slot.take() {
                // mbaa: allow(hot-path/vec-growth, the pool is drained and refilled with the same <= 2f outboxes each round)
                pool.push(outbox);
            }
        }
    }
}

/// The mobile Byzantine adversary: owns the `f` agents, decides where they
/// go each round ([`MobilityStrategy`]) and what damage they do
/// ([`CorruptionStrategy`]), respecting the movement and awareness semantics
/// of the chosen [`MobileModel`].
///
/// The adversary is deterministic given its seed, which is what makes every
/// experiment in the workspace reproducible.
#[derive(Debug)]
pub struct MobileAdversary {
    model: MobileModel,
    n: usize,
    f: usize,
    mobility: MobilityStrategy,
    corruption: CorruptionStrategy,
    rng: StdRng,
    occupied: Option<ProcessSet>,
    /// Sort buffer of the vote-targeting mobility strategies, reused every
    /// round.
    order_scratch: Vec<usize>,
    /// Recycled outboxes: [`MobileAdversary::begin_round_into`] drains the
    /// previous round's plan into this pool and refills new entries from
    /// it, so the steady state never allocates an outbox.
    outbox_pool: Vec<Outbox>,
}

impl MobileAdversary {
    /// Creates an adversary controlling `f` agents over `n` processes.
    ///
    /// `f` may exceed the model's resilience bound — that is exactly what
    /// the lower-bound experiments need — but it is clamped to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(
        model: MobileModel,
        n: usize,
        f: usize,
        mobility: MobilityStrategy,
        corruption: CorruptionStrategy,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "adversary needs at least one process to attack");
        MobileAdversary {
            model,
            n,
            f: f.min(n),
            mobility,
            corruption,
            rng: StdRng::seed_from_u64(seed),
            occupied: None,
            order_scratch: Vec::new(),
            outbox_pool: Vec::new(),
        }
    }

    /// The mobile Byzantine model this adversary obeys.
    #[must_use]
    pub fn model(&self) -> MobileModel {
        self.model
    }

    /// The number of agents.
    #[must_use]
    pub fn agents(&self) -> usize {
        self.f
    }

    /// The processes currently hosting an agent (before the next
    /// [`MobileAdversary::begin_round`] call), if any round has been planned.
    #[must_use]
    pub fn occupied(&self) -> Option<&ProcessSet> {
        self.occupied.as_ref()
    }

    /// Plans one round: moves the agents according to the model's movement
    /// rule and produces the complete fault plan for the round.
    pub fn begin_round(&mut self, view: &AdversaryView<'_>) -> RoundFaultPlan {
        let mut plan = RoundFaultPlan::empty(view.universe());
        self.begin_round_into(view, &mut plan);
        plan
    }

    /// In-place form of [`MobileAdversary::begin_round`]: overwrites a
    /// reused [`RoundFaultPlan`] with this round's decisions, recycling its
    /// outbox allocations through the adversary's internal pool. The RNG
    /// draw sequence — placement, then faulty outboxes in ascending process
    /// order, then per cured process its corrupted state (and, under
    /// Sasaki, its poisoned queue) — is identical to
    /// [`begin_round`](MobileAdversary::begin_round), so the two paths plan
    /// bit-identical rounds. Once the pool is warm (after at most one
    /// round), planning performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if the view's or plan's universe differs from the
    /// adversary's.
    // mbaa: alloc-free
    pub fn begin_round_into(&mut self, view: &AdversaryView<'_>, plan: &mut RoundFaultPlan) {
        assert_eq!(
            view.universe(),
            self.n,
            "adversary was configured for {} processes, view has {}",
            self.n,
            view.universe()
        );
        assert_eq!(
            plan.universe(),
            self.n,
            "plan was sized for {} processes, adversary attacks {}",
            plan.universe(),
            self.n
        );
        plan.recycle_into(&mut self.outbox_pool);

        // Movement rule: place the agents, then derive the cured set.
        self.mobility.place_into(
            view,
            self.f,
            self.occupied.as_ref(),
            &mut self.rng,
            &mut plan.faulty,
            &mut self.order_scratch,
        );
        match self.model {
            // Agents ride the messages: by the time anyone sends, the host
            // the agent left has already recovered, so the send phase sees
            // exactly `f` faulty processes and no cured ones (Lemma 4).
            MobileModel::Buhrman => {}
            // Agents move between rounds: whoever hosted an agent last round
            // and no longer does is cured this round.
            MobileModel::Garay | MobileModel::Bonnet | MobileModel::Sasaki => {
                if let Some(previous) = &self.occupied {
                    for p in previous.iter() {
                        if !plan.faulty.contains(p) {
                            plan.cured.insert(p);
                        }
                    }
                }
            }
        }

        for i in 0..self.n {
            let p = ProcessId::new(i);
            if !plan.faulty.contains(p) {
                continue;
            }
            let mut outbox = self
                .outbox_pool
                .pop()
                .unwrap_or_else(|| Outbox::silent(self.n, p));
            self.corruption
                .fill_faulty_outbox(p, view, &mut self.rng, &mut outbox);
            plan.faulty_outboxes[i] = Some(outbox);
        }
        for i in 0..self.n {
            let p = ProcessId::new(i);
            if !plan.cured.contains(p) {
                continue;
            }
            plan.corrupted_states[i] = Some(self.corruption.corrupted_state(view, &mut self.rng));
            if self.model == MobileModel::Sasaki {
                let mut outbox = self
                    .outbox_pool
                    .pop()
                    .unwrap_or_else(|| Outbox::silent(self.n, p));
                self.corruption
                    .fill_poisoned_outbox(p, view, &mut self.rng, &mut outbox);
                plan.poisoned_outboxes[i] = Some(outbox);
            }
        }

        match &mut self.occupied {
            Some(occupied) => occupied.copy_from(&plan.faulty),
            // mbaa: allow(hot-path/allocation, first round only; every later round copies in place)
            None => self.occupied = Some(plan.faulty.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::{Interval, ProcessId, Round};

    fn make_view(round: u64, votes: &[Value]) -> AdversaryView<'_> {
        AdversaryView {
            round: Round::new(round),
            votes,
            correct_range: Interval::hull(votes.iter().copied()).unwrap(),
        }
    }

    fn adversary(model: MobileModel, n: usize, f: usize) -> MobileAdversary {
        MobileAdversary::new(
            model,
            n,
            f,
            MobilityStrategy::RoundRobin,
            CorruptionStrategy::split_attack(),
            7,
        )
    }

    #[test]
    fn first_round_has_no_cured_processes() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        for model in MobileModel::ALL {
            let mut adv = adversary(model, 9, 2);
            let plan = adv.begin_round(&make_view(0, &votes));
            assert_eq!(plan.faulty.len(), 2, "{model}");
            assert!(plan.cured.is_empty(), "{model}");
            assert_eq!(plan.universe(), 9);
        }
    }

    #[test]
    fn subsequent_rounds_produce_cured_processes_in_between_round_models() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        for model in [MobileModel::Garay, MobileModel::Bonnet, MobileModel::Sasaki] {
            let mut adv = adversary(model, 9, 2);
            adv.begin_round(&make_view(0, &votes));
            let plan = adv.begin_round(&make_view(1, &votes));
            assert_eq!(plan.faulty.len(), 2, "{model}");
            // Round-robin moved both agents, so both vacated hosts are cured.
            assert_eq!(plan.cured.len(), 2, "{model}");
            assert!(plan.faulty.is_disjoint(&plan.cured), "{model}");
        }
    }

    #[test]
    fn buhrman_never_has_cured_processes() {
        let votes: Vec<Value> = (0..7).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Buhrman, 7, 2);
        for round in 0..5 {
            let plan = adv.begin_round(&make_view(round, &votes));
            assert_eq!(plan.faulty.len(), 2);
            assert!(plan.cured.is_empty());
        }
    }

    #[test]
    fn faulty_processes_get_outboxes_cured_get_states() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Bonnet, 9, 2);
        adv.begin_round(&make_view(0, &votes));
        let plan = adv.begin_round(&make_view(1, &votes));

        for p in plan.faulty.iter() {
            assert!(plan.faulty_outboxes[p.index()].is_some());
        }
        for p in plan.cured.iter() {
            assert!(plan.corrupted_states[p.index()].is_some());
            // Bonnet cured processes have no poisoned queue.
            assert!(plan.poisoned_outboxes[p.index()].is_none());
        }
        // Non-faulty processes have no adversary-made outbox.
        for p in plan.faulty.complement().iter() {
            assert!(plan.faulty_outboxes[p.index()].is_none());
        }
    }

    #[test]
    fn sasaki_cured_processes_get_poisoned_queues() {
        let votes: Vec<Value> = (0..13).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Sasaki, 13, 2);
        adv.begin_round(&make_view(0, &votes));
        let plan = adv.begin_round(&make_view(1, &votes));
        assert!(!plan.cured.is_empty());
        for p in plan.cured.iter() {
            assert!(plan.poisoned_outboxes[p.index()].is_some());
        }
    }

    #[test]
    fn stationary_mobility_keeps_processes_faulty_with_no_cured() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let mut adv = MobileAdversary::new(
            MobileModel::Garay,
            9,
            2,
            MobilityStrategy::Stationary,
            CorruptionStrategy::split_attack(),
            3,
        );
        let first = adv.begin_round(&make_view(0, &votes));
        let second = adv.begin_round(&make_view(1, &votes));
        assert_eq!(first.faulty, second.faulty);
        assert!(second.cured.is_empty());
    }

    #[test]
    fn agent_count_is_clamped_to_universe() {
        let votes: Vec<Value> = (0..3).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Garay, 3, 10);
        assert_eq!(adv.agents(), 3);
        let plan = adv.begin_round(&make_view(0, &votes));
        assert_eq!(plan.faulty.len(), 3);
    }

    #[test]
    fn occupied_tracks_latest_placement() {
        let votes: Vec<Value> = (0..6).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Garay, 6, 1);
        assert!(adv.occupied().is_none());
        let plan = adv.begin_round(&make_view(0, &votes));
        assert_eq!(adv.occupied(), Some(&plan.faulty));
        assert_eq!(adv.model(), MobileModel::Garay);
    }

    #[test]
    fn deterministic_under_seed() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        let run = |seed| {
            let mut adv = MobileAdversary::new(
                MobileModel::Sasaki,
                9,
                2,
                MobilityStrategy::Random,
                CorruptionStrategy::RandomNoise { lo: -5.0, hi: 5.0 },
                seed,
            );
            let mut sets = Vec::new();
            for round in 0..4 {
                let plan = adv.begin_round(&make_view(round, &votes));
                sets.push((plan.faulty, plan.cured));
            }
            sets
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let _ = adversary(MobileModel::Garay, 0, 1);
    }

    #[test]
    #[should_panic(expected = "configured for")]
    fn mismatched_view_panics() {
        let votes: Vec<Value> = (0..4).map(|i| Value::new(i as f64)).collect();
        let mut adv = adversary(MobileModel::Garay, 9, 2);
        let _ = adv.begin_round(&make_view(0, &votes));
    }

    #[test]
    fn begin_round_into_plans_identically_to_begin_round() {
        let votes: Vec<Value> = (0..9).map(|i| Value::new(i as f64)).collect();
        for model in MobileModel::ALL {
            for mobility in MobilityStrategy::ALL {
                let mut owned = MobileAdversary::new(
                    model,
                    9,
                    2,
                    mobility,
                    CorruptionStrategy::RandomNoise { lo: -2.0, hi: 2.0 },
                    13,
                );
                let mut reused = MobileAdversary::new(
                    model,
                    9,
                    2,
                    mobility,
                    CorruptionStrategy::RandomNoise { lo: -2.0, hi: 2.0 },
                    13,
                );
                let mut scratch = RoundFaultPlan::empty(9);
                for round in 0..6 {
                    let view = make_view(round, &votes);
                    let plan = owned.begin_round(&view);
                    reused.begin_round_into(&view, &mut scratch);
                    assert_eq!(plan, scratch, "{model}/{mobility} round {round}");
                }
            }
        }
    }

    #[test]
    fn targeted_mobility_hits_extreme_processes() {
        let votes = vec![
            Value::new(0.0),
            Value::new(100.0),
            Value::new(1.0),
            Value::new(-50.0),
            Value::new(2.0),
        ];
        let mut adv = MobileAdversary::new(
            MobileModel::Buhrman,
            5,
            1,
            MobilityStrategy::TargetExtremes,
            CorruptionStrategy::split_attack(),
            0,
        );
        let plan = adv.begin_round(&make_view(0, &votes));
        assert!(plan.faulty.contains(ProcessId::new(1)));
    }
}
