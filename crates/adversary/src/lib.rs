//! The mobile Byzantine adversary.
//!
//! In the Mobile Byzantine Faults (MBF) model an adversary controls `f`
//! computationally unbounded *agents* and moves them from process to process
//! as the computation proceeds. A process hosting an agent is **faulty**
//! (its state and outgoing messages are controlled by the adversary); the
//! round after the agent leaves it is **cured** (it runs the correct code
//! from tamper-proof memory, but its variables may have been corrupted);
//! otherwise it is **correct**.
//!
//! This crate implements the adversary:
//!
//! * [`MobilityStrategy`] — where the agents go each round (stationary,
//!   round-robin, random, or targeting the extreme-valued correct
//!   processes).
//! * [`CorruptionStrategy`] — what occupied processes send and what state
//!   the agent leaves behind (silence, fixed values, out-of-range values,
//!   the split attack, random noise, or boundary dragging).
//! * [`MobileAdversary`] — the per-round orchestration for each of the four
//!   models M1–M4 ([`MobileModel`](mbaa_types::MobileModel)), producing a
//!   [`RoundFaultPlan`] that the protocol engine consumes: who is faulty,
//!   who is cured, the outboxes of faulty senders, the corrupted states left
//!   in cured processes, and (for Sasaki's model) the poisoned outgoing
//!   queues cured processes unknowingly flush.
//!
//! # Example
//!
//! ```
//! use mbaa_adversary::{AdversaryView, CorruptionStrategy, MobileAdversary, MobilityStrategy};
//! use mbaa_types::{Interval, MobileModel, Round, Value};
//!
//! let mut adversary = MobileAdversary::new(
//!     MobileModel::Garay,
//!     9,              // n
//!     2,              // f agents
//!     MobilityStrategy::RoundRobin,
//!     CorruptionStrategy::split_attack(),
//!     42,             // seed
//! );
//!
//! let votes = vec![Value::new(0.5); 9];
//! let view = AdversaryView {
//!     round: Round::ZERO,
//!     votes: &votes,
//!     correct_range: Interval::new(Value::new(0.0), Value::new(1.0)),
//! };
//! let plan = adversary.begin_round(&view);
//! assert_eq!(plan.faulty.len(), 2);
//! assert!(plan.cured.is_empty()); // no agent has moved before round 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod corruption;
mod mobile;
mod mobility;
mod view;

pub use corruption::CorruptionStrategy;
pub use mobile::{MobileAdversary, RoundFaultPlan};
pub use mobility::MobilityStrategy;
pub use view::AdversaryView;
