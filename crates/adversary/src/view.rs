//! The adversary's (omniscient) view of the system state.

use mbaa_types::{Interval, Round, Value};

/// Everything the adversary is allowed to see when planning a round.
///
/// Mobile Byzantine agents are computationally unbounded and the adversary
/// is assumed to know the full system state, so the view exposes every
/// process' current vote and the range of the non-faulty votes. Strategies
/// are free to ignore parts of it.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryView<'a> {
    /// The round about to be executed.
    pub round: Round,
    /// The current internal value of every process (indexed by process).
    pub votes: &'a [Value],
    /// The range spanned by the votes of the processes that are currently
    /// non-faulty — the interval the adversary wants to keep wide.
    pub correct_range: Interval,
}

impl<'a> AdversaryView<'a> {
    /// The number of processes in the system.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_reports_universe() {
        let votes = vec![Value::new(0.0), Value::new(1.0), Value::new(2.0)];
        let view = AdversaryView {
            round: Round::new(3),
            votes: &votes,
            correct_range: Interval::new(Value::new(0.0), Value::new(2.0)),
        };
        assert_eq!(view.universe(), 3);
        assert_eq!(view.round, Round::new(3));
        assert_eq!(view.correct_range.diameter(), 2.0);
    }
}
