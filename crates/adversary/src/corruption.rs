//! Value corruption strategies: what occupied processes send and what state
//! the agents leave behind.

use std::fmt;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use mbaa_net::Outbox;
use mbaa_types::{ProcessId, Value};

use crate::AdversaryView;

/// A strategy deciding the messages a faulty (agent-occupied) process sends
/// and the state the agent writes into a process before leaving it.
///
/// The strategies cover the attack repertoire used in the approximate
/// agreement literature:
///
/// * [`CorruptionStrategy::Silent`] — occupied processes send nothing
///   (pure omission, the weakest attack).
/// * [`CorruptionStrategy::Fixed`] — plant one constant value everywhere.
/// * [`CorruptionStrategy::OutOfRange`] — broadcast a value far above the
///   correct range, attacking validity.
/// * [`CorruptionStrategy::Split`] — the classic asymmetric attack: send a
///   far-low value to the lower half of the receivers and a far-high value
///   to the upper half, trying to keep the correct processes apart.
/// * [`CorruptionStrategy::RandomNoise`] — independent random values per
///   receiver.
/// * [`CorruptionStrategy::BoundaryDrag`] — always send the current minimum
///   of the correct range; values stay *inside* the correct range (so they
///   are never trimmed) but continually drag the average toward one
///   boundary, the strategy that slows convergence the most without risking
///   detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptionStrategy {
    /// Occupied processes omit every message.
    Silent,
    /// Occupied processes broadcast a fixed value.
    Fixed {
        /// The planted value.
        value: Value,
    },
    /// Occupied processes broadcast `max(correct range) + magnitude`.
    OutOfRange {
        /// Distance above the correct range.
        magnitude: f64,
    },
    /// Occupied processes send `min - magnitude` to half the receivers and
    /// `max + magnitude` to the other half.
    Split {
        /// Distance outside the correct range on each side.
        magnitude: f64,
    },
    /// Occupied processes send an independent uniform value per receiver.
    RandomNoise {
        /// Lower bound of the noise.
        lo: f64,
        /// Upper bound of the noise.
        hi: f64,
    },
    /// Occupied processes broadcast the current minimum of the correct
    /// range.
    BoundaryDrag,
    /// Stealth attack: occupied processes send values drawn uniformly from
    /// *inside* the correct range, a different one per receiver. The values
    /// are never trimmed (they are legitimate-looking) but keep the correct
    /// processes desynchronised.
    Stealth,
    /// Median-pull attack: occupied processes send the lower quartile of the
    /// correct range to everyone, skewing median-style voting rules while
    /// staying inside the valid range.
    MedianPull,
}

impl CorruptionStrategy {
    /// All strategies (with representative parameters), for ablation sweeps.
    #[must_use]
    pub fn all_representative() -> Vec<CorruptionStrategy> {
        vec![
            CorruptionStrategy::Silent,
            CorruptionStrategy::Fixed {
                value: Value::new(1e3),
            },
            CorruptionStrategy::OutOfRange { magnitude: 10.0 },
            CorruptionStrategy::split_attack(),
            CorruptionStrategy::RandomNoise {
                lo: -100.0,
                hi: 100.0,
            },
            CorruptionStrategy::BoundaryDrag,
            CorruptionStrategy::Stealth,
            CorruptionStrategy::MedianPull,
        ]
    }

    /// The canonical worst-case attack: a split attack planting values one
    /// correct-diameter outside the range on each side.
    #[must_use]
    pub fn split_attack() -> Self {
        CorruptionStrategy::Split { magnitude: 1.0 }
    }

    /// The outbox an agent-occupied process hands to the network.
    #[must_use]
    pub fn faulty_outbox<R: Rng + ?Sized>(
        &self,
        sender: ProcessId,
        view: &AdversaryView<'_>,
        rng: &mut R,
    ) -> Outbox {
        let mut outbox = Outbox::silent(view.universe(), sender);
        self.fill_faulty_outbox(sender, view, rng, &mut outbox);
        outbox
    }

    /// In-place form of [`CorruptionStrategy::faulty_outbox`]: overwrites a
    /// reused outbox with this round's attack. Slot values and the RNG draw
    /// sequence are identical to the owned form, so the two paths stay
    /// bit-compatible; no strategy allocates.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s universe differs from the view's.
    // mbaa: alloc-free
    pub fn fill_faulty_outbox<R: Rng + ?Sized>(
        &self,
        sender: ProcessId,
        view: &AdversaryView<'_>,
        rng: &mut R,
        out: &mut Outbox,
    ) {
        let n = view.universe();
        assert_eq!(out.universe(), n, "outbox universe mismatch");
        out.set_sender(sender);
        let lo = view.correct_range.lo().get();
        let hi = view.correct_range.hi().get();
        match self {
            CorruptionStrategy::Silent => out.fill_silent(),
            CorruptionStrategy::Fixed { value } => out.fill_broadcast(*value),
            CorruptionStrategy::OutOfRange { magnitude } => {
                out.fill_broadcast(Value::new(hi + magnitude.max(f64::MIN_POSITIVE)));
            }
            CorruptionStrategy::Split { magnitude } => {
                let margin = magnitude.max(f64::MIN_POSITIVE);
                for receiver in 0..n {
                    out.set(
                        ProcessId::new(receiver),
                        Some(if receiver < n / 2 {
                            Value::new(lo - margin)
                        } else {
                            Value::new(hi + margin)
                        }),
                    );
                }
            }
            CorruptionStrategy::RandomNoise { lo, hi } => {
                for receiver in 0..n {
                    out.set(
                        ProcessId::new(receiver),
                        Some(Value::new(rng.random_range(*lo..=*hi))),
                    );
                }
            }
            CorruptionStrategy::BoundaryDrag => out.fill_broadcast(Value::new(lo)),
            CorruptionStrategy::Stealth => {
                for receiver in 0..n {
                    let v = if hi > lo {
                        rng.random_range(lo..=hi)
                    } else {
                        lo
                    };
                    out.set(ProcessId::new(receiver), Some(Value::new(v)));
                }
            }
            CorruptionStrategy::MedianPull => {
                out.fill_broadcast(Value::new(lo + 0.25 * (hi - lo)));
            }
        }
    }

    /// The value the agent writes into a process' local state before leaving
    /// it (what a cured process finds in its variables).
    #[must_use]
    pub fn corrupted_state<R: Rng + ?Sized>(&self, view: &AdversaryView<'_>, rng: &mut R) -> Value {
        let lo = view.correct_range.lo().get();
        let hi = view.correct_range.hi().get();
        match self {
            // Even a "silent" agent scrambles the state it leaves behind.
            CorruptionStrategy::Silent => Value::new(hi + 1.0),
            CorruptionStrategy::Fixed { value } => *value,
            CorruptionStrategy::OutOfRange { magnitude } => {
                Value::new(hi + magnitude.max(f64::MIN_POSITIVE))
            }
            CorruptionStrategy::Split { magnitude } => {
                Value::new(lo - magnitude.max(f64::MIN_POSITIVE))
            }
            CorruptionStrategy::RandomNoise { lo, hi } => Value::new(rng.random_range(*lo..=*hi)),
            CorruptionStrategy::BoundaryDrag => Value::new(lo),
            CorruptionStrategy::Stealth => Value::new(if hi > lo {
                rng.random_range(lo..=hi)
            } else {
                lo
            }),
            CorruptionStrategy::MedianPull => Value::new(lo + 0.25 * (hi - lo)),
        }
    }

    /// The poisoned outgoing queue an agent prepares in a process it is
    /// about to leave (Sasaki's model): the cured process will flush this
    /// queue believing it is its own send, producing asymmetric behaviour
    /// for one extra round.
    #[must_use]
    pub fn poisoned_outbox<R: Rng + ?Sized>(
        &self,
        sender: ProcessId,
        view: &AdversaryView<'_>,
        rng: &mut R,
    ) -> Outbox {
        // The queue the agent leaves behind is as malicious as its own
        // sends; reuse the faulty outbox construction.
        self.faulty_outbox(sender, view, rng)
    }

    /// In-place form of [`CorruptionStrategy::poisoned_outbox`].
    ///
    /// # Panics
    ///
    /// Panics if `out`'s universe differs from the view's.
    pub fn fill_poisoned_outbox<R: Rng + ?Sized>(
        &self,
        sender: ProcessId,
        view: &AdversaryView<'_>,
        rng: &mut R,
        out: &mut Outbox,
    ) {
        self.fill_faulty_outbox(sender, view, rng, out);
    }
}

impl Default for CorruptionStrategy {
    fn default() -> Self {
        Self::split_attack()
    }
}

impl fmt::Display for CorruptionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionStrategy::Silent => write!(f, "silent"),
            CorruptionStrategy::Fixed { value } => write!(f, "fixed({value})"),
            CorruptionStrategy::OutOfRange { magnitude } => write!(f, "out-of-range(+{magnitude})"),
            CorruptionStrategy::Split { magnitude } => write!(f, "split(±{magnitude})"),
            CorruptionStrategy::RandomNoise { lo, hi } => write!(f, "noise[{lo}, {hi}]"),
            CorruptionStrategy::BoundaryDrag => write!(f, "boundary-drag"),
            CorruptionStrategy::Stealth => write!(f, "stealth"),
            CorruptionStrategy::MedianPull => write!(f, "median-pull"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::{Interval, Round};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_view(votes: &[Value]) -> AdversaryView<'_> {
        AdversaryView {
            round: Round::ZERO,
            votes,
            correct_range: Interval::new(Value::new(0.0), Value::new(1.0)),
        }
    }

    #[test]
    fn silent_omits_everything_but_corrupts_state() {
        let votes = vec![Value::new(0.5); 4];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(0);
        let o = CorruptionStrategy::Silent.faulty_outbox(ProcessId::new(0), &view, &mut rng);
        assert!(o.is_silent());
        let state = CorruptionStrategy::Silent.corrupted_state(&view, &mut rng);
        assert!(!view.correct_range.contains(state));
    }

    #[test]
    fn out_of_range_breaks_validity_if_unfiltered() {
        let votes = vec![Value::new(0.5); 4];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(0);
        let strategy = CorruptionStrategy::OutOfRange { magnitude: 5.0 };
        let o = strategy.faulty_outbox(ProcessId::new(1), &view, &mut rng);
        assert!(o.is_uniform());
        assert_eq!(o.get(ProcessId::new(0)), Some(Value::new(6.0)));
    }

    #[test]
    fn split_sends_different_values_to_the_two_halves() {
        let votes = vec![Value::new(0.5); 6];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(0);
        let o =
            CorruptionStrategy::split_attack().faulty_outbox(ProcessId::new(0), &view, &mut rng);
        assert!(!o.is_uniform());
        assert!(o.get(ProcessId::new(0)).unwrap() < Value::new(0.0));
        assert!(o.get(ProcessId::new(5)).unwrap() > Value::new(1.0));
    }

    #[test]
    fn random_noise_stays_in_configured_interval_and_is_seeded() {
        let votes = vec![Value::new(0.5); 5];
        let view = test_view(&votes);
        let strategy = CorruptionStrategy::RandomNoise { lo: -3.0, hi: 3.0 };
        let gen_outbox = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            strategy.faulty_outbox(ProcessId::new(2), &view, &mut rng)
        };
        let o = gen_outbox(9);
        assert_eq!(o, gen_outbox(9));
        for (_, v) in o.iter() {
            let v = v.unwrap().get();
            assert!((-3.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn boundary_drag_stays_inside_the_correct_range() {
        let votes = vec![Value::new(0.5); 4];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(0);
        let o = CorruptionStrategy::BoundaryDrag.faulty_outbox(ProcessId::new(0), &view, &mut rng);
        assert_eq!(o.get(ProcessId::new(3)), Some(Value::new(0.0)));
        assert!(view
            .correct_range
            .contains(o.get(ProcessId::new(0)).unwrap()));
    }

    #[test]
    fn fixed_plants_constant_value_and_state() {
        let votes = vec![Value::new(0.5); 3];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(0);
        let strategy = CorruptionStrategy::Fixed {
            value: Value::new(7.0),
        };
        let o = strategy.faulty_outbox(ProcessId::new(0), &view, &mut rng);
        assert_eq!(o.get(ProcessId::new(1)), Some(Value::new(7.0)));
        assert_eq!(strategy.corrupted_state(&view, &mut rng), Value::new(7.0));
    }

    #[test]
    fn poisoned_outbox_mirrors_faulty_behaviour() {
        let votes = vec![Value::new(0.5); 4];
        let view = test_view(&votes);
        let strategy = CorruptionStrategy::split_attack();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        assert_eq!(
            strategy.poisoned_outbox(ProcessId::new(1), &view, &mut rng_a),
            strategy.faulty_outbox(ProcessId::new(1), &view, &mut rng_b)
        );
    }

    #[test]
    fn representative_set_covers_every_variant() {
        let all = CorruptionStrategy::all_representative();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn stealth_values_stay_inside_the_correct_range() {
        let votes = vec![Value::new(0.5); 5];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(4);
        let o = CorruptionStrategy::Stealth.faulty_outbox(ProcessId::new(1), &view, &mut rng);
        for (_, v) in o.iter() {
            assert!(view.correct_range.contains(v.unwrap()));
        }
        let state = CorruptionStrategy::Stealth.corrupted_state(&view, &mut rng);
        assert!(view.correct_range.contains(state));
    }

    #[test]
    fn median_pull_targets_the_lower_quartile() {
        let votes = vec![Value::new(0.5); 4];
        let view = test_view(&votes);
        let mut rng = StdRng::seed_from_u64(0);
        let o = CorruptionStrategy::MedianPull.faulty_outbox(ProcessId::new(0), &view, &mut rng);
        assert!(o.is_uniform());
        assert_eq!(o.get(ProcessId::new(0)), Some(Value::new(0.25)));
        assert_eq!(
            CorruptionStrategy::MedianPull.corrupted_state(&view, &mut rng),
            Value::new(0.25)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(CorruptionStrategy::Silent.to_string(), "silent");
        assert_eq!(CorruptionStrategy::split_attack().to_string(), "split(±1)");
        assert_eq!(
            CorruptionStrategy::BoundaryDrag.to_string(),
            "boundary-drag"
        );
        assert_eq!(CorruptionStrategy::Stealth.to_string(), "stealth");
        assert_eq!(CorruptionStrategy::MedianPull.to_string(), "median-pull");
    }
}
