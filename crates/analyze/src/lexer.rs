//! A hand-rolled Rust lexer, just deep enough to lint on.
//!
//! The container is offline, so `syn`/`proc-macro2` are unavailable; the
//! lints in this crate only need a faithful *token* stream, not a syntax
//! tree. The tricky part of tokenizing Rust without a parser is making
//! sure nothing inside a literal or a comment is ever mistaken for code:
//!
//! - strings, including raw strings (`r"…"`, `r#"…"#` with any number of
//!   hashes) and byte strings (`b"…"`, `br#"…"#`), swallow everything up
//!   to their real terminator — a `HashMap` inside `r#"…"#` is data;
//! - block comments nest (`/* /* */ */` is one comment), and their bodies
//!   are preserved so the directive parser can read `mbaa:` markers;
//! - a `'` is a lifetime (`'a`, `'static`, loop labels) when followed by
//!   an identifier that is not closed by another `'`, and a char literal
//!   (`'a'`, `'\''`, `'0'`) otherwise.
//!
//! Every token carries its 1-based `line:col` position so diagnostics can
//! point at the exact offending identifier.

/// The classes of token the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A character or byte literal (`'x'`, `b'x'`).
    CharLit,
    /// A string literal of any flavour (plain, raw, byte, raw byte).
    StrLit,
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// A `//` comment (plain, `///` outer doc, or `//!` inner doc).
    LineComment,
    /// A `/* … */` comment, nesting included.
    BlockComment,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The exact source text of the token (comment sigils included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Returns `true` when this token is an identifier with exactly the
    /// given text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Returns `true` when this token is the given punctuation character.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Returns `true` for comment tokens of either flavour.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `source`, never failing: unterminated literals and comments
/// extend to end-of-file (the linter must keep working on half-edited
/// files).
#[must_use]
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer {
    src: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            src: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (line, col) = (self.line, self.col);
            if c == '/' && self.peek(1) == Some('/') {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(self.bump().expect("peeked"));
                }
                self.push(TokenKind::LineComment, text, line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                let text = self.take_block_comment();
                self.push(TokenKind::BlockComment, text, line, col);
            } else if c == '"' {
                let text = self.take_string(String::new());
                self.push(TokenKind::StrLit, text, line, col);
            } else if c == '\'' {
                self.take_char_or_lifetime(line, col);
            } else if is_ident_start(c) {
                self.take_ident_or_prefixed_literal(line, col);
            } else if c.is_ascii_digit() {
                let text = self.take_number();
                self.push(TokenKind::NumLit, text, line, col);
            } else {
                let c = self.bump().expect("peeked");
                self.push(TokenKind::Punct, c.to_string(), line, col);
            }
        }
        self.tokens
    }

    /// Consumes a `/* … */` comment, counting nesting depth.
    fn take_block_comment(&mut self) -> String {
        let mut out = String::new();
        out.push(self.bump().expect("at '/'"));
        out.push(self.bump().expect("at '*'"));
        let mut depth = 1usize;
        while depth > 0 {
            let Some(c) = self.bump() else { break };
            out.push(c);
            if c == '/' && self.peek(0) == Some('*') {
                out.push(self.bump().expect("peeked"));
                depth += 1;
            } else if c == '*' && self.peek(0) == Some('/') {
                out.push(self.bump().expect("peeked"));
                depth -= 1;
            }
        }
        out
    }

    /// Consumes a plain (escaped) string literal starting at `"`. `prefix`
    /// carries an already-consumed `b` for byte strings.
    fn take_string(&mut self, prefix: String) -> String {
        let mut out = prefix;
        out.push(self.bump().expect("at '\"'"));
        while let Some(c) = self.bump() {
            out.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    out.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        out
    }

    /// Consumes a raw string body `#*"…"#*` (the `r`/`br` prefix is already
    /// in `prefix`). The body only terminates on `"` followed by the same
    /// number of hashes that opened it.
    fn take_raw_string(&mut self, prefix: String) -> String {
        let mut out = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            out.push(self.bump().expect("peeked"));
            hashes += 1;
        }
        if self.peek(0) == Some('"') {
            out.push(self.bump().expect("peeked"));
        }
        while let Some(c) = self.bump() {
            out.push(c);
            if c == '"' && (0..hashes).all(|j| self.peek(j) == Some('#')) {
                for _ in 0..hashes {
                    out.push(self.bump().expect("peeked"));
                }
                break;
            }
        }
        out
    }

    /// Consumes the rest of a char literal whose opening `'` (and optional
    /// `b` prefix) is already in `out`.
    fn finish_char_literal(&mut self, mut out: String) -> String {
        while let Some(c) = self.bump() {
            out.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    out.push(escaped);
                }
            } else if c == '\'' {
                break;
            }
        }
        out
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime/label) at a `'`.
    fn take_char_or_lifetime(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        match next {
            // An escape can only open a char literal: '\n', '\'', '\u{…}'.
            Some('\\') => {
                let mut out = String::new();
                out.push(self.bump().expect("at '''"));
                let text = self.finish_char_literal(out);
                self.push(TokenKind::CharLit, text, line, col);
            }
            Some(c) if is_ident_start(c) => {
                if self.peek(2) == Some('\'') {
                    // 'x' — a one-character literal.
                    let mut out = String::new();
                    out.push(self.bump().expect("at '''"));
                    out.push(self.bump().expect("peeked"));
                    out.push(self.bump().expect("peeked"));
                    self.push(TokenKind::CharLit, out, line, col);
                } else {
                    // 'ident with no closing quote — a lifetime or label.
                    let mut out = String::new();
                    out.push(self.bump().expect("at '''"));
                    out.push_str(&self.take_ident());
                    self.push(TokenKind::Lifetime, out, line, col);
                }
            }
            // '0', '(', ' ', … — a non-identifier char literal.
            _ => {
                let mut out = String::new();
                out.push(self.bump().expect("at '''"));
                let text = self.finish_char_literal(out);
                self.push(TokenKind::CharLit, text, line, col);
            }
        }
    }

    fn take_ident(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            out.push(self.bump().expect("peeked"));
        }
        out
    }

    /// Reads an identifier, then checks whether it is really the prefix of
    /// a string (`r"`, `b"`, `br"`, `r#"…`), a byte char (`b'x'`), or a raw
    /// identifier (`r#type`).
    fn take_ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let ident = self.take_ident();
        match (ident.as_str(), self.peek(0)) {
            ("r" | "b" | "br", Some('"')) => {
                let text = if ident == "b" {
                    self.take_string(ident)
                } else {
                    self.take_raw_string(ident)
                };
                self.push(TokenKind::StrLit, text, line, col);
            }
            ("r" | "br", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    let text = self.take_raw_string(ident);
                    self.push(TokenKind::StrLit, text, line, col);
                } else if ident == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    let mut out = ident;
                    out.push(self.bump().expect("at '#'"));
                    out.push_str(&self.take_ident());
                    self.push(TokenKind::Ident, out, line, col);
                } else {
                    self.push(TokenKind::Ident, ident, line, col);
                }
            }
            ("b", Some('\'')) => {
                let mut out = ident;
                out.push(self.bump().expect("at '''"));
                let text = self.finish_char_literal(out);
                self.push(TokenKind::CharLit, text, line, col);
            }
            _ => self.push(TokenKind::Ident, ident, line, col),
        }
    }

    fn take_number(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                out.push(self.bump().expect("peeked"));
            } else if c == '.'
                && !out.contains('.')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // A decimal point, but never the start of `..` or a method
                // call on a literal.
                out.push(self.bump().expect("peeked"));
            } else if (c == '+' || c == '-')
                && (out.ends_with('e') || out.ends_with('E'))
                && !out.starts_with("0x")
                && !out.starts_with("0X")
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // A signed exponent: 1e-3, 2.5E+10 (hex 0xE is excluded).
                out.push(self.bump().expect("peeked"));
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        tokenize(source)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_swallow_their_body() {
        let toks = tokenize(r####"let x = r#"inner "quote" body"# ;"####);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r###"r#"inner "quote" body"#"###);
        assert_eq!(
            idents(r####"let x = r#"inner "quote" body"# ;"####),
            ["let", "x"]
        );
    }

    #[test]
    fn multi_hash_raw_strings_only_close_on_matching_hashes() {
        let src = r#####"r##"a "# b"## trailing"#####;
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokenKind::StrLit);
        assert_eq!(toks[0].text, r#####"r##"a "# b"##"#####);
        assert!(toks[1].is_ident("trailing"));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = tokenize("a /* outer /* inner */ still outer */ z");
        assert!(toks[0].is_ident("a"));
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert!(toks[1].text.contains("inner"));
        assert!(toks[2].is_ident("z"));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = tokenize("fn f<'a>(x: &'a str, c: char) { let y = 'q'; let z = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, ["'q'", "'\\''"]);
    }

    #[test]
    fn labels_lex_as_lifetimes() {
        let toks = tokenize("'outer: loop { break 'outer; }");
        assert_eq!(toks[0].kind, TokenKind::Lifetime);
        assert_eq!(toks[0].text, "'outer");
    }

    #[test]
    fn underscore_char_and_anonymous_lifetime() {
        let toks = tokenize("let c = '_'; fn g(x: &'_ u8) {}");
        assert_eq!(toks[3].kind, TokenKind::CharLit);
        assert_eq!(toks[3].text, "'_'");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'_"));
    }

    #[test]
    fn byte_literals_and_raw_identifiers() {
        let toks = tokenize(r##"let b1 = b'x'; let s = b"bytes"; let r = br#"raw"#; r#type"##);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::CharLit && t.text == "b'x'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::StrLit && t.text == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::StrLit && t.text == "br#\"raw\"#"));
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = tokenize("for i in 0..n { let x = 1.5e-3; let y = t.0; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::NumLit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "1.5e-3", "0"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_extend_to_eof_without_panicking() {
        assert_eq!(tokenize("let s = \"open").len(), 4);
        assert_eq!(tokenize("/* never closed").len(), 1);
        assert_eq!(tokenize("r#\"still open").len(), 1);
    }
}
