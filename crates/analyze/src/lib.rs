//! `mbaa-analyze` — the workspace determinism & allocation-discipline
//! linter.
//!
//! Every result this reproduction produces rests on one invariant:
//! seed-keyed runs are bit-identical across execution paths and worker
//! counts, and (since PR 5) the steady-state round loop performs zero
//! heap allocations. Both are enforced dynamically by
//! `tests/scenario_api.rs` and `tests/alloc_regression.rs`; this crate
//! enforces them *statically*, at the source level, before a single run
//! executes. It is a hand-rolled lexer (the container is offline, so no
//! `syn`) feeding six token-level lints:
//!
//! | lint | scope | forbids |
//! |------|-------|---------|
//! | `determinism/hash-collections` | result-affecting crates | `HashMap`/`HashSet` |
//! | `determinism/wall-clock` | everywhere but `crates/bench` | `Instant`/`SystemTime` |
//! | `determinism/ambient-rng` | everywhere | `thread_rng`/`OsRng`/`from_entropy` |
//! | `hot-path/allocation` | `mbaa: alloc-free` regions | `Vec::new`, `vec![]`, `.to_vec()`, `.clone()`, `.collect()`, `format!`, `Box::new`, `String::from`, … |
//! | `hot-path/vec-growth` | `mbaa: alloc-free` regions | `.push()`, `.extend()`, `.resize()`, … — growth that reallocates once the capacity bound breaks |
//! | `determinism/stable-sort` | result-affecting crates | `.sort()`/`.sort_by()` and `partial_cmp(..).unwrap()` |
//!
//! The *result-affecting crates* are `types`, `msr`, `net`, `adversary`,
//! `mixed`, `core`, `sim`, and `facade`. **Bench exemption rule:** the
//! sole crate allowed to read the wall clock is `crates/bench` — its
//! `benches/` targets included, e.g. the `Instant::now()` loop in
//! `crates/bench/benches/engine_hot_path.rs` — because it measures the
//! engine rather than feeding results; it remains fully subject to the
//! ambient-RNG lint, since even throughput numbers must be reproducible
//! from seeds.
//!
//! # Running the analyzer
//!
//! ```text
//! cargo run -p mbaa-analyze                       # lint the whole workspace
//! cargo run -p mbaa-analyze -- --format json      # machine-readable report (CI)
//! cargo run -p mbaa-analyze -- crates/core        # lint a subtree
//! cargo run -p mbaa-analyze -- --list-lints
//! ```
//!
//! The exit code is 0 when no unsuppressed error-severity diagnostic was
//! found, 1 otherwise, and 2 on usage or I/O errors — the `static-analysis`
//! CI job fails on any unsuppressed diagnostic and uploads the JSON report
//! as an artifact.
//!
//! # Suppressions and markers
//!
//! A finding is waived inline with `mbaa: allow(lint-name, reason)`,
//! placed on the offending line or the line directly above; the reason is
//! mandatory and lands in the JSON report:
//!
//! ```
//! let report = mbaa_analyze::analyze_source(
//!     "crates/sim/src/demo.rs",
//!     r#"
//!     // mbaa: allow(determinism/hash-collections, interned behind a sorted drain)
//!     use std::collections::HashMap;
//!     "#,
//! );
//! assert!(report.diagnostics.is_empty());
//! assert_eq!(report.suppressed.len(), 1);
//! assert_eq!(report.suppressed[0].reason, "interned behind a sorted drain");
//! ```
//!
//! Without the directive the same source fails with a `file:line:col`
//! diagnostic:
//!
//! ```
//! let report = mbaa_analyze::analyze_source(
//!     "crates/sim/src/demo.rs",
//!     "use std::collections::HashMap;",
//! );
//! assert_eq!(report.diagnostics.len(), 1);
//! assert_eq!(report.diagnostics[0].lint, "determinism/hash-collections");
//! assert_eq!((report.diagnostics[0].line, report.diagnostics[0].col), (1, 23));
//! ```
//!
//! Hot regions opt into the allocation lint with an `mbaa: alloc-free`
//! marker covering the next brace block (or, as `//! mbaa: alloc-free`,
//! the whole module):
//!
//! ```
//! let report = mbaa_analyze::analyze_source(
//!     "crates/core/src/demo.rs",
//!     r#"
//!     fn setup() -> Vec<u32> { Vec::new() }   // outside the region: fine
//!     // mbaa: alloc-free
//!     fn hot(xs: &[u32]) -> Vec<u32> { xs.to_vec() }
//!     "#,
//! );
//! assert_eq!(report.diagnostics.len(), 1);
//! assert_eq!(report.diagnostics[0].lint, "hot-path/allocation");
//! ```
//!
//! A malformed directive (unknown lint, missing reason, typo'd marker) is
//! itself an error (`analyzer/bad-directive`): a silently dropped waiver
//! or marker would be worse than none.

pub mod diagnostics;
pub mod directives;
pub mod lexer;
pub mod lints;
pub mod scan;

pub use diagnostics::{Diagnostic, Report, Severity, Suppressed};
pub use scan::{analyze_paths, analyze_source, analyze_workspace, find_workspace_root};
