//! Diagnostics, suppression records, and the machine-readable report.
//!
//! The analyzer's own output obeys the workspace determinism creed: files
//! are scanned in sorted order and diagnostics are emitted in token order,
//! so two runs over the same tree produce byte-identical reports.

use std::fmt;

/// How severe a lint finding is.
///
/// Every shipped lint is [`Severity::Error`]: CI fails on any unsuppressed
/// diagnostic. [`Severity::Warning`] exists for downstream lints that want
/// to surface advice without gating the build (warnings never affect the
/// process exit code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the analyzer run (non-zero exit).
    Error,
    /// Reported, but never fails the run.
    Warning,
}

impl Severity {
    /// The lowercase name used in text and JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding at an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired (e.g. `determinism/hash-collections`).
    pub lint: &'static str,
    /// The lint's severity.
    pub severity: Severity,
    /// The file the finding is in, as a workspace-relative display path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable explanation, including the suggested fix.
    pub message: String,
}

/// A finding that an inline `mbaa: allow(...)` directive waived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The lint that would have fired.
    pub lint: &'static str,
    /// The file the waived finding is in.
    pub file: String,
    /// 1-based line of the waived token.
    pub line: u32,
    /// 1-based column of the waived token.
    pub col: u32,
    /// The reason given in the `allow` directive.
    pub reason: String,
}

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, in (file, token) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings waived by `mbaa: allow(...)` directives, with their reasons.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when no error-severity diagnostic survived suppression — the
    /// condition under which the CLI exits 0.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}]: {}\n  --> {}:{}:{}\n",
                d.severity, d.lint, d.message, d.file, d.line, d.col
            ));
        }
        out.push_str(&format!(
            "{} file(s) scanned: {} error(s), {} warning(s), {} suppressed\n",
            self.files_scanned,
            self.error_count(),
            self.warning_count(),
            self.suppressed.len()
        ));
        out
    }

    /// Renders the machine-readable JSON report consumed by CI.
    ///
    /// The vendored serde shim is a no-op (see `vendor/README.md`), so the
    /// JSON is written by hand; the escaping covers everything a Rust
    /// source path or lint message can contain.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"version\": 1,\n  \"files_scanned\": {},\n",
            self.files_scanned
        ));
        out.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"suppressed\": {}}},\n",
            self.error_count(),
            self.warning_count(),
            self.suppressed.len()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_string(d.lint),
                json_string(d.severity.name()),
                json_string(&d.file),
                d.line,
                d.col,
                json_string(&d.message)
            ));
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"reason\": {}}}",
                json_string(s.lint),
                json_string(&s.file),
                s.line,
                s.col,
                json_string(&s.reason)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                lint: "determinism/wall-clock",
                severity: Severity::Error,
                file: "crates/core/src/engine.rs".into(),
                line: 3,
                col: 9,
                message: "message with \"quotes\" and a\nnewline".into(),
            }],
            suppressed: vec![Suppressed {
                lint: "hot-path/allocation",
                file: "crates/net/src/network.rs".into(),
                line: 7,
                col: 1,
                reason: "cold error path".into(),
            }],
        }
    }

    #[test]
    fn text_report_points_at_file_line_col() {
        let text = sample().to_text();
        assert!(text.contains("--> crates/core/src/engine.rs:3:9"));
        assert!(text.contains("error[determinism/wall-clock]"));
        assert!(text.contains("2 file(s) scanned: 1 error(s), 0 warning(s), 1 suppressed"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = sample().to_json();
        assert!(json.contains("\\\"quotes\\\" and a\\nnewline"));
        assert!(json.contains("\"summary\": {\"errors\": 1, \"warnings\": 0, \"suppressed\": 1}"));
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let report = Report::default();
        assert!(report.is_clean());
        let json = report.to_json();
        assert!(json.contains("\"diagnostics\": [\n  ]"));
    }

    #[test]
    fn warnings_do_not_break_cleanliness() {
        let mut report = sample();
        report.diagnostics[0].severity = Severity::Warning;
        assert!(report.is_clean());
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
    }
}
