//! `determinism/iter-order`: `retain`/`dedup` over data not provably
//! sorted are forbidden in result-affecting crates.
//!
//! Both families are order-sensitive: `dedup` only collapses *adjacent*
//! duplicates, and the surviving element set of `retain` is stable but the
//! meaning of "what survives in what order" inherits whatever order the
//! receiver happened to hold. On data that arrived in collection order
//! (directory walks, map drains, network arrival) that order is an
//! accident, and a result-affecting crate folding it into seed-keyed
//! output silently breaks the bit-identity invariant.
//!
//! The lint accepts a call when the receiver is a plain identifier that
//! was visibly sorted earlier — an `ident.sort*(…)` call on the same
//! identifier within the preceding [`SORT_WINDOW`] code tokens (the
//! canonical `v.sort_unstable(); v.dedup();` idiom). Anything else —
//! chained receivers (`f().dedup()`), field receivers, or no sort in
//! sight — is flagged and must either sort first or carry an
//! `mbaa: allow(determinism/iter-order, reason)` waiver explaining why
//! the order is deterministic anyway.

use super::{
    finding, followed_by_call, is_ident_kind, preceded_by_dot, FileContext, Finding, ITER_ORDER,
};
use crate::lexer::Token;

/// Order-sensitive methods the lint tracks.
const ORDER_SENSITIVE: &[&str] = &["retain", "dedup", "dedup_by", "dedup_by_key"];

/// How far back (in code tokens) a sort of the receiver counts as proof.
/// Generous enough to span a screenful of set-up code, small enough that a
/// sort in one function cannot vouch for a dedup in the next.
const SORT_WINDOW: usize = 300;

pub(crate) fn run(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !ctx.result_affecting {
        return;
    }
    for (i, token) in code.iter().enumerate() {
        if !is_ident_kind(token)
            || !preceded_by_dot(code, i)
            || !followed_by_call(code, i)
            || !ORDER_SENSITIVE.contains(&token.text.as_str())
        {
            continue;
        }
        // The receiver: the identifier just before the dot. A chained or
        // field receiver is never provably sorted here.
        let receiver = (i >= 2)
            .then(|| code[i - 2])
            .filter(|t| is_ident_kind(t))
            .map(|t| t.text.as_str());
        let sorted = receiver.is_some_and(|recv| {
            let from = i.saturating_sub(SORT_WINDOW);
            (from..i.saturating_sub(2)).any(|j| {
                code[j].is_ident(recv)
                    && code.get(j + 1).is_some_and(|t| t.is_punct('.'))
                    && code
                        .get(j + 2)
                        .is_some_and(|t| is_ident_kind(t) && t.text.starts_with("sort"))
            })
        });
        if !sorted {
            let what = match receiver {
                Some(recv) => format!("`{recv}` is not visibly sorted before this call"),
                None => "the receiver is not a plain identifier, so its order \
                         cannot be verified"
                    .to_string(),
            };
            out.push(finding(
                ITER_ORDER,
                token,
                format!(
                    "`.{}()` depends on the receiver's element order and {what}; \
                     sort the receiver first (`sort_unstable`) or waive with a \
                     reason the order is deterministic",
                    token.text
                ),
            ));
        }
    }
}
