//! `hot-path/vec-growth`: unsized container growth is forbidden inside
//! `mbaa: alloc-free` regions.
//!
//! `hot-path/allocation` catches idioms that *always* allocate
//! (`Vec::new`, `.to_vec()`, `format!`, …). Growth methods are sneakier:
//! `.push()` or `.extend()` on a warm, pre-sized buffer is free *almost*
//! every call — until the one call that outgrows the capacity and
//! reallocates mid-round. The counting allocator in
//! `tests/alloc_regression.rs` only notices if the doubling happens under
//! its measured window, so a buffer sized for the tested `n` can hide a
//! latent reallocation at a larger one. This lint flags the growth call
//! itself: inside an `mbaa: alloc-free` region, every `.push()` /
//! `.extend()` / `.resize()` must either be replaced by indexed writes
//! into a pre-sized buffer or carry an explicit
//! `mbaa: allow(hot-path/vec-growth, reason)` stating why the capacity
//! bound holds.
//!
//! Flagged methods: `.push()`, `.extend()`, `.extend_from_slice()`,
//! `.append()`, `.resize()`, `.push_back()`, and `.push_front()`.
//! `.insert()` is deliberately *not* flagged — in this workspace it is
//! overwhelmingly `ProcessSet` (a fixed-width bitset) and map inserts,
//! which do not grow a Vec; the allocating cases are already covered by
//! `hot-path/allocation` when they materialize new storage.

use super::{
    finding, is_ident_kind, preceded_by_dot, AllocFreeRegion, FileContext, Finding, VEC_GROWTH,
};
use crate::lexer::Token;

const GROWTH_METHODS: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "push_back",
    "push_front",
];

pub(crate) fn run(
    _ctx: &FileContext,
    code: &[&Token],
    regions: &[AllocFreeRegion],
    out: &mut Vec<Finding>,
) {
    if regions.is_empty() {
        return;
    }
    for (i, token) in code.iter().enumerate() {
        if !is_ident_kind(token) || !regions.iter().any(|r| r.contains(i)) {
            continue;
        }
        let text = token.text.as_str();
        if preceded_by_dot(code, i) && GROWTH_METHODS.contains(&text) {
            out.push(finding(
                VEC_GROWTH,
                token,
                format!(
                    "`.{text}()` grows a buffer inside an `mbaa: alloc-free` region and can \
                     reallocate when the capacity bound breaks at a larger n; write into a \
                     pre-sized buffer by index, or waive a provably bounded site with \
                     `mbaa: allow(hot-path/vec-growth, reason)`"
                ),
            ));
        }
    }
}
