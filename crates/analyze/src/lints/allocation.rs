//! `hot-path/allocation`: allocating idioms are forbidden inside
//! `mbaa: alloc-free` regions.
//!
//! PR 5 made steady-state rounds zero-allocation, and
//! `tests/alloc_regression.rs` proves it dynamically with a counting
//! allocator — but only for the configurations that test runs. This lint
//! is the static complement: the engine round loop, `exchange_into`,
//! `MsrFunction::apply`, `begin_round_into`, and the other scratch-reuse
//! paths are annotated with `// mbaa: alloc-free`, and any allocating
//! idiom written into them fails the analyzer before a single run
//! executes.
//!
//! Flagged idioms: `Vec::new`, `vec![…]`, `.to_vec()`, `.clone()`,
//! `.collect()`, `format!`, `Box::new`, `String::from`, `.to_owned()`,
//! and `.to_string()`. Pre-sized setup (`with_capacity`) is deliberately
//! *not* flagged — pre-sizing before the hot loop is exactly the
//! sanctioned pattern.
//!
//! Cold paths inside a region (validation errors, first-round
//! initialization, opt-in observability) stay allowed via
//! `mbaa: allow(hot-path/allocation, reason)`, which keeps the waiver and
//! its justification next to the code and in the JSON report.

use super::{
    finding, followed_by_bang, is_ident_kind, path_matches, preceded_by_dot, AllocFreeRegion,
    FileContext, Finding, ALLOCATION,
};
use crate::lexer::Token;

const ALLOCATING_METHODS: &[&str] = &["to_vec", "clone", "collect", "to_owned", "to_string"];
const ALLOCATING_MACROS: &[&str] = &["vec", "format"];
const ALLOCATING_PATHS: &[&[&str]] = &[&["Vec", "new"], &["Box", "new"], &["String", "from"]];

pub(crate) fn run(
    _ctx: &FileContext,
    code: &[&Token],
    regions: &[AllocFreeRegion],
    out: &mut Vec<Finding>,
) {
    if regions.is_empty() {
        return;
    }
    for (i, token) in code.iter().enumerate() {
        if !is_ident_kind(token) || !regions.iter().any(|r| r.contains(i)) {
            continue;
        }
        let text = token.text.as_str();
        let idiom = if preceded_by_dot(code, i) && ALLOCATING_METHODS.contains(&text) {
            Some(format!(".{text}()"))
        } else if followed_by_bang(code, i) && ALLOCATING_MACROS.contains(&text) {
            Some(format!("{text}!"))
        } else if ALLOCATING_PATHS
            .iter()
            .any(|path| path[0] == text && path_matches(code, i, path))
        {
            Some(format!("{text}::…"))
        } else {
            None
        };
        if let Some(idiom) = idiom {
            out.push(finding(
                ALLOCATION,
                token,
                format!(
                    "`{idiom}` allocates inside an `mbaa: alloc-free` region; reuse the \
                     round scratch (see tests/alloc_regression.rs, the dynamic \
                     complement of this lint) or waive a cold path with \
                     `mbaa: allow(hot-path/allocation, reason)`"
                ),
            ));
        }
    }
}
