//! `determinism/stable-sort`: stable sorts and unwrapped partial float
//! comparisons are forbidden in result-affecting crates.
//!
//! PR 5 replaced every hot-path stable sort with `sort_unstable` over a
//! total `(key, index)` comparator: the stable merge sort allocates its
//! temporary buffer (breaking the zero-allocation steady state) and
//! invites accidental reliance on insertion order. Likewise
//! `partial_cmp(..).unwrap()` on floats compiles while hiding a panic on
//! NaN and a non-total order on `-0.0`; `Ord::cmp` (for `Value`, whose
//! finiteness is a construction invariant) or `f64::total_cmp` state the
//! intended total order explicitly.

use super::{
    finding, followed_by_call, is_ident_kind, preceded_by_dot, skip_balanced_parens, FileContext,
    Finding, STABLE_SORT,
};
use crate::lexer::Token;

const STABLE_SORTS: &[(&str, &str)] = &[
    ("sort", "sort_unstable"),
    ("sort_by", "sort_unstable_by"),
    ("sort_by_key", "sort_unstable_by_key"),
];

pub(crate) fn run(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !ctx.result_affecting {
        return;
    }
    for (i, token) in code.iter().enumerate() {
        if !is_ident_kind(token) {
            continue;
        }
        if preceded_by_dot(code, i) && followed_by_call(code, i) {
            if let Some((name, instead)) = STABLE_SORTS.iter().find(|(n, _)| token.text == *n) {
                out.push(finding(
                    STABLE_SORT,
                    token,
                    format!(
                        "stable `.{name}()` allocates a merge buffer and hides \
                         order-dependence; use `.{instead}()` with a total comparator \
                         (PR 5 convention)"
                    ),
                ));
            }
            // `partial_cmp(…).unwrap()` / `.expect(…)`: a non-total float
            // order pretending to be total.
            if token.text == "partial_cmp" {
                if let Some(after) = skip_balanced_parens(code, i + 1) {
                    let chained_unwrap = code.get(after).is_some_and(|t| t.is_punct('.'))
                        && code
                            .get(after + 1)
                            .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
                    if chained_unwrap {
                        out.push(finding(
                            STABLE_SORT,
                            token,
                            "`partial_cmp(..).unwrap()` asserts a total order the type \
                             does not promise; use `Ord::cmp` or `f64::total_cmp`"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}
