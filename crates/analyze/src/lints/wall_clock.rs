//! `determinism/wall-clock`: `Instant`/`SystemTime` are forbidden outside
//! `crates/bench`.
//!
//! Simulated time is round-indexed and seed-keyed; reading the host clock
//! anywhere in a result-affecting path makes runs differ between machines
//! and executions. The single sanctioned exemption is the bench crate
//! (`crates/bench`, its `benches/` targets included — e.g. the hot-path
//! throughput bench's `Instant::now()` loop), which measures the engine
//! rather than feeding it.

use super::{finding, is_ident_kind, FileContext, Finding, WALL_CLOCK};
use crate::lexer::Token;

const FORBIDDEN: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

pub(crate) fn run(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.bench {
        return;
    }
    for token in code {
        if is_ident_kind(token) && FORBIDDEN.contains(&token.text.as_str()) {
            out.push(finding(
                WALL_CLOCK,
                token,
                format!(
                    "`{}` reads the host clock; simulated time is round-indexed and \
                     seed-keyed — only crates/bench may time the wall clock",
                    token.text
                ),
            ));
        }
    }
}
