//! `determinism/wall-clock`: `Instant`/`SystemTime` are forbidden outside
//! the two sanctioned homes.
//!
//! Simulated time is round-indexed and seed-keyed; reading the host clock
//! anywhere in a result-affecting path makes runs differ between machines
//! and executions. Exactly two exemptions exist, and CI asserts the fence
//! stays that narrow:
//!
//! 1. the bench crate (`crates/bench`, its `benches/` targets included —
//!    e.g. the hot-path throughput bench's `Instant::now()` loop), which
//!    measures the engine rather than feeding it, and
//! 2. `crates/obs/src/timing.rs` (`mbaa_obs::timing`), where phase
//!    profiling and the CLI's progress stopwatch live. Timing there only
//!    *listens* to the engines' phase hooks — it never feeds protocol
//!    state (see `docs/observability.md`).

use super::{finding, is_ident_kind, FileContext, Finding, WALL_CLOCK};
use crate::lexer::Token;

const FORBIDDEN: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

pub(crate) fn run(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.bench || ctx.obs_timing {
        return;
    }
    for token in code {
        if is_ident_kind(token) && FORBIDDEN.contains(&token.text.as_str()) {
            out.push(finding(
                WALL_CLOCK,
                token,
                format!(
                    "`{}` reads the host clock; simulated time is round-indexed and \
                     seed-keyed — only crates/bench and obs::timing may time the \
                     wall clock",
                    token.text
                ),
            ));
        }
    }
}
