//! `determinism/hash-collections`: `std::collections::{HashMap, HashSet}`
//! are forbidden in result-affecting crates.
//!
//! Their iteration order depends on `RandomState`'s per-process seed, so
//! any result derived by iterating one breaks the bit-identical-across-
//! runs invariant (ROADMAP, "Architecture"). `BTreeMap`/`BTreeSet` or an
//! index-keyed `Vec` are the deterministic replacements. The lint flags
//! the *type names*, wherever they appear in code (imports included):
//! merely importing the type invites the next call site to use it.

use super::{finding, is_ident_kind, FileContext, Finding, HASH_COLLECTIONS};
use crate::lexer::Token;

const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "BTreeMap or an index-keyed Vec"),
    (
        "HashSet",
        "BTreeSet, a sorted Vec, or a bitset keyed by ProcessId",
    ),
];

pub(crate) fn run(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !ctx.result_affecting {
        return;
    }
    for token in code {
        if !is_ident_kind(token) {
            continue;
        }
        if let Some((name, instead)) = FORBIDDEN.iter().find(|(name, _)| token.text == *name) {
            out.push(finding(
                HASH_COLLECTIONS,
                token,
                format!(
                    "`{name}` iterates in RandomState order, which varies per process; \
                     results derived from it are not seed-reproducible — use {instead}"
                ),
            ));
        }
    }
}
