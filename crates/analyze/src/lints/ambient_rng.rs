//! `determinism/ambient-rng`: entropy-seeded randomness is forbidden
//! everywhere.
//!
//! All randomness in this workspace flows from scenario seeds
//! (`StdRng::seed_from_u64` and the SplitMix-finalized per-link draws);
//! `thread_rng()`, `OsRng`, and `from_entropy()` pull operating-system
//! entropy and destroy replayability. Unlike the other determinism lints
//! this one has no exempt crate: even a bench that drew ambient random
//! inputs would produce unreproducible throughput numbers.

use super::{finding, is_ident_kind, path_matches, FileContext, Finding, AMBIENT_RNG};
use crate::lexer::Token;

const FORBIDDEN: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "EntropyRng",
];

pub(crate) fn run(_ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    for (i, token) in code.iter().enumerate() {
        if !is_ident_kind(token) {
            continue;
        }
        let ambient = FORBIDDEN.contains(&token.text.as_str())
            // `rand::random()` draws from the thread-local generator too;
            // the bare ident `random` is too common to flag on its own.
            || path_matches(code, i, &["rand", "random"]);
        if ambient {
            out.push(finding(
                AMBIENT_RNG,
                token,
                format!(
                    "`{}` draws operating-system entropy; all randomness must flow \
                     from scenario seeds (StdRng::seed_from_u64)",
                    token.text
                ),
            ));
        }
    }
}
