//! The lint framework: registry, file contexts, suppression, and the
//! per-file driver.
//!
//! Each lint is a pure scan over the code-token stream (comments are
//! routed to the directive parser instead). Scoping is path-derived — see
//! [`FileContext`] — so the same lint set runs everywhere and each lint
//! decides from the context whether it applies.

mod allocation;
mod ambient_rng;
mod hash_collections;
mod iter_order;
mod stable_sort;
mod vec_growth;
mod wall_clock;

use crate::diagnostics::{Diagnostic, Severity, Suppressed};
use crate::directives::{parse_comment, Directive};
use crate::lexer::{Token, TokenKind};

/// The description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// The stable `group/name` identifier used in diagnostics and `allow`
    /// directives.
    pub name: &'static str,
    /// The lint's severity.
    pub severity: Severity,
    /// One-line summary shown by `--list-lints`.
    pub summary: &'static str,
}

/// `determinism/hash-collections` — hash-collection types in result-affecting crates.
pub const HASH_COLLECTIONS: LintSpec = LintSpec {
    name: "determinism/hash-collections",
    severity: Severity::Error,
    summary: "std HashMap/HashSet iteration order is nondeterministic; \
              forbidden in result-affecting crates",
};

/// `determinism/wall-clock` — wall-clock reads outside the two sanctioned
/// homes: `crates/bench` and the `obs::timing` module.
pub const WALL_CLOCK: LintSpec = LintSpec {
    name: "determinism/wall-clock",
    severity: Severity::Error,
    summary: "Instant/SystemTime leak wall-clock state into results; \
              only crates/bench and obs::timing may time things",
};

/// `determinism/ambient-rng` — ambient randomness anywhere in the tree.
pub const AMBIENT_RNG: LintSpec = LintSpec {
    name: "determinism/ambient-rng",
    severity: Severity::Error,
    summary: "thread_rng/OsRng/entropy-seeded constructors bypass scenario \
              seeds; forbidden everywhere",
};

/// `hot-path/allocation` — allocating idioms inside `mbaa: alloc-free` regions.
pub const ALLOCATION: LintSpec = LintSpec {
    name: "hot-path/allocation",
    severity: Severity::Error,
    summary: "allocating idioms inside `mbaa: alloc-free` regions break the \
              zero-allocation steady state",
};

/// `hot-path/vec-growth` — unsized container growth inside `mbaa: alloc-free` regions.
pub const VEC_GROWTH: LintSpec = LintSpec {
    name: "hot-path/vec-growth",
    severity: Severity::Error,
    summary: "push/extend growth inside `mbaa: alloc-free` regions can \
              reallocate when the capacity bound breaks; write into \
              pre-sized buffers by index",
};

/// `determinism/iter-order` — `retain`/`dedup` over data not provably
/// sorted in result-affecting crates.
pub const ITER_ORDER: LintSpec = LintSpec {
    name: "determinism/iter-order",
    severity: Severity::Error,
    summary: "retain/dedup depend on the receiver's element order; in \
              result-affecting crates the receiver must be sorted \
              (`recv.sort*()` earlier in the function) or the call waived \
              with a reason",
};

/// `determinism/stable-sort` — stable sorts and non-total float comparators.
pub const STABLE_SORT: LintSpec = LintSpec {
    name: "determinism/stable-sort",
    severity: Severity::Error,
    summary: "stable sort()/sort_by allocate merge buffers and \
              partial_cmp().unwrap() hides non-total float orders; use \
              sort_unstable with a total comparator",
};

/// `analyzer/bad-directive` — a malformed `mbaa:` comment. A typo in a
/// suppression or marker must not be silently ignored.
pub const BAD_DIRECTIVE: LintSpec = LintSpec {
    name: "analyzer/bad-directive",
    severity: Severity::Error,
    summary: "a comment starts with `mbaa:` but parses as neither \
              allow(lint, reason) nor alloc-free",
};

/// Every lint the analyzer ships, in reporting order.
pub const LINTS: &[LintSpec] = &[
    HASH_COLLECTIONS,
    WALL_CLOCK,
    AMBIENT_RNG,
    ALLOCATION,
    VEC_GROWTH,
    STABLE_SORT,
    ITER_ORDER,
    BAD_DIRECTIVE,
];

/// The registered lint names.
#[must_use]
pub fn lint_names() -> Vec<&'static str> {
    LINTS.iter().map(|l| l.name).collect()
}

/// Resolves a lint name to its canonical `&'static str`, if registered.
#[must_use]
pub fn known_lint(name: &str) -> Option<&'static str> {
    LINTS.iter().find(|l| l.name == name).map(|l| l.name)
}

/// The crates whose output feeds seed-keyed results; `HashMap` iteration
/// or a stable sort anywhere in these can silently change what a run
/// returns. `crates/bench` and `crates/analyze` only observe.
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "types",
    "msr",
    "net",
    "adversary",
    "mixed",
    "core",
    "obs",
    "sim",
    "facade",
];

/// Path-derived scoping for one file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// The display path used in diagnostics.
    pub path: String,
    /// `true` under one of [`RESULT_AFFECTING_CRATES`].
    pub result_affecting: bool,
    /// `true` under `crates/bench` — one of the two wall-clock exemptions.
    pub bench: bool,
    /// `true` for `crates/obs/src/timing.rs` — the *only* result-affecting
    /// module sanctioned to read the wall clock (the observability fence;
    /// see `docs/observability.md`).
    pub obs_timing: bool,
}

impl FileContext {
    /// Derives the context from a path. Matching is by path component, so
    /// both workspace-relative (`crates/msr/src/lib.rs`) and absolute
    /// paths work.
    #[must_use]
    pub fn from_path(path: &str) -> Self {
        let normalized = path.replace('\\', "/");
        let in_crate = |name: &str| normalized.contains(&format!("crates/{name}/"));
        FileContext {
            result_affecting: RESULT_AFFECTING_CRATES.iter().any(|c| in_crate(c)),
            bench: in_crate("bench"),
            obs_timing: in_crate("obs") && normalized.ends_with("src/timing.rs"),
            path: path.to_string(),
        }
    }
}

/// A half-open range of code-token indices opted into `hot-path/allocation`.
#[derive(Debug, Clone, Copy)]
pub struct AllocFreeRegion {
    /// First code-token index inside the region.
    pub start: usize,
    /// One past the last code-token index inside the region.
    pub end: usize,
}

impl AllocFreeRegion {
    /// Whether the code token at `idx` lies inside this region.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }
}

/// A raw (pre-suppression) finding: the lint, the offending token, and
/// the message.
pub(crate) struct Finding {
    pub spec: LintSpec,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Runs every lint over one file's token stream and applies suppressions.
#[must_use]
pub fn analyze_tokens(ctx: &FileContext, tokens: &[Token]) -> (Vec<Diagnostic>, Vec<Suppressed>) {
    // Split the stream: comments feed the directive parser, everything
    // else feeds the lints.
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<(u32, &'static str, String)> = Vec::new();
    let mut regions: Vec<AllocFreeRegion> = Vec::new();

    let mut code_seen = 0usize;
    for token in tokens {
        if !token.is_comment() {
            code_seen += 1;
            continue;
        }
        match parse_comment(token) {
            None => {}
            Some(Err(err)) => findings.push(Finding {
                spec: BAD_DIRECTIVE,
                line: err.line,
                col: err.col,
                message: err.message,
            }),
            Some(Ok(parsed)) => match parsed.directive {
                Directive::Allow { lint, reason } => allows.push((parsed.line, lint, reason)),
                Directive::AllocFree { module_level } => {
                    if module_level {
                        regions.push(AllocFreeRegion {
                            start: 0,
                            end: code.len(),
                        });
                    } else {
                        regions.push(brace_region(&code, code_seen));
                    }
                }
            },
        }
    }

    hash_collections::run(ctx, &code, &mut findings);
    wall_clock::run(ctx, &code, &mut findings);
    ambient_rng::run(ctx, &code, &mut findings);
    allocation::run(ctx, &code, &regions, &mut findings);
    vec_growth::run(ctx, &code, &regions, &mut findings);
    stable_sort::run(ctx, &code, &mut findings);
    iter_order::run(ctx, &code, &mut findings);

    // Report in source order regardless of which lint found what.
    findings.sort_by_key(|f| (f.line, f.col));

    let mut diagnostics = Vec::new();
    let mut suppressed = Vec::new();
    for finding in findings {
        // An allow on line L waives findings on L (trailing comment) and
        // L + 1 (comment-above placement).
        let waiver = allows.iter().find(|(line, lint, _)| {
            *lint == finding.spec.name && (*line == finding.line || line + 1 == finding.line)
        });
        match waiver {
            Some((_, lint, reason)) => suppressed.push(Suppressed {
                lint,
                file: ctx.path.clone(),
                line: finding.line,
                col: finding.col,
                reason: reason.clone(),
            }),
            None => diagnostics.push(Diagnostic {
                lint: finding.spec.name,
                severity: finding.spec.severity,
                file: ctx.path.clone(),
                line: finding.line,
                col: finding.col,
                message: finding.message,
            }),
        }
    }
    (diagnostics, suppressed)
}

/// Resolves a function-level `alloc-free` marker to the next balanced
/// `{…}` block at or after code-token index `from` (attributes and the
/// signature in between are skipped by construction: the first `{` after
/// the marker opens the body). A marker with no following brace covers
/// the rest of the file — better to over-lint than to silently drop the
/// region.
fn brace_region(code: &[&Token], from: usize) -> AllocFreeRegion {
    let mut depth = 0usize;
    let mut start = None;
    for (i, token) in code.iter().enumerate().skip(from) {
        if token.is_punct('{') {
            if start.is_none() {
                start = Some(i + 1);
            }
            depth += 1;
        } else if token.is_punct('}') && start.is_some() {
            depth -= 1;
            if depth == 0 {
                return AllocFreeRegion {
                    start: start.expect("set with depth"),
                    end: i,
                };
            }
        }
    }
    AllocFreeRegion {
        start: start.map_or(from, |s| s),
        end: code.len(),
    }
}

// --- shared token-pattern helpers -----------------------------------------

/// Matches `segs[0] :: segs[1] :: …` starting at code index `i`.
pub(crate) fn path_matches(code: &[&Token], i: usize, segs: &[&str]) -> bool {
    let mut idx = i;
    for (k, seg) in segs.iter().enumerate() {
        if k > 0 {
            if !(code.get(idx).is_some_and(|t| t.is_punct(':'))
                && code.get(idx + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            idx += 2;
        }
        if !code.get(idx).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        idx += 1;
    }
    true
}

/// Whether the token at `i` is used as a method (preceded by `.`). The
/// call parens are not required so turbofish forms
/// (`.collect::<Vec<_>>()`) still match.
pub(crate) fn preceded_by_dot(code: &[&Token], i: usize) -> bool {
    i > 0 && code[i - 1].is_punct('.')
}

/// Whether the token after `i` opens a call (`(`).
pub(crate) fn followed_by_call(code: &[&Token], i: usize) -> bool {
    code.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Whether the token after `i` is a macro bang (`!`).
pub(crate) fn followed_by_bang(code: &[&Token], i: usize) -> bool {
    code.get(i + 1).is_some_and(|t| t.is_punct('!'))
}

/// Skips a balanced `( … )` group starting at `i` (which must be `(`);
/// returns the index one past the closing paren, or `None`.
pub(crate) fn skip_balanced_parens(code: &[&Token], i: usize) -> Option<usize> {
    if !code.get(i)?.is_punct('(') {
        return None;
    }
    let mut depth = 0usize;
    for (k, token) in code.iter().enumerate().skip(i) {
        if token.is_punct('(') {
            depth += 1;
        } else if token.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

pub(crate) fn finding(spec: LintSpec, token: &Token, message: String) -> Finding {
    Finding {
        spec,
        line: token.line,
        col: token.col,
        message,
    }
}

/// Convenience for lint scans: `true` when the token is any identifier.
pub(crate) fn is_ident_kind(token: &Token) -> bool {
    token.kind == TokenKind::Ident
}
