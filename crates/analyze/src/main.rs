//! The `mbaa-analyze` CLI: lint the workspace (or explicit paths) and
//! report in text or JSON. See the crate docs of [`mbaa_analyze`] for the
//! lint set, scoping rules, and the suppression syntax.

use std::path::PathBuf;
use std::process::ExitCode;

use mbaa_analyze::{analyze_paths, find_workspace_root, lints, scan};

const USAGE: &str = "usage: mbaa-analyze [--format text|json] [--list-lints] [paths…]

Lints the mbaa workspace for determinism and allocation-discipline
violations. With no paths, scans crates/, src/, examples/, and tests/
under the enclosing workspace root (vendor/, target/, and fixtures/
directories are skipped). Exit code: 0 clean, 1 diagnostics found,
2 usage or I/O error.";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "mbaa-analyze: --format expects `text` or `json`, got {:?}\n\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-lints" => {
                for lint in lints::LINTS {
                    println!("{} [{}]\n    {}", lint.name, lint.severity, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("mbaa-analyze: unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(err) => {
            eprintln!("mbaa-analyze: cannot determine working directory: {err}");
            return ExitCode::from(2);
        }
    };
    let root = find_workspace_root(&cwd);
    if paths.is_empty() {
        paths = scan::default_roots(&root);
    }

    let report = match analyze_paths(&root, &paths) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("mbaa-analyze: {err}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
