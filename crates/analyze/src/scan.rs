//! File discovery and the whole-workspace analysis driver.
//!
//! The walk is deterministic (directories are read, sorted, then
//! descended) and skips what must never be linted:
//!
//! - `vendor/` — offline API shims, not result-affecting code;
//! - `target/` and hidden directories;
//! - any directory named `fixtures` — the analyzer's own test fixtures
//!   are *deliberate* violations and would otherwise fail CI. An
//!   explicitly passed file path bypasses the directory filters, so
//!   fixtures can still be analyzed on purpose.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diagnostics::Report;
use crate::lexer::tokenize;
use crate::lints::{analyze_tokens, FileContext};

/// Directory names the recursive walk never descends into.
pub const SKIPPED_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Analyzes one file's source under a display path. The path decides the
/// lint scopes (see [`FileContext::from_path`]); it does not need to
/// exist on disk, which is how the test suite analyzes fixture sources
/// under virtual `crates/...` paths.
#[must_use]
pub fn analyze_source(display_path: &str, source: &str) -> Report {
    let ctx = FileContext::from_path(display_path);
    let tokens = tokenize(source);
    let (diagnostics, suppressed) = analyze_tokens(&ctx, &tokens);
    Report {
        files_scanned: 1,
        diagnostics,
        suppressed,
    }
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`. Falls back to
/// `start` when nothing matches (e.g. analyzing a bare directory of .rs
/// files).
#[must_use]
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d.to_path_buf();
            }
        }
        dir = d.parent();
    }
    start.to_path_buf()
}

/// The default scan roots under a workspace root: every first-party
/// source tree, `vendor/` excluded.
#[must_use]
pub fn default_roots(workspace_root: &Path) -> Vec<PathBuf> {
    ["crates", "src", "examples", "tests"]
        .iter()
        .map(|d| workspace_root.join(d))
        .filter(|p| p.is_dir())
        .collect()
}

/// Recursively collects `.rs` files under `path` in sorted order,
/// honouring [`SKIPPED_DIRS`]. A `path` that is itself a file is taken
/// verbatim (fixture analysis on purpose).
pub fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(path)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        let name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if entry.is_dir() {
            if SKIPPED_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Analyzes a set of files or directories, reporting each file under its
/// path relative to `workspace_root` (absolute paths outside the root are
/// reported as given).
///
/// # Errors
///
/// Propagates I/O errors from directory walks; an unreadable individual
/// file is reported and skipped rather than aborting the run.
pub fn analyze_paths(workspace_root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let mut files = Vec::new();
    for path in paths {
        collect_rs_files(path, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for file in &files {
        let display = file
            .strip_prefix(workspace_root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match fs::read_to_string(file) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("mbaa-analyze: skipping unreadable {display}: {err}");
                continue;
            }
        };
        let file_report = analyze_source(&display, &source);
        report.files_scanned += 1;
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed.extend(file_report.suppressed);
    }
    Ok(report)
}

/// Analyzes the whole workspace rooted at `workspace_root` (the default
/// CLI invocation, and what the `static-analysis` CI job runs).
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn analyze_workspace(workspace_root: &Path) -> io::Result<Report> {
    analyze_paths(workspace_root, &default_roots(workspace_root))
}
