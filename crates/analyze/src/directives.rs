//! Parsing of inline `mbaa:` directives out of comment tokens.
//!
//! Two directives exist:
//!
//! - `// mbaa: allow(lint-name, reason)` — waives findings of `lint-name`
//!   on the directive's own line and on the line directly below it (so
//!   both trailing and comment-above placements work). The reason is
//!   mandatory and is carried into the JSON report's `suppressed` list.
//! - `// mbaa: alloc-free` — opts the next brace-delimited region (a
//!   function body, a loop, an `impl` block) into the
//!   `hot-path/allocation` lint. Written as an inner doc comment
//!   (`//! mbaa: alloc-free` or `/*! mbaa: alloc-free */`) it marks the
//!   whole module/file instead.
//!
//! A comment that starts with `mbaa:` but parses as neither is itself a
//! diagnostic ([`crate::lints::BAD_DIRECTIVE`]): a silently ignored typo
//! in a suppression would un-waive real findings, and a typo in a marker
//! would silently stop linting a hot region.

use crate::lexer::{Token, TokenKind};
use crate::lints;

/// A successfully parsed directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `mbaa: allow(lint, reason)`.
    Allow {
        /// The (known) lint name being waived.
        lint: &'static str,
        /// Why the waiver is sound.
        reason: String,
    },
    /// `mbaa: alloc-free`; `module_level` when written as an inner doc
    /// comment, in which case the whole file is the region.
    AllocFree {
        /// Marks the entire file instead of the next brace block.
        module_level: bool,
    },
}

/// A directive with the position of its comment token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDirective {
    /// The parsed directive.
    pub directive: Directive,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// Why a `mbaa:`-prefixed comment failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveError {
    /// Human-readable explanation.
    pub message: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// Extracts the directive from a comment token, if it carries one.
///
/// Returns `None` for ordinary comments, `Some(Ok(..))` for well-formed
/// directives, and `Some(Err(..))` for comments that start with `mbaa:`
/// but are malformed.
#[must_use]
pub fn parse_comment(token: &Token) -> Option<Result<ParsedDirective, DirectiveError>> {
    let (body, module_level) = strip_comment_sigils(token)?;
    let body = body.trim();
    let rest = body.strip_prefix("mbaa:")?.trim();
    let err = |message: String| {
        Some(Err(DirectiveError {
            message,
            line: token.line,
            col: token.col,
        }))
    };
    let ok = |directive: Directive| {
        Some(Ok(ParsedDirective {
            directive,
            line: token.line,
            col: token.col,
        }))
    };

    if rest == "alloc-free" {
        return ok(Directive::AllocFree { module_level });
    }
    if let Some(args) = rest.strip_prefix("allow") {
        let args = args.trim();
        let Some(inner) = args.strip_prefix('(').and_then(|a| a.strip_suffix(')')) else {
            return err(format!(
                "malformed allow directive `{rest}`: expected `mbaa: allow(lint-name, reason)`"
            ));
        };
        let Some((lint_name, reason)) = inner.split_once(',') else {
            return err(format!(
                "allow directive `{rest}` is missing its reason: \
                 expected `mbaa: allow(lint-name, reason)`"
            ));
        };
        let lint_name = lint_name.trim();
        let reason = reason.trim();
        let Some(lint) = lints::known_lint(lint_name) else {
            return err(format!(
                "allow directive names unknown lint `{lint_name}`; known lints: {}",
                lints::lint_names().join(", ")
            ));
        };
        if reason.is_empty() {
            return err(format!(
                "allow directive for `{lint_name}` has an empty reason; \
                 say why the waiver is sound"
            ));
        }
        return ok(Directive::Allow {
            lint,
            reason: reason.to_string(),
        });
    }
    err(format!(
        "unknown mbaa directive `{rest}`: expected `allow(lint-name, reason)` or `alloc-free`"
    ))
}

/// Strips `//`/`///`/`//!` or `/* … */`/`/** … */`/`/*! … */` from a
/// comment token, returning the body and whether the comment was an inner
/// doc comment (the module-level marker form).
fn strip_comment_sigils(token: &Token) -> Option<(String, bool)> {
    match token.kind {
        TokenKind::LineComment => {
            let rest = token.text.trim_start_matches('/');
            let module_level = rest.starts_with('!');
            Some((rest.trim_start_matches('!').to_string(), module_level))
        }
        TokenKind::BlockComment => {
            let rest = token.text.strip_prefix("/*").unwrap_or(&token.text);
            let rest = rest.strip_suffix("*/").unwrap_or(rest);
            let rest = rest.trim_start_matches('*');
            let module_level = rest.starts_with('!');
            Some((rest.trim_start_matches('!').to_string(), module_level))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn first_comment(source: &str) -> Token {
        tokenize(source)
            .into_iter()
            .find(Token::is_comment)
            .expect("source holds a comment")
    }

    #[test]
    fn plain_comments_are_not_directives() {
        assert!(parse_comment(&first_comment("// the mbaa engine is fast")).is_none());
        assert!(parse_comment(&first_comment("/* mbaa is the crate name */")).is_none());
    }

    #[test]
    fn allow_parses_lint_and_reason() {
        let parsed = parse_comment(&first_comment(
            "// mbaa: allow(determinism/wall-clock, bench-only timing)",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(
            parsed.directive,
            Directive::Allow {
                lint: "determinism/wall-clock",
                reason: "bench-only timing".into()
            }
        );
    }

    #[test]
    fn alloc_free_marker_parses_in_both_forms() {
        let block = parse_comment(&first_comment("/* mbaa: alloc-free */"))
            .unwrap()
            .unwrap();
        assert_eq!(
            block.directive,
            Directive::AllocFree {
                module_level: false
            }
        );
        let module = parse_comment(&first_comment("//! mbaa: alloc-free"))
            .unwrap()
            .unwrap();
        assert_eq!(
            module.directive,
            Directive::AllocFree { module_level: true }
        );
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = parse_comment(&first_comment("// mbaa: allow(determinism/wall-clock)"))
            .unwrap()
            .unwrap_err();
        assert!(
            err.message.contains("missing its reason"),
            "{}",
            err.message
        );
        let err = parse_comment(&first_comment("// mbaa: allow(determinism/wall-clock, )"))
            .unwrap()
            .unwrap_err();
        assert!(err.message.contains("empty reason"), "{}", err.message);
    }

    #[test]
    fn unknown_lint_and_unknown_directive_are_errors() {
        let err = parse_comment(&first_comment("// mbaa: allow(no-such-lint, reason)"))
            .unwrap()
            .unwrap_err();
        assert!(err.message.contains("unknown lint"), "{}", err.message);
        let err = parse_comment(&first_comment("// mbaa: alloc_free"))
            .unwrap()
            .unwrap_err();
        assert!(
            err.message.contains("unknown mbaa directive"),
            "{}",
            err.message
        );
    }
}
