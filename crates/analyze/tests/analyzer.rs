//! End-to-end tests for `mbaa-analyze`: fixtures exercised under virtual
//! paths (so crate scoping is tested without real files), a lint-clean
//! check of the shipped tree, and black-box runs of the compiled binary.
//!
//! Every forbidden name referenced here lives inside a string literal —
//! this file is itself scanned by the workspace walk and must stay clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use mbaa_analyze::{analyze_source, analyze_workspace, Report};

const LEXER_TRICKY: &str = include_str!("fixtures/lexer_tricky.rs");
const HASH_COLLECTIONS: &str = include_str!("fixtures/hash_collections.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const AMBIENT_RNG: &str = include_str!("fixtures/ambient_rng.rs");
const ALLOC_FREE: &str = include_str!("fixtures/alloc_free.rs");
const ALLOC_FREE_MODULE: &str = include_str!("fixtures/alloc_free_module.rs");
const VEC_GROWTH: &str = include_str!("fixtures/vec_growth.rs");
const STABLE_SORT: &str = include_str!("fixtures/stable_sort.rs");
const ITER_ORDER: &str = include_str!("fixtures/iter_order.rs");
const BAD_DIRECTIVES: &str = include_str!("fixtures/bad_directives.rs");

/// Analyzes fixture source as if it lived at `virtual_path`.
fn analyze_at(virtual_path: &str, source: &str) -> Report {
    analyze_source(virtual_path, source)
}

fn lints_and_lines(report: &Report) -> Vec<(&'static str, u32)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.lint, d.line))
        .collect()
}

#[test]
fn lexer_tricky_fixture_is_silent_even_in_result_affecting_scope() {
    let report = analyze_at("crates/msr/src/fixture.rs", LEXER_TRICKY);
    assert!(
        report.diagnostics.is_empty(),
        "needles inside literals/comments must not fire:\n{}",
        report.to_text()
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn hash_collections_positive_and_suppressed() {
    let report = analyze_at("crates/msr/src/fixture.rs", HASH_COLLECTIONS);
    assert_eq!(
        lints_and_lines(&report),
        vec![("determinism/hash-collections", 3)],
        "{}",
        report.to_text()
    );
    // `use std::collections::HashMap;` — the offending ident starts at col 23.
    assert_eq!(
        (report.diagnostics[0].line, report.diagnostics[0].col),
        (3, 23)
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "determinism/hash-collections");
    assert_eq!(report.suppressed[0].line, 7);
    assert!(report.suppressed[0].reason.contains("waiver syntax"));
}

#[test]
fn hash_collections_only_fires_in_result_affecting_crates() {
    for path in [
        "crates/bench/src/fixture.rs",
        "crates/analyze/src/fixture.rs",
        "src/fixture.rs",
    ] {
        let report = analyze_at(path, HASH_COLLECTIONS);
        assert!(
            report.diagnostics.is_empty(),
            "{path} should be out of scope"
        );
    }
}

#[test]
fn wall_clock_positive_suppressed_and_bench_exempt() {
    let report = analyze_at("crates/core/src/fixture.rs", WALL_CLOCK);
    assert_eq!(
        lints_and_lines(&report),
        vec![("determinism/wall-clock", 3)]
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "determinism/wall-clock");

    // The bench crate (including its benches/ targets) is exempt.
    let bench = analyze_at("crates/bench/benches/fixture.rs", WALL_CLOCK);
    assert!(bench.diagnostics.is_empty(), "{}", bench.to_text());
}

#[test]
fn wall_clock_exempts_obs_timing_but_not_the_rest_of_obs() {
    // The observability fence: `crates/obs/src/timing.rs` is the single
    // result-affecting module sanctioned to read the wall clock.
    let timing = analyze_at("crates/obs/src/timing.rs", WALL_CLOCK);
    assert!(timing.diagnostics.is_empty(), "{}", timing.to_text());

    // Everywhere else in crates/obs the lint fires as usual.
    let lib = analyze_at("crates/obs/src/lib.rs", WALL_CLOCK);
    assert_eq!(lints_and_lines(&lib), vec![("determinism/wall-clock", 3)]);
    // And a `timing.rs` outside crates/obs is not exempt.
    let elsewhere = analyze_at("crates/core/src/timing.rs", WALL_CLOCK);
    assert_eq!(
        lints_and_lines(&elsewhere),
        vec![("determinism/wall-clock", 3)]
    );
}

#[test]
fn iter_order_flags_unsorted_retain_and_dedup() {
    let report = analyze_at("crates/msr/src/fixture.rs", ITER_ORDER);
    assert_eq!(
        lints_and_lines(&report),
        vec![
            ("determinism/iter-order", 4),
            ("determinism/iter-order", 8),
            ("determinism/iter-order", 12),
        ],
        "{}",
        report.to_text()
    );
    // The chained-receiver positive explains why it cannot be verified.
    assert!(report.diagnostics[2].message.contains("plain identifier"));
    // `xs.sort_unstable(); xs.dedup();` passes; the waived retain is
    // recorded as suppressed.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "determinism/iter-order");
    assert_eq!(report.suppressed[0].line, 23);
}

#[test]
fn iter_order_only_fires_in_result_affecting_crates() {
    for path in [
        "crates/bench/src/fixture.rs",
        "crates/cli/src/fixture.rs",
        "crates/analyze/src/fixture.rs",
        "tests/fixture.rs",
    ] {
        let report = analyze_at(path, ITER_ORDER);
        assert!(
            report.diagnostics.is_empty(),
            "{path} should be out of scope:\n{}",
            report.to_text()
        );
    }
}

#[test]
fn ambient_rng_fires_everywhere_including_bench() {
    for path in [
        "crates/msr/src/fixture.rs",
        "crates/bench/benches/fixture.rs",
        "examples/fixture.rs",
    ] {
        let report = analyze_at(path, AMBIENT_RNG);
        assert_eq!(
            lints_and_lines(&report),
            vec![("determinism/ambient-rng", 4)],
            "{path}:\n{}",
            report.to_text()
        );
        assert_eq!(report.suppressed.len(), 1, "{path}");
        assert_eq!(report.suppressed[0].line, 10);
    }
}

#[test]
fn alloc_free_region_scopes_the_allocation_lint() {
    let report = analyze_at("crates/core/src/fixture.rs", ALLOC_FREE);
    // Only the two allocations inside the marked region fire; the setup fn
    // before it and the fn after it allocate freely.
    assert_eq!(
        lints_and_lines(&report),
        vec![("hot-path/allocation", 12), ("hot-path/allocation", 13)],
        "{}",
        report.to_text()
    );
    // `    let copied = ys.to_vec();` — the method name starts at col 21.
    assert_eq!(
        (report.diagnostics[0].line, report.diagnostics[0].col),
        (12, 21)
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "hot-path/allocation");
    assert_eq!(report.suppressed[0].line, 15);
}

#[test]
fn vec_growth_fires_only_inside_alloc_free_regions() {
    let report = analyze_at("crates/core/src/fixture.rs", VEC_GROWTH);
    // Only the two growth calls inside the marked region fire; the
    // pre-region setup and post-region fn grow freely, and the BTreeSet
    // insert inside the region is not Vec growth.
    assert_eq!(
        lints_and_lines(&report),
        vec![("hot-path/vec-growth", 13), ("hot-path/vec-growth", 14)],
        "{}",
        report.to_text()
    );
    // `    xs.push(7);` — the method name starts at col 8.
    assert_eq!(
        (report.diagnostics[0].line, report.diagnostics[0].col),
        (13, 8)
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "hot-path/vec-growth");
    assert_eq!(report.suppressed[0].line, 16);
    assert!(report.suppressed[0].reason.contains("waiver syntax"));
}

#[test]
fn vec_growth_waivers_do_not_leak_across_lints() {
    // An allocation waiver on the line above must not suppress a
    // vec-growth finding on the same call, and vice versa — waivers are
    // matched per lint name.
    let source = concat!(
        "// mbaa: alloc-free\n",
        "fn hot(xs: &mut Vec<u64>, ys: &[u64]) {\n",
        "    // mbaa: allow(hot-path/allocation, wrong lint on purpose)\n",
        "    xs.extend(ys.iter().copied());\n",
        "}\n",
    );
    let report = analyze_at("crates/core/src/fixture.rs", source);
    assert_eq!(
        lints_and_lines(&report),
        vec![("hot-path/vec-growth", 4)],
        "{}",
        report.to_text()
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn module_level_alloc_free_marker_covers_the_whole_file() {
    let report = analyze_at("crates/analyze/src/fixture.rs", ALLOC_FREE_MODULE);
    assert_eq!(
        lints_and_lines(&report),
        vec![
            ("hot-path/allocation", 5),
            ("hot-path/allocation", 6),
            ("hot-path/vec-growth", 7),
        ],
        "{}",
        report.to_text()
    );
}

#[test]
fn stable_sort_positives_and_suppressed() {
    let report = analyze_at("crates/sim/src/fixture.rs", STABLE_SORT);
    // Line 4: stable sort(). Line 5: stable sort_by() AND the
    // partial_cmp(..).unwrap() comparator — two findings on one line.
    assert_eq!(
        lints_and_lines(&report),
        vec![
            ("determinism/stable-sort", 4),
            ("determinism/stable-sort", 5),
            ("determinism/stable-sort", 5),
        ],
        "{}",
        report.to_text()
    );
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].line, 11);

    let bench = analyze_at("crates/bench/src/fixture.rs", STABLE_SORT);
    assert!(bench.diagnostics.is_empty());
}

#[test]
fn malformed_directives_are_errors_in_any_scope() {
    let report = analyze_at("crates/bench/src/fixture.rs", BAD_DIRECTIVES);
    assert_eq!(
        lints_and_lines(&report),
        vec![
            ("analyzer/bad-directive", 3),
            ("analyzer/bad-directive", 6),
            ("analyzer/bad-directive", 9),
        ],
        "{}",
        report.to_text()
    );
}

#[test]
fn json_report_carries_the_finding() {
    let report = analyze_at("crates/msr/src/fixture.rs", HASH_COLLECTIONS);
    let json = report.to_json();
    assert!(json.contains("\"version\": 1"));
    assert!(json.contains("determinism/hash-collections"));
    assert!(json.contains("crates/msr/src/fixture.rs"));
    assert!(json.contains("\"line\": 3"));
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn shipped_tree_is_lint_clean() {
    let report = analyze_workspace(&repo_root()).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 50,
        "expected a real scan, got {}",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the shipped tree must carry no unsuppressed diagnostics:\n{}",
        report.to_text()
    );
}

/// Seeds one deliberate violation of each lint into a throwaway tree laid
/// out like a result-affecting crate, then checks the binary exits non-zero
/// with `file:line:col` diagnostics for all of them.
#[test]
fn binary_fails_on_seeded_violations_of_every_lint() {
    let dir = temp_tree("seeded");
    let bad = dir.join("crates/msr/src");
    std::fs::create_dir_all(&bad).expect("mkdirs");
    let source = concat!(
        "use std::collections::HashMap;\n",
        "use std::time::Instant;\n",
        "fn rng() { let _ = thread_rng(); }\n",
        "fn s(xs: &mut Vec<u64>) { xs.sort(); }\n",
        "// mbaa: alloc-free\n",
        "fn hot(xs: &[u64]) -> Vec<u64> { xs.to_vec() }\n",
        "// mbaa: alloc-free\n",
        "fn grow(xs: &mut Vec<u64>) { xs.push(1); }\n",
    );
    std::fs::write(bad.join("bad.rs"), source).expect("write fixture");

    let out = run_binary(&[dir.to_str().expect("utf8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    for lint in [
        "determinism/hash-collections",
        "determinism/wall-clock",
        "determinism/ambient-rng",
        "determinism/stable-sort",
        "hot-path/allocation",
        "hot-path/vec-growth",
    ] {
        assert!(stdout.contains(lint), "missing {lint} in:\n{stdout}");
    }
    // file:line:col anchors — one spot check per shape.
    assert!(
        stdout.contains("bad.rs:1:23"),
        "hash-collections anchor:\n{stdout}"
    );
    assert!(
        stdout.contains("bad.rs:6:37"),
        "allocation anchor:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_exits_zero_and_emits_json_on_a_clean_tree() {
    let dir = temp_tree("clean");
    let src = dir.join("crates/msr/src");
    std::fs::create_dir_all(&src).expect("mkdirs");
    std::fs::write(
        src.join("ok.rs"),
        "fn ok(xs: &mut Vec<u64>) { xs.sort_unstable(); }\n",
    )
    .expect("write fixture");

    let out = run_binary(&["--format", "json", dir.to_str().expect("utf8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("\"version\": 1"));
    assert!(stdout.contains("\"errors\": 0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_rejects_unknown_flags() {
    let out = run_binary(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

fn run_binary(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mbaa-analyze"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary runs")
}

/// A unique throwaway directory; path includes `crates/msr/` segments so the
/// analyzer's substring scoping treats seeded files as result-affecting.
fn temp_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbaa_analyze_{}_{}", tag, std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir temp tree");
    dir
}
