//! Fixture: hot-path/allocation — positives inside the marked region,
//! one suppressed, and allocations outside the region that must NOT fire.

fn setup_may_allocate(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    v.extend(0..n as u32);
    v
}

// mbaa: alloc-free
fn hot_loop(xs: &mut Vec<u32>, ys: &[u32]) -> usize {
    let copied = ys.to_vec();
    let doubled: Vec<u32> = ys.iter().map(|y| y * 2).collect::<Vec<u32>>();
    // mbaa: allow(hot-path/allocation, fixture demonstrating the waiver syntax)
    let waived = xs.clone();
    copied.len() + doubled.len() + waived.len()
}

fn after_the_region_allocates_freely() -> String {
    let v = vec![1, 2, 3];
    format!("{v:?}")
}
