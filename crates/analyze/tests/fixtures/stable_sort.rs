//! Fixture: determinism/stable-sort — positives and one suppressed.

fn stable_sorts(xs: &mut Vec<u64>, fs: &mut Vec<f64>) {
    xs.sort();
    fs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn fine_and_waived(xs: &mut Vec<u64>) {
    xs.sort_unstable();
    // mbaa: allow(determinism/stable-sort, fixture demonstrating the waiver syntax)
    xs.sort();
}
