//! Fixture: analyzer/bad-directive — malformed mbaa: comments are errors.

// mbaa: allow(no-such-lint, a reason)
fn unknown_lint() {}

// mbaa: allow(determinism/wall-clock)
fn missing_reason() {}

// mbaa: alloc_free
fn typoed_marker() {}
