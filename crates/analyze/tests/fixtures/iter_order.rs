//! Fixture: determinism/iter-order — positives, a sorted pass, a waiver.

fn unsorted_dedup(xs: &mut Vec<u64>) {
    xs.dedup();
}

fn unsorted_retain(xs: &mut Vec<u64>) {
    xs.retain(|x| *x > 0);
}

fn chained_receiver(xs: &[u64]) -> Vec<u64> {
    xs.to_vec().dedup_by(|a, b| a == b);
    xs.to_vec()
}

fn sorted_then_deduped(xs: &mut Vec<u64>) {
    xs.sort_unstable();
    xs.dedup();
}

fn waived(ys: &mut Vec<u64>) {
    // mbaa: allow(determinism/iter-order, fixture demonstrating the waiver syntax)
    ys.retain(|y| *y % 2 == 0);
}
