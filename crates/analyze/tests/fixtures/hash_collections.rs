//! Fixture: determinism/hash-collections — one positive, one suppressed.

use std::collections::HashMap;

fn suppressed_set() {
    // mbaa: allow(determinism/hash-collections, fixture demonstrating the waiver syntax)
    let s: std::collections::HashSet<u32> = Default::default();
    let _ = s;
}
