//! Fixture: determinism/ambient-rng — one positive, one suppressed.

fn ambient() {
    let mut rng = thread_rng();
    let _ = &mut rng;
}

fn suppressed_entropy() {
    // mbaa: allow(determinism/ambient-rng, fixture demonstrating the waiver syntax)
    let rng = OsRng;
    let _ = rng;
}
