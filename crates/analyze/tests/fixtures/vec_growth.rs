//! Fixture: hot-path/vec-growth — growth calls inside the marked region,
//! one suppressed, plus growth outside the region and non-growth inserts
//! inside it that must NOT fire.

fn setup_may_grow(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    v.extend(0..n as u32);
    v
}

// mbaa: alloc-free
fn hot_loop(xs: &mut Vec<u32>, scratch: &mut Vec<u32>, ys: &[u32]) {
    xs.push(7);
    scratch.extend_from_slice(ys);
    // mbaa: allow(hot-path/vec-growth, fixture demonstrating the waiver syntax)
    scratch.push(9);
    // A bitset/map insert is not Vec growth and stays unflagged.
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(3u32);
}

fn after_the_region_grows_freely(out: &mut Vec<u32>) {
    out.push(1);
    out.extend([2, 3]);
}
