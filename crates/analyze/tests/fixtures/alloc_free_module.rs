//! Module-level marker fixture: the inner-doc form covers the whole file.
//! mbaa: alloc-free

fn anywhere_in_the_file(n: usize) -> Vec<u64> {
    let boxed = Box::new(n as u64);
    let mut out = Vec::new();
    out.push(*boxed);
    out
}
