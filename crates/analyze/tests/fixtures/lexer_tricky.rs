//! Lexer torture fixture: every forbidden name below is inside a literal
//! or a comment, so analyzing this file must produce ZERO findings even
//! under a result-affecting virtual path.

fn literals_swallow_needles() {
    let raw = r#"HashMap::new() thread_rng() Instant::now() xs.sort()"#;
    let multi_hash = r##"closing hash trick: "# SystemTime OsRng "##;
    let plain = "HashMap inside a \"plain\" string with vec![] and format!";
    let bytes = b"HashSet in a byte string";
    let raw_bytes = br#"from_entropy() in a raw byte string"#;
    /* a block comment mentioning HashMap and Instant
       /* and a nested one mentioning thread_rng and sort_by */
       still inside the outer comment: SystemTime, OsRng */
    // a line comment mentioning HashSet, partial_cmp().unwrap(), vec![]
    let _ = (raw, multi_hash, plain, bytes, raw_bytes);
}

fn lifetimes_are_not_char_literals<'a>(x: &'a str) -> &'a str {
    let c = 'H';
    let escaped = '\'';
    let newline = '\n';
    let unicode = '\u{48}';
    let digit = '0';
    let underscore = '_';
    let byte = b'H';
    'outer: for _ in 0..2 {
        break 'outer;
    }
    let _ = (c, escaped, newline, unicode, digit, underscore, byte);
    x
}

fn raw_identifiers_are_plain_idents(r#type: u32) -> u32 {
    let exponent = 1.5e-3;
    let hex = 0xFE - 1;
    let tuple = (exponent, hex);
    let _ = tuple.0;
    r#type
}
