//! Fixture: determinism/wall-clock — one positive, one suppressed.

use std::time::Instant;

fn suppressed_timing() {
    // mbaa: allow(determinism/wall-clock, fixture demonstrating the waiver syntax)
    let t = std::time::SystemTime::now();
    let _ = t;
}
