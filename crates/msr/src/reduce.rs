//! The `Red` (reduction) step of MSR algorithms.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::ValueMultiset;

/// A reduction function: filters suspect values out of the received
/// multiset before the mean is taken.
///
/// The canonical MSR reduction removes the `τ` largest and `τ` smallest
/// values, where `τ` is chosen from the tolerated fault counts (`τ = a + s`
/// in the mixed-mode analysis). Since at most `τ` values in the multiset can
/// originate from non-benign faulty processes, every value surviving the
/// reduction is bracketed by correct values — the key step behind validity
/// (property P1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Reduction {
    /// Keep the multiset unchanged (no fault tolerance).
    #[default]
    Identity,
    /// Remove the `tau` smallest and `tau` largest values.
    Trim {
        /// Number of values dropped from each end.
        tau: usize,
    },
}

impl Reduction {
    /// A trimming reduction dropping `tau` values from each end.
    #[must_use]
    pub fn trim(tau: usize) -> Self {
        Reduction::Trim { tau }
    }

    /// The number of values removed from each end of the sorted multiset.
    #[must_use]
    pub fn tau(&self) -> usize {
        match self {
            Reduction::Identity => 0,
            Reduction::Trim { tau } => *tau,
        }
    }

    /// Applies the reduction.
    #[must_use]
    pub fn apply(&self, values: &ValueMultiset) -> ValueMultiset {
        match self {
            Reduction::Identity => values.clone(),
            Reduction::Trim { tau } => values.trimmed(*tau),
        }
    }

    /// The minimum multiset size for which the reduction leaves at least one
    /// value.
    #[must_use]
    pub fn min_input_len(&self) -> usize {
        2 * self.tau() + 1
    }
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reduction::Identity => write!(f, "identity"),
            Reduction::Trim { tau } => write!(f, "trim(τ={tau})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::Value;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn identity_keeps_everything() {
        let m = ms(&[1.0, 2.0, 3.0]);
        assert_eq!(Reduction::Identity.apply(&m), m);
        assert_eq!(Reduction::Identity.tau(), 0);
        assert_eq!(Reduction::Identity.min_input_len(), 1);
        assert_eq!(Reduction::default(), Reduction::Identity);
    }

    #[test]
    fn trim_drops_tau_from_each_end() {
        let m = ms(&[-100.0, 1.0, 2.0, 3.0, 100.0]);
        let red = Reduction::trim(1);
        assert_eq!(red.apply(&m), ms(&[1.0, 2.0, 3.0]));
        assert_eq!(red.tau(), 1);
        assert_eq!(red.min_input_len(), 3);
    }

    #[test]
    fn trim_of_small_multiset_is_empty() {
        let m = ms(&[1.0, 2.0]);
        assert!(Reduction::trim(1).apply(&m).is_empty());
    }

    #[test]
    fn trim_never_widens_range() {
        let m = ms(&[0.0, 1.0, 5.0, 9.0, 10.0]);
        for tau in 0..3 {
            let reduced = Reduction::trim(tau).apply(&m);
            if let (Some(r), Some(orig)) = (reduced.range(), m.range()) {
                assert!(orig.contains_interval(&r), "tau={tau}");
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Reduction::Identity.to_string(), "identity");
        assert_eq!(Reduction::trim(2).to_string(), "trim(τ=2)");
    }
}
