//! Assembled voting functions: `F_MSR(N) = mean(Sel(Red(N)))`.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{FaultCounts, Value, ValueMultiset};

use crate::{Reduction, Selection};

/// A voting function applied during the computation phase of each round.
///
/// The trait is object-safe so the protocol engine can run MSR instances and
/// non-MSR baselines (e.g. [`MedianVoting`](crate::MedianVoting))
/// interchangeably.
pub trait VotingFunction: fmt::Debug + Send + Sync {
    /// Computes the next vote from the multiset of received values, or
    /// `None` when the multiset is too small to produce a value.
    fn apply(&self, received: &ValueMultiset) -> Option<Value>;

    /// A short human-readable name used in reports and benchmark labels.
    fn name(&self) -> String;

    /// The smallest multiset size for which [`VotingFunction::apply`]
    /// returns a value.
    fn min_input_len(&self) -> usize {
        1
    }
}

/// A concrete member of the MSR family: a [`Reduction`] followed by a
/// [`Selection`] followed by the arithmetic mean.
///
/// # Example
///
/// ```
/// use mbaa_msr::{MsrFunction, Reduction, Selection, VotingFunction};
/// use mbaa_types::{Value, ValueMultiset};
///
/// let f = MsrFunction::new(Reduction::trim(1), Selection::All);
/// let votes: ValueMultiset = [0.0, 0.5, 1.0, 100.0]
///     .iter().copied().map(Value::new).collect();
/// assert_eq!(f.apply(&votes), Some(Value::new(0.75)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsrFunction {
    reduction: Reduction,
    selection: Selection,
}

impl MsrFunction {
    /// Assembles an MSR function from its reduction and selection steps.
    #[must_use]
    pub fn new(reduction: Reduction, selection: Selection) -> Self {
        MsrFunction {
            reduction,
            selection,
        }
    }

    /// The classic trimmed-mean algorithm of Dolev et al.: drop `tau` values
    /// from each end, average everything that survives.
    #[must_use]
    pub fn dolev_mean(tau: usize) -> Self {
        Self::new(Reduction::trim(tau), Selection::All)
    }

    /// The Fault-Tolerant Midpoint algorithm: drop `tau` values from each
    /// end, average the smallest and largest survivors.
    #[must_use]
    pub fn fault_tolerant_midpoint(tau: usize) -> Self {
        Self::new(Reduction::trim(tau), Selection::Extremes)
    }

    /// A reduced-median algorithm: drop `tau` values from each end, vote the
    /// median of the survivors.
    #[must_use]
    pub fn reduced_median(tau: usize) -> Self {
        Self::new(Reduction::trim(tau), Selection::MedianOnly)
    }

    /// The MSR instance sized for a mixed-mode fault configuration: the
    /// reduction parameter is `τ = a + s` (benign faults are detected and
    /// never enter the multiset).
    #[must_use]
    pub fn for_fault_counts(counts: FaultCounts) -> Self {
        Self::dolev_mean(counts.reduction_tau())
    }

    /// The reduction step.
    #[must_use]
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// The selection step.
    #[must_use]
    pub fn selection(&self) -> Selection {
        self.selection
    }
}

impl VotingFunction for MsrFunction {
    fn apply(&self, received: &ValueMultiset) -> Option<Value> {
        let reduced = self.reduction.apply(received);
        let selected = self.selection.apply(&reduced);
        selected.mean()
    }

    fn name(&self) -> String {
        format!("MSR[{} ∘ {} ∘ mean]", self.reduction, self.selection)
    }

    fn min_input_len(&self) -> usize {
        self.reduction.min_input_len()
    }
}

impl Default for MsrFunction {
    fn default() -> Self {
        MsrFunction::dolev_mean(0)
    }
}

impl fmt::Display for MsrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&VotingFunction::name(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn dolev_mean_trims_then_averages() {
        let f = MsrFunction::dolev_mean(1);
        let votes = ms(&[-1000.0, 1.0, 2.0, 3.0, 1000.0]);
        assert_eq!(f.apply(&votes), Some(Value::new(2.0)));
        assert_eq!(f.min_input_len(), 3);
    }

    #[test]
    fn fault_tolerant_midpoint_averages_extremes() {
        let f = MsrFunction::fault_tolerant_midpoint(1);
        let votes = ms(&[-1000.0, 1.0, 2.0, 7.0, 1000.0]);
        assert_eq!(f.apply(&votes), Some(Value::new(4.0)));
    }

    #[test]
    fn reduced_median_votes_the_median() {
        let f = MsrFunction::reduced_median(1);
        let votes = ms(&[-1000.0, 1.0, 2.0, 7.0, 1000.0]);
        assert_eq!(f.apply(&votes), Some(Value::new(2.0)));
    }

    #[test]
    fn for_fault_counts_uses_tau_a_plus_s() {
        let f = MsrFunction::for_fault_counts(FaultCounts::new(1, 2, 5));
        assert_eq!(f.reduction(), Reduction::trim(3));
        assert_eq!(f.selection(), Selection::All);
    }

    #[test]
    fn returns_none_on_undersized_input() {
        let f = MsrFunction::dolev_mean(2);
        assert_eq!(f.apply(&ms(&[1.0, 2.0, 3.0, 4.0])), None);
        assert_eq!(f.apply(&ValueMultiset::new()), None);
    }

    #[test]
    fn result_stays_within_input_range() {
        let f = MsrFunction::dolev_mean(1);
        let votes = ms(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        let out = f.apply(&votes).unwrap();
        assert!(votes.range().unwrap().contains(out));
    }

    #[test]
    fn default_is_plain_mean() {
        let f = MsrFunction::default();
        assert_eq!(f.apply(&ms(&[1.0, 3.0])), Some(Value::new(2.0)));
    }

    #[test]
    fn names_are_descriptive() {
        let f = MsrFunction::dolev_mean(2);
        let name = VotingFunction::name(&f);
        assert!(name.contains("trim"));
        assert!(name.contains("mean"));
        assert_eq!(f.to_string(), name);
    }

    #[test]
    fn trait_object_usable() {
        let f: Box<dyn VotingFunction> = Box::new(MsrFunction::dolev_mean(1));
        assert!(f.apply(&ms(&[1.0, 2.0, 3.0])).is_some());
    }
}
