//! Assembled voting functions: `F_MSR(N) = mean(Sel(Red(N)))`.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::{FaultCounts, Value, ValueMultiset};

use crate::{Reduction, Selection};

/// A voting function applied during the computation phase of each round.
///
/// The trait is object-safe so the protocol engine can run MSR instances and
/// non-MSR baselines (e.g. [`MedianVoting`](crate::MedianVoting))
/// interchangeably.
pub trait VotingFunction: fmt::Debug + Send + Sync {
    /// Computes the next vote from the multiset of received values, or
    /// `None` when the multiset is too small to produce a value.
    fn apply(&self, received: &ValueMultiset) -> Option<Value>;

    /// A short human-readable name used in reports and benchmark labels.
    fn name(&self) -> String;

    /// The smallest multiset size for which [`VotingFunction::apply`]
    /// returns a value.
    fn min_input_len(&self) -> usize {
        1
    }

    /// How many values survive the reduction step for a multiset of
    /// `input_len` received values (before any selection). Functions with
    /// no reduction step keep every value. Observability reports use this
    /// as the per-round MSR reduction width.
    fn reduced_width(&self, input_len: usize) -> usize {
        input_len
    }
}

/// A concrete member of the MSR family: a [`Reduction`] followed by a
/// [`Selection`] followed by the arithmetic mean.
///
/// # Example
///
/// ```
/// use mbaa_msr::{MsrFunction, Reduction, Selection, VotingFunction};
/// use mbaa_types::{Value, ValueMultiset};
///
/// let f = MsrFunction::new(Reduction::trim(1), Selection::All);
/// let votes: ValueMultiset = [0.0, 0.5, 1.0, 100.0]
///     .iter().copied().map(Value::new).collect();
/// assert_eq!(f.apply(&votes), Some(Value::new(0.75)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsrFunction {
    reduction: Reduction,
    selection: Selection,
}

impl MsrFunction {
    /// Assembles an MSR function from its reduction and selection steps.
    #[must_use]
    pub fn new(reduction: Reduction, selection: Selection) -> Self {
        MsrFunction {
            reduction,
            selection,
        }
    }

    /// The classic trimmed-mean algorithm of Dolev et al.: drop `tau` values
    /// from each end, average everything that survives.
    #[must_use]
    pub fn dolev_mean(tau: usize) -> Self {
        Self::new(Reduction::trim(tau), Selection::All)
    }

    /// The Fault-Tolerant Midpoint algorithm: drop `tau` values from each
    /// end, average the smallest and largest survivors.
    #[must_use]
    pub fn fault_tolerant_midpoint(tau: usize) -> Self {
        Self::new(Reduction::trim(tau), Selection::Extremes)
    }

    /// A reduced-median algorithm: drop `tau` values from each end, vote the
    /// median of the survivors.
    #[must_use]
    pub fn reduced_median(tau: usize) -> Self {
        Self::new(Reduction::trim(tau), Selection::MedianOnly)
    }

    /// The MSR instance sized for a mixed-mode fault configuration: the
    /// reduction parameter is `τ = a + s` (benign faults are detected and
    /// never enter the multiset).
    #[must_use]
    pub fn for_fault_counts(counts: FaultCounts) -> Self {
        Self::dolev_mean(counts.reduction_tau())
    }

    /// The reduction step.
    #[must_use]
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// The selection step.
    #[must_use]
    pub fn selection(&self) -> Selection {
        self.selection
    }

    /// Computes `mean(Sel(Red(N)))` directly over an **ascending** slice of
    /// values — no intermediate multisets, no heap allocation. This is the
    /// whole evaluation of [`VotingFunction::apply`], factored out so the
    /// batch engine can feed it lanes of a flat sorted buffer without
    /// materializing a [`ValueMultiset`] per lane; the two entry points are
    /// bit-identical by construction (`apply` delegates here).
    ///
    /// The caller must pass values in ascending order — a
    /// [`ValueMultiset`]'s slice qualifies, as does any `sort_unstable`d
    /// buffer of the same multiset (equal values are interchangeable in
    /// every selection).
    // mbaa: alloc-free
    #[must_use]
    pub fn apply_sorted(&self, sorted: &[Value]) -> Option<Value> {
        let tau = self.reduction.tau();
        if sorted.len() < self.reduction.min_input_len() {
            // The reduction would leave nothing (or the input is empty):
            // the materialized path's mean of an empty multiset.
            return None;
        }
        let reduced = &sorted[tau..sorted.len() - tau];
        match self.selection {
            Selection::All => mean_of_sorted(reduced.iter().copied(), reduced.len()),
            Selection::EveryKth { k } => {
                assert!(k >= 1, "selection step must be >= 1");
                mean_of_sorted(
                    reduced.iter().copied().step_by(k),
                    reduced.len().div_ceil(k),
                )
            }
            // The Fault-Tolerant Midpoint keeps {min, max} (a singleton
            // keeps its value twice): the mean is v/2 + v/2 either way.
            Selection::Extremes => {
                let lo = reduced[0];
                let hi = reduced[reduced.len() - 1];
                mean_of_sorted([lo, hi].into_iter(), 2)
            }
            Selection::MedianOnly => {
                let m = reduced.len();
                let median = if m % 2 == 1 {
                    reduced[m / 2]
                } else {
                    reduced[m / 2 - 1].midpoint(reduced[m / 2])
                };
                mean_of_sorted(std::iter::once(median), 1)
            }
        }
    }

    /// The k-wide form of [`MsrFunction::apply_sorted`]: folds
    /// `mean(Sel(Red(N)))` over `k = lanes.len() / lane_len` sorted lanes of
    /// one flat buffer in a single pass, writing lane `i`'s vote into
    /// `out[i]`. Lanes are stored **lane-major**: lane `i` occupies
    /// `lanes[i * lane_len .. (i + 1) * lane_len]` and must be ascending,
    /// exactly as `apply_sorted` requires. A lane too small for the
    /// reduction writes `None`, matching the scalar path.
    ///
    /// Because every lane shares one `lane_len`, the selection decomposes
    /// into one *shape* (which reduced indices are selected, what divisor
    /// the mean carries) applied to every lane: the fold runs
    /// `FOLD_LANES` (8) lanes abreast on independent accumulators, breaking
    /// the per-lane add-chain dependency the one-lane-at-a-time delegation
    /// serialized on. Each accumulator still adds its lane's terms in the
    /// exact order (and from the same `0.0` start) the scalar
    /// [`MsrFunction::apply_sorted`] mean uses, so the two entry points
    /// stay bit-identical; the method never allocates.
    ///
    /// # Panics
    ///
    /// Panics when `lane_len` does not evenly tile `lanes` into exactly
    /// `out.len()` lanes (ragged input would silently misattribute votes).
    // mbaa: alloc-free
    pub fn apply_sorted_lanes(&self, lanes: &[Value], lane_len: usize, out: &mut [Option<Value>]) {
        if lane_len == 0 {
            assert!(
                lanes.is_empty(),
                "lane_len = 0 cannot tile a non-empty buffer"
            );
            out.fill(None);
            return;
        }
        assert_eq!(
            lanes.len(),
            lane_len * out.len(),
            "flat buffer must hold exactly out.len() lanes of lane_len values"
        );
        if lane_len < self.reduction.min_input_len() {
            // Every lane is too small for the reduction — the scalar
            // path's `None`, uniformly.
            out.fill(None);
            return;
        }
        let tau = self.reduction.tau();
        let reduced_len = lane_len - 2 * tau;
        match self.selection {
            Selection::All => {
                fold_stepped(lanes, lane_len, tau, reduced_len, 1, reduced_len, out);
            }
            Selection::EveryKth { k } => {
                assert!(k >= 1, "selection step must be >= 1");
                fold_stepped(
                    lanes,
                    lane_len,
                    tau,
                    reduced_len,
                    k,
                    reduced_len.div_ceil(k),
                    out,
                );
            }
            Selection::Extremes => {
                // mean({lo, hi}) summed exactly as the scalar fold:
                // 0.0 + lo/2 + hi/2, in that order.
                for (i, slot) in out.iter_mut().enumerate() {
                    let base = i * lane_len + tau;
                    let mut acc = 0.0f64;
                    acc += lanes[base].get() / 2.0;
                    acc += lanes[base + reduced_len - 1].get() / 2.0;
                    *slot = Some(Value::new(acc));
                }
            }
            Selection::MedianOnly => {
                for (i, slot) in out.iter_mut().enumerate() {
                    let base = i * lane_len + tau;
                    let median = if reduced_len % 2 == 1 {
                        lanes[base + reduced_len / 2]
                    } else {
                        lanes[base + reduced_len / 2 - 1].midpoint(lanes[base + reduced_len / 2])
                    };
                    // The scalar path's mean of a 1-element selection:
                    // 0.0 + median/1.
                    *slot = Some(Value::new(0.0 + median.get() / 1.0));
                }
            }
        }
    }
}

/// How many lanes the vectorized MSR fold advances abreast: enough
/// independent accumulators to hide the floating-point add latency, small
/// enough that they stay in registers.
const FOLD_LANES: usize = 8;

/// The shortest reduced lane worth blocking: below this, the blocked
/// loop's strided loads cost more than the add-chain it hides, so the
/// fold stays on the sequential per-lane loop.
const FOLD_BLOCK_MIN_LEN: usize = 24;

/// The vectorized stepped-mean fold behind
/// [`MsrFunction::apply_sorted_lanes`]: for each lane, averages the
/// reduced values at indices `tau, tau + step, …` (strictly below
/// `tau + reduced_len`) over divisor `count`, running [`FOLD_LANES`] lanes
/// on independent accumulators. Per lane, terms are divided before summing
/// and added in ascending-index order from `0.0` — the exact
/// [`ValueMultiset::mean`] summation — so the result is bit-identical to
/// the scalar delegation it replaces.
// mbaa: alloc-free
#[allow(clippy::too_many_arguments)]
fn fold_stepped(
    lanes: &[Value],
    lane_len: usize,
    tau: usize,
    reduced_len: usize,
    step: usize,
    count: usize,
    out: &mut [Option<Value>],
) {
    let divisor = count as f64;
    let k = out.len();
    let mut base = 0;
    // Blocking pays for its strided access only once each lane folds
    // enough terms to hide the add latency; short lanes (small universes)
    // go straight to the sequential remainder loop below. Both layouts
    // add each lane's terms in the same order, so the choice is invisible
    // in the output.
    while reduced_len >= FOLD_BLOCK_MIN_LEN && base + FOLD_LANES <= k {
        let mut acc = [0.0f64; FOLD_LANES];
        let mut idx = 0;
        while idx < reduced_len {
            for (j, slot) in acc.iter_mut().enumerate() {
                *slot += lanes[(base + j) * lane_len + tau + idx].get() / divisor;
            }
            idx += step;
        }
        for (j, &sum) in acc.iter().enumerate() {
            out[base + j] = Some(Value::new(sum));
        }
        base += FOLD_LANES;
    }
    for (i, slot) in out.iter_mut().enumerate().skip(base) {
        let mut acc = 0.0f64;
        let mut idx = 0;
        while idx < reduced_len {
            acc += lanes[i * lane_len + tau + idx].get() / divisor;
            idx += step;
        }
        *slot = Some(Value::new(acc));
    }
}

impl VotingFunction for MsrFunction {
    /// Computes `mean(Sel(Red(N)))` directly over the sorted slice of the
    /// received multiset — no intermediate multisets, no heap allocation.
    /// Bit-identical to materializing [`Reduction::apply`] /
    /// [`Selection::apply`] and taking [`ValueMultiset::mean`]: the
    /// reduction is a sub-slice, the selection an iterator over it, and the
    /// mean divides each term before summing exactly like the multiset
    /// does. Delegates to [`MsrFunction::apply_sorted`].
    // mbaa: alloc-free
    fn apply(&self, received: &ValueMultiset) -> Option<Value> {
        self.apply_sorted(received.as_slice())
    }

    fn name(&self) -> String {
        format!("MSR[{} ∘ {} ∘ mean]", self.reduction, self.selection)
    }

    fn min_input_len(&self) -> usize {
        self.reduction.min_input_len()
    }

    /// The reduction discards the `tau` lowest and `tau` highest values.
    fn reduced_width(&self, input_len: usize) -> usize {
        input_len.saturating_sub(2 * self.reduction.tau())
    }
}

/// The arithmetic mean of `count` ascending values, dividing each term by
/// the count before summing — the exact summation
/// [`ValueMultiset::mean`] performs, so slice-based and materialized MSR
/// evaluation agree bit for bit.
fn mean_of_sorted<I: Iterator<Item = Value>>(values: I, count: usize) -> Option<Value> {
    if count == 0 {
        return None;
    }
    let n = count as f64;
    Some(Value::new(values.map(|v| v.get() / n).sum::<f64>()))
}

impl Default for MsrFunction {
    fn default() -> Self {
        MsrFunction::dolev_mean(0)
    }
}

impl fmt::Display for MsrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&VotingFunction::name(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn dolev_mean_trims_then_averages() {
        let f = MsrFunction::dolev_mean(1);
        let votes = ms(&[-1000.0, 1.0, 2.0, 3.0, 1000.0]);
        assert_eq!(f.apply(&votes), Some(Value::new(2.0)));
        assert_eq!(f.min_input_len(), 3);
    }

    #[test]
    fn fault_tolerant_midpoint_averages_extremes() {
        let f = MsrFunction::fault_tolerant_midpoint(1);
        let votes = ms(&[-1000.0, 1.0, 2.0, 7.0, 1000.0]);
        assert_eq!(f.apply(&votes), Some(Value::new(4.0)));
    }

    #[test]
    fn reduced_median_votes_the_median() {
        let f = MsrFunction::reduced_median(1);
        let votes = ms(&[-1000.0, 1.0, 2.0, 7.0, 1000.0]);
        assert_eq!(f.apply(&votes), Some(Value::new(2.0)));
    }

    #[test]
    fn for_fault_counts_uses_tau_a_plus_s() {
        let f = MsrFunction::for_fault_counts(FaultCounts::new(1, 2, 5));
        assert_eq!(f.reduction(), Reduction::trim(3));
        assert_eq!(f.selection(), Selection::All);
    }

    #[test]
    fn returns_none_on_undersized_input() {
        let f = MsrFunction::dolev_mean(2);
        assert_eq!(f.apply(&ms(&[1.0, 2.0, 3.0, 4.0])), None);
        assert_eq!(f.apply(&ValueMultiset::new()), None);
    }

    #[test]
    fn result_stays_within_input_range() {
        let f = MsrFunction::dolev_mean(1);
        let votes = ms(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        let out = f.apply(&votes).unwrap();
        assert!(votes.range().unwrap().contains(out));
    }

    #[test]
    fn default_is_plain_mean() {
        let f = MsrFunction::default();
        assert_eq!(f.apply(&ms(&[1.0, 3.0])), Some(Value::new(2.0)));
    }

    #[test]
    fn names_are_descriptive() {
        let f = MsrFunction::dolev_mean(2);
        let name = VotingFunction::name(&f);
        assert!(name.contains("trim"));
        assert!(name.contains("mean"));
        assert_eq!(f.to_string(), name);
    }

    #[test]
    fn trait_object_usable() {
        let f: Box<dyn VotingFunction> = Box::new(MsrFunction::dolev_mean(1));
        assert!(f.apply(&ms(&[1.0, 2.0, 3.0])).is_some());
    }

    /// The k-wide lane fold must agree bit for bit with applying the scalar
    /// path to each lane individually, for every selection.
    #[test]
    fn lane_apply_matches_scalar_per_lane() {
        let selections = [
            Selection::All,
            Selection::EveryKth { k: 2 },
            Selection::Extremes,
            Selection::MedianOnly,
        ];
        for tau in 0..3 {
            for selection in selections {
                let f = MsrFunction::new(Reduction::trim(tau), selection);
                for lane_len in 1..8 {
                    let k = 5;
                    let mut flat = Vec::new();
                    for lane in 0..k {
                        let mut values: Vec<Value> = (0..lane_len)
                            .map(|i| Value::new(((lane * 7 + i * 3) % 11) as f64 - 5.0))
                            .collect();
                        values.sort_unstable();
                        flat.extend(values);
                    }
                    let mut out = vec![None; k];
                    f.apply_sorted_lanes(&flat, lane_len, &mut out);
                    for (lane, got) in out.iter().enumerate() {
                        let expected =
                            f.apply_sorted(&flat[lane * lane_len..(lane + 1) * lane_len]);
                        assert_eq!(*got, expected, "tau={tau} {selection} lane {lane}");
                    }
                }
            }
        }
    }

    #[test]
    fn lane_apply_handles_empty_lanes() {
        let f = MsrFunction::dolev_mean(0);
        let mut out = vec![Some(Value::new(1.0)); 3];
        f.apply_sorted_lanes(&[], 0, &mut out);
        assert_eq!(out, vec![None; 3]);
    }

    #[test]
    #[should_panic(expected = "exactly out.len() lanes")]
    fn lane_apply_rejects_ragged_buffers() {
        let f = MsrFunction::dolev_mean(0);
        let mut out = vec![None; 2];
        f.apply_sorted_lanes(&[Value::new(1.0); 5], 2, &mut out);
    }

    /// The slice-based `apply` must agree bit for bit with materializing the
    /// reduction and selection steps and taking the multiset mean — the
    /// path it replaced.
    #[test]
    fn slice_apply_matches_materialized_pipeline() {
        let selections = [
            Selection::All,
            Selection::EveryKth { k: 2 },
            Selection::EveryKth { k: 3 },
            Selection::Extremes,
            Selection::MedianOnly,
        ];
        let mut state = 41_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for case in 0..100 {
            let len = (next() % 12) as usize;
            let votes: ValueMultiset = (0..len)
                .map(|_| Value::new((next() % 1000) as f64 / 10.0 - 50.0))
                .collect();
            for tau in 0..3 {
                for selection in selections {
                    let f = MsrFunction::new(Reduction::trim(tau), selection);
                    let materialized = selection.apply(&Reduction::trim(tau).apply(&votes)).mean();
                    assert_eq!(
                        f.apply(&votes),
                        materialized,
                        "case {case}: tau={tau} {selection} over {votes}"
                    );
                }
            }
        }
    }
}
