//! The `Sel` (selection) step of MSR algorithms.

use std::fmt;

use serde::{Deserialize, Serialize};

use mbaa_types::ValueMultiset;

/// A selection function: picks a subsequence of the reduced multiset whose
/// mean becomes the next vote.
///
/// Different members of the MSR family differ mostly in their selection
/// step:
///
/// * [`Selection::All`] keeps the whole reduced multiset — plain trimmed
///   averaging (the Dolev et al. style algorithm).
/// * [`Selection::EveryKth`] keeps every `k`-th value of the sorted reduced
///   multiset — the "subsequence" of Mean-*Subsequence*-Reduce, which
///   improves the convergence rate against symmetric faults.
/// * [`Selection::Extremes`] keeps only the smallest and largest surviving
///   values — the Fault-Tolerant Midpoint algorithm.
/// * [`Selection::MedianOnly`] keeps only the median surviving value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Selection {
    /// Keep every value of the reduced multiset.
    #[default]
    All,
    /// Keep every `k`-th value (1-based stepping over the sorted multiset).
    EveryKth {
        /// The stride `k >= 1`.
        k: usize,
    },
    /// Keep only the minimum and maximum of the reduced multiset.
    Extremes,
    /// Keep only the median of the reduced multiset.
    MedianOnly,
}

impl Selection {
    /// Applies the selection.
    ///
    /// # Panics
    ///
    /// Panics if the variant is [`Selection::EveryKth`] with `k == 0`.
    #[must_use]
    pub fn apply(&self, values: &ValueMultiset) -> ValueMultiset {
        match self {
            Selection::All => values.clone(),
            Selection::EveryKth { k } => values.selected(*k),
            Selection::Extremes => match (values.min(), values.max()) {
                (Some(lo), Some(hi)) => [lo, hi].into_iter().collect(),
                _ => ValueMultiset::new(),
            },
            Selection::MedianOnly => match values.median() {
                Some(m) => std::iter::once(m).collect(),
                None => ValueMultiset::new(),
            },
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::All => write!(f, "all"),
            Selection::EveryKth { k } => write!(f, "every-{k}th"),
            Selection::Extremes => write!(f, "extremes"),
            Selection::MedianOnly => write!(f, "median"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbaa_types::Value;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn all_keeps_everything() {
        let m = ms(&[1.0, 2.0, 3.0]);
        assert_eq!(Selection::All.apply(&m), m);
        assert_eq!(Selection::default(), Selection::All);
    }

    #[test]
    fn every_kth_strides_over_sorted_values() {
        let m = ms(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(Selection::EveryKth { k: 2 }.apply(&m), ms(&[0.0, 2.0, 4.0]));
        assert_eq!(Selection::EveryKth { k: 3 }.apply(&m), ms(&[0.0, 3.0]));
        assert_eq!(Selection::EveryKth { k: 1 }.apply(&m), m);
    }

    #[test]
    fn extremes_keeps_min_and_max() {
        let m = ms(&[5.0, 1.0, 3.0]);
        assert_eq!(Selection::Extremes.apply(&m), ms(&[1.0, 5.0]));
        assert!(Selection::Extremes.apply(&ValueMultiset::new()).is_empty());
        // A singleton keeps the value twice (min == max), preserving the mean.
        assert_eq!(Selection::Extremes.apply(&ms(&[2.0])), ms(&[2.0, 2.0]));
    }

    #[test]
    fn median_only() {
        assert_eq!(
            Selection::MedianOnly.apply(&ms(&[1.0, 2.0, 9.0])),
            ms(&[2.0])
        );
        assert_eq!(
            Selection::MedianOnly.apply(&ms(&[1.0, 2.0, 3.0, 9.0])),
            ms(&[2.5])
        );
        assert!(Selection::MedianOnly
            .apply(&ValueMultiset::new())
            .is_empty());
    }

    #[test]
    fn selection_never_widens_range() {
        let m = ms(&[0.0, 1.0, 2.0, 7.0, 10.0]);
        let orig = m.range().unwrap();
        for sel in [
            Selection::All,
            Selection::EveryKth { k: 2 },
            Selection::Extremes,
            Selection::MedianOnly,
        ] {
            let out = sel.apply(&m);
            if let Some(r) = out.range() {
                assert!(orig.contains_interval(&r), "{sel}");
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Selection::All.to_string(), "all");
        assert_eq!(Selection::EveryKth { k: 2 }.to_string(), "every-2th");
        assert_eq!(Selection::Extremes.to_string(), "extremes");
        assert_eq!(Selection::MedianOnly.to_string(), "median");
    }
}
