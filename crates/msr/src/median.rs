//! A non-MSR baseline voting function.

use serde::{Deserialize, Serialize};

use mbaa_types::{Value, ValueMultiset};

use crate::VotingFunction;

/// Median voting: each round, vote the median of all received values.
///
/// This approximates the behaviour of median-validity algorithms (Stolz &
/// Wattenhofer, OPODIS 2015), which the paper cites as an Approximate
/// Agreement solution *outside* the MSR class. It is included as a baseline
/// so the benchmark harness can compare the MSR family against a
/// non-MSR strategy under the same mobile adversaries.
///
/// # Example
///
/// ```
/// use mbaa_msr::{MedianVoting, VotingFunction};
/// use mbaa_types::{Value, ValueMultiset};
///
/// let votes: ValueMultiset = [0.0, 1.0, 100.0].iter().copied().map(Value::new).collect();
/// assert_eq!(MedianVoting::new().apply(&votes), Some(Value::new(1.0)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MedianVoting;

impl MedianVoting {
    /// Creates the median-voting function.
    #[must_use]
    pub fn new() -> Self {
        MedianVoting
    }
}

impl VotingFunction for MedianVoting {
    fn apply(&self, received: &ValueMultiset) -> Option<Value> {
        received.median()
    }

    fn name(&self) -> String {
        "median".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn votes_the_median() {
        let m = MedianVoting::new();
        assert_eq!(m.apply(&ms(&[3.0, 1.0, 2.0])), Some(Value::new(2.0)));
        assert_eq!(m.apply(&ms(&[1.0, 2.0, 3.0, 4.0])), Some(Value::new(2.5)));
        assert_eq!(m.apply(&ValueMultiset::new()), None);
    }

    #[test]
    fn name_and_min_len() {
        let m = MedianVoting::new();
        assert_eq!(VotingFunction::name(&m), "median");
        assert_eq!(m.min_input_len(), 1);
    }

    #[test]
    fn robust_to_a_minority_of_outliers() {
        let m = MedianVoting::new();
        let v = m.apply(&ms(&[0.0, 0.1, 0.2, 1e9, -1e9])).unwrap();
        assert!(v >= Value::new(0.0) && v <= Value::new(0.2));
    }
}
