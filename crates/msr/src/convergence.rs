//! Single-step convergence properties and convergence-rate analysis.
//!
//! The correctness of the MSR family rests on two properties of `F_MSR`
//! (stated in the paper as P1 and P2, originally proved by Kieckhafer &
//! Azadmanesh for the mixed-mode model when `n > 3a + 2s + b`):
//!
//! * **P1 (validity step)** — the value computed by a non-faulty process
//!   lies in the range `ρ(U)` of the values produced by non-faulty
//!   processes.
//! * **P2 (contraction step)** — the values computed by any two non-faulty
//!   processes are strictly closer than the diameter `δ(U)` of the
//!   non-faulty values they received (unless that diameter is already 0).
//!
//! This module provides checkers for P1/P2 on concrete round data, the
//! per-round contraction bookkeeping used by the experiment harness, and
//! closed-form round-count predictions.

use serde::{Deserialize, Serialize};

use mbaa_types::{Epsilon, Value, ValueMultiset};

/// Returns `true` when the computed value satisfies property **P1**: it lies
/// within the range of the non-faulty values `correct_values`.
///
/// An empty `correct_values` multiset makes P1 vacuously false (there is no
/// range to be inside of).
#[must_use]
pub fn satisfies_p1(computed: Value, correct_values: &ValueMultiset) -> bool {
    correct_values
        .range()
        .is_some_and(|range| range.contains(computed))
}

/// Returns `true` when two computed values satisfy property **P2**: their
/// distance is strictly smaller than the diameter of the non-faulty values
/// received, or both distances are zero.
#[must_use]
pub fn satisfies_p2(computed_i: Value, computed_j: Value, correct_values: &ValueMultiset) -> bool {
    let delta = correct_values.diameter();
    let dist = computed_i.distance(computed_j);
    if delta == 0.0 {
        dist == 0.0
    } else {
        dist < delta
    }
}

/// The diameter contraction observed in one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundContraction {
    /// Diameter of non-faulty values at the beginning of the round.
    pub before: f64,
    /// Diameter of non-faulty values after the computation phase.
    pub after: f64,
}

impl RoundContraction {
    /// Creates a contraction record.
    ///
    /// # Panics
    ///
    /// Panics if either diameter is negative or not finite.
    #[must_use]
    pub fn new(before: f64, after: f64) -> Self {
        assert!(
            before.is_finite() && before >= 0.0 && after.is_finite() && after >= 0.0,
            "diameters must be finite and non-negative"
        );
        RoundContraction { before, after }
    }

    /// The contraction factor `after / before`, or `0.0` when the round
    /// started already agreed (`before == 0`).
    #[must_use]
    pub fn factor(&self) -> f64 {
        if self.before == 0.0 {
            0.0
        } else {
            self.after / self.before
        }
    }

    /// Returns `true` when the diameter did not grow.
    #[must_use]
    pub fn is_non_expanding(&self) -> bool {
        self.after <= self.before
    }

    /// Returns `true` when the diameter strictly shrank (or was already 0).
    #[must_use]
    pub fn is_contracting(&self) -> bool {
        self.before == 0.0 || self.after < self.before
    }
}

/// The convergence history of one execution: the diameter of non-faulty
/// values at the end of every round.
///
/// # Example
///
/// ```
/// use mbaa_msr::ConvergenceReport;
/// use mbaa_types::Epsilon;
///
/// let mut report = ConvergenceReport::new(1.0);
/// report.record_round(0.5);
/// report.record_round(0.25);
/// assert_eq!(report.rounds_executed(), 2);
/// assert_eq!(report.final_diameter(), 0.25);
/// assert_eq!(report.rounds_to_reach(Epsilon::new(0.5)), Some(1));
/// assert_eq!(report.rounds_to_reach(Epsilon::new(0.1)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    initial_diameter: f64,
    diameters: Vec<f64>,
}

impl ConvergenceReport {
    /// Starts a report from the diameter of the initial values.
    ///
    /// # Panics
    ///
    /// Panics if `initial_diameter` is negative or not finite.
    #[must_use]
    pub fn new(initial_diameter: f64) -> Self {
        assert!(
            initial_diameter.is_finite() && initial_diameter >= 0.0,
            "diameter must be finite and non-negative"
        );
        ConvergenceReport {
            initial_diameter,
            diameters: Vec::new(),
        }
    }

    /// Like [`ConvergenceReport::new`], but with room for `rounds` recorded
    /// diameters up front. The protocol engine sizes the report to its round
    /// budget so that steady-state [`record_round`](Self::record_round)
    /// calls never reallocate.
    ///
    /// # Panics
    ///
    /// Panics if `initial_diameter` is negative or not finite.
    #[must_use]
    pub fn with_capacity(initial_diameter: f64, rounds: usize) -> Self {
        let mut report = Self::new(initial_diameter);
        report.diameters.reserve(rounds);
        report
    }

    /// Records the diameter at the end of a round.
    ///
    /// # Panics
    ///
    /// Panics if `diameter` is negative or not finite.
    pub fn record_round(&mut self, diameter: f64) {
        assert!(
            diameter.is_finite() && diameter >= 0.0,
            "diameter must be finite and non-negative"
        );
        self.diameters.push(diameter);
    }

    /// The diameter of the initial (round-0) values.
    #[must_use]
    pub fn initial_diameter(&self) -> f64 {
        self.initial_diameter
    }

    /// The per-round end-of-round diameters.
    #[must_use]
    pub fn diameters(&self) -> &[f64] {
        &self.diameters
    }

    /// The number of rounds recorded.
    #[must_use]
    pub fn rounds_executed(&self) -> usize {
        self.diameters.len()
    }

    /// The diameter after the last recorded round (the initial diameter when
    /// no round has been recorded).
    #[must_use]
    pub fn final_diameter(&self) -> f64 {
        self.diameters
            .last()
            .copied()
            .unwrap_or(self.initial_diameter)
    }

    /// The first round (1-based) whose end-of-round diameter is within
    /// ε, or `None` if ε-agreement was never reached.
    #[must_use]
    pub fn rounds_to_reach(&self, epsilon: Epsilon) -> Option<usize> {
        if epsilon.covers_diameter(self.initial_diameter) {
            return Some(0);
        }
        self.diameters
            .iter()
            .position(|&d| epsilon.covers_diameter(d))
            .map(|idx| idx + 1)
    }

    /// The per-round contraction records.
    #[must_use]
    pub fn contractions(&self) -> Vec<RoundContraction> {
        let mut result = Vec::with_capacity(self.diameters.len());
        let mut prev = self.initial_diameter;
        for &d in &self.diameters {
            result.push(RoundContraction::new(prev, d));
            prev = d;
        }
        result
    }

    /// The geometric mean of the per-round contraction factors, ignoring
    /// rounds that started already agreed. Returns `None` when no meaningful
    /// round exists.
    #[must_use]
    pub fn mean_contraction_factor(&self) -> Option<f64> {
        let factors: Vec<f64> = self
            .contractions()
            .into_iter()
            .filter(|c| c.before > 0.0 && c.after > 0.0)
            .map(|c| c.factor())
            .collect();
        if factors.is_empty() {
            // Either no rounds, or agreement collapsed to exactly 0 — treat
            // the latter as "no measurable factor".
            return None;
        }
        let log_sum: f64 = factors.iter().map(|f| f.ln()).sum();
        Some((log_sum / factors.len() as f64).exp())
    }

    /// Returns `true` when every recorded round satisfied the single-step
    /// convergence property (the diameter never grew).
    #[must_use]
    pub fn is_monotonically_non_expanding(&self) -> bool {
        self.contractions()
            .iter()
            .all(RoundContraction::is_non_expanding)
    }
}

/// Predicts the number of rounds needed to shrink an initial diameter
/// `delta0` below `epsilon`, assuming a constant per-round contraction
/// `factor` in `(0, 1)`.
///
/// Returns `Some(0)` when the initial diameter is already within ε and
/// `None` when `factor` is not in `(0, 1)` (no convergence guarantee).
#[must_use]
pub fn predicted_rounds(delta0: f64, epsilon: Epsilon, factor: f64) -> Option<usize> {
    if epsilon.covers_diameter(delta0) {
        return Some(0);
    }
    let contracting = factor > 0.0 && factor < 1.0;
    if !contracting || !delta0.is_finite() || delta0 <= 0.0 {
        return None;
    }
    // Smallest k with delta0 * factor^k <= eps.
    let k = (epsilon.get() / delta0).ln() / factor.ln();
    Some(k.ceil().max(0.0) as usize)
}

/// The worst-case per-round contraction factor of the Fault-Tolerant
/// Midpoint algorithm (`Selection::Extremes`): the diameter halves every
/// round when the resilience bound holds.
#[must_use]
pub fn fault_tolerant_midpoint_factor() -> f64 {
    0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(vals: &[f64]) -> ValueMultiset {
        vals.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn p1_requires_membership_in_correct_range() {
        let correct = ms(&[0.0, 1.0]);
        assert!(satisfies_p1(Value::new(0.5), &correct));
        assert!(satisfies_p1(Value::new(0.0), &correct));
        assert!(!satisfies_p1(Value::new(1.5), &correct));
        assert!(!satisfies_p1(Value::new(0.5), &ValueMultiset::new()));
    }

    #[test]
    fn p2_requires_strict_contraction() {
        let correct = ms(&[0.0, 1.0]);
        assert!(satisfies_p2(Value::new(0.2), Value::new(0.8), &correct));
        assert!(!satisfies_p2(Value::new(0.0), Value::new(1.0), &correct));

        let agreed = ms(&[0.5, 0.5]);
        assert!(satisfies_p2(Value::new(0.5), Value::new(0.5), &agreed));
        assert!(!satisfies_p2(Value::new(0.5), Value::new(0.6), &agreed));
    }

    #[test]
    fn contraction_factor_and_predicates() {
        let c = RoundContraction::new(1.0, 0.25);
        assert_eq!(c.factor(), 0.25);
        assert!(c.is_contracting());
        assert!(c.is_non_expanding());

        let flat = RoundContraction::new(0.0, 0.0);
        assert_eq!(flat.factor(), 0.0);
        assert!(flat.is_contracting());

        let grew = RoundContraction::new(1.0, 2.0);
        assert!(!grew.is_non_expanding());
        assert!(!grew.is_contracting());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn contraction_rejects_negative() {
        let _ = RoundContraction::new(-1.0, 0.0);
    }

    #[test]
    fn report_tracks_rounds_and_epsilon() {
        let mut r = ConvergenceReport::new(2.0);
        assert_eq!(r.final_diameter(), 2.0);
        assert_eq!(r.rounds_to_reach(Epsilon::new(3.0)), Some(0));

        r.record_round(1.0);
        r.record_round(0.4);
        r.record_round(0.1);
        assert_eq!(r.rounds_executed(), 3);
        assert_eq!(r.final_diameter(), 0.1);
        assert_eq!(r.rounds_to_reach(Epsilon::new(0.5)), Some(2));
        assert_eq!(r.rounds_to_reach(Epsilon::new(0.05)), None);
        assert_eq!(r.initial_diameter(), 2.0);
        assert_eq!(r.diameters(), &[1.0, 0.4, 0.1]);
        assert!(r.is_monotonically_non_expanding());
    }

    #[test]
    fn report_mean_contraction_factor() {
        let mut r = ConvergenceReport::new(1.0);
        r.record_round(0.5);
        r.record_round(0.25);
        let factor = r.mean_contraction_factor().unwrap();
        assert!((factor - 0.5).abs() < 1e-12);

        let empty = ConvergenceReport::new(1.0);
        assert_eq!(empty.mean_contraction_factor(), None);
    }

    #[test]
    fn report_detects_expansion() {
        let mut r = ConvergenceReport::new(1.0);
        r.record_round(1.5);
        assert!(!r.is_monotonically_non_expanding());
    }

    #[test]
    fn predicted_rounds_matches_geometric_decay() {
        let eps = Epsilon::new(0.01);
        // 1.0 * 0.5^k <= 0.01  =>  k >= 6.64  =>  7 rounds.
        assert_eq!(predicted_rounds(1.0, eps, 0.5), Some(7));
        assert_eq!(predicted_rounds(0.005, eps, 0.5), Some(0));
        assert_eq!(predicted_rounds(1.0, eps, 1.5), None);
        assert_eq!(predicted_rounds(1.0, eps, 0.0), None);
    }

    #[test]
    fn ftm_factor_is_one_half() {
        assert_eq!(fault_tolerant_midpoint_factor(), 0.5);
    }
}
