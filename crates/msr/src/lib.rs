//! The Mean-Subsequence-Reduce (MSR) family of convergent voting
//! algorithms, after Kieckhafer & Azadmanesh, "Reaching Approximate
//! Agreement with Mixed-Mode Faults" (IEEE TPDS 1994) — the algorithm class
//! whose correctness under *mobile* Byzantine faults the paper proves.
//!
//! An MSR algorithm computes, each round,
//!
//! ```text
//! F_MSR(N) = mean( Sel( Red(N) ) )
//! ```
//!
//! where `N` is the multiset of received values, `Red` removes suspect
//! extreme values, and `Sel` picks a subsequence of the remainder.
//!
//! This crate provides:
//!
//! * [`Reduction`] and [`Selection`] — the `Red` and `Sel` building blocks.
//! * [`MsrFunction`] — a concrete `F_MSR`, assembled from the two, plus the
//!   named instances the literature uses ([`MsrFunction::dolev_mean`],
//!   [`MsrFunction::fault_tolerant_midpoint`],
//!   [`MsrFunction::for_fault_counts`]).
//! * [`VotingFunction`] — the object-safe trait the protocol engine uses, so
//!   non-MSR baselines ([`MedianVoting`]) can be swapped in for comparison.
//! * [`convergence`] — the single-step convergence properties **P1** and
//!   **P2**, per-round contraction measurement, and the closed-form round
//!   count predictions used by the benchmark harness.
//!
//! # Example
//!
//! ```
//! use mbaa_msr::{MsrFunction, VotingFunction};
//! use mbaa_types::{FaultCounts, Value, ValueMultiset};
//!
//! // Two asymmetric faults tolerated: reduce τ = 2 from each end.
//! let f = MsrFunction::for_fault_counts(FaultCounts::new(2, 0, 0));
//! let votes: ValueMultiset = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, -50.0, 75.0]
//!     .iter().copied().map(Value::new).collect();
//! let v = f.apply(&votes).unwrap();
//! // The outliers planted by faulty processes are trimmed away.
//! assert!(v >= Value::new(0.0) && v <= Value::new(0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod convergence;
mod function;
mod median;
mod reduce;
mod select;

pub use convergence::{ConvergenceReport, RoundContraction};
pub use function::{MsrFunction, VotingFunction};
pub use median::MedianVoting;
pub use reduce::Reduction;
pub use select::Selection;
