//! Parameter sweeps: rounds-to-agreement vs `n`, adversary-strategy
//! ablations, and the mobile-vs-static equivalence experiment.

use serde::{Deserialize, Serialize};

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_mixed::{FaultAssignment, StaticBehavior, StaticSimulator};
use mbaa_msr::MsrFunction;
use mbaa_types::{Epsilon, MobileModel, Result};

use crate::{run_experiment, ExperimentConfig, ExperimentResult};

/// One point of a rounds-vs-`n` sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The number of processes at this point.
    pub n: usize,
    /// The aggregated experiment result.
    pub result: ExperimentResult,
}

/// Sweeps the system size from the model's minimum requirement up to
/// `required + extra` and measures rounds-to-agreement at each size
/// (experiment **F2** of DESIGN.md).
///
/// # Errors
///
/// Propagates configuration or engine errors.
pub fn rounds_vs_n(
    model: MobileModel,
    f: usize,
    extra: usize,
    template: &ExperimentConfig,
) -> Result<Vec<SweepPoint>> {
    let start = model.required_processes(f);
    let mut points = Vec::with_capacity(extra + 1);
    for n in start..=start + extra {
        let config = ExperimentConfig {
            model,
            n,
            f,
            ..template.clone()
        };
        points.push(SweepPoint {
            n,
            result: run_experiment(&config)?,
        });
    }
    Ok(points)
}

/// One cell of the adversary-strategy ablation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The model evaluated.
    pub model: MobileModel,
    /// The mobility strategy of the adversary.
    pub mobility: MobilityStrategy,
    /// The corruption strategy of the adversary.
    pub corruption: CorruptionStrategy,
    /// The aggregated result.
    pub result: ExperimentResult,
}

/// Evaluates every (mobility, corruption) pair for every model at
/// `n = required(f)` (experiment **F4** of DESIGN.md).
///
/// # Errors
///
/// Propagates configuration or engine errors.
pub fn adversary_ablation(f: usize, template: &ExperimentConfig) -> Result<Vec<AblationPoint>> {
    let mut points = Vec::new();
    for model in MobileModel::ALL {
        let n = model.required_processes(f);
        for mobility in MobilityStrategy::ALL {
            for corruption in CorruptionStrategy::all_representative() {
                let config = ExperimentConfig {
                    model,
                    n,
                    f,
                    mobility,
                    corruption,
                    ..template.clone()
                };
                points.push(AblationPoint {
                    model,
                    mobility,
                    corruption,
                    result: run_experiment(&config)?,
                });
            }
        }
    }
    Ok(points)
}

/// The diameter trajectories of one mobile run and its static mixed-mode
/// image (experiment **F3**, Theorem 1's equivalence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalencePoint {
    /// The seed shared by the two runs.
    pub seed: u64,
    /// End-of-round diameters of the mobile execution.
    pub mobile_diameters: Vec<f64>,
    /// End-of-round diameters of the static mixed-mode execution.
    pub static_diameters: Vec<f64>,
    /// Whether both runs reached ε-agreement.
    pub both_converged: bool,
}

impl EquivalencePoint {
    /// Rounds the mobile run needed (length of its trajectory).
    #[must_use]
    pub fn mobile_rounds(&self) -> usize {
        self.mobile_diameters.len()
    }

    /// Rounds the static run needed.
    #[must_use]
    pub fn static_rounds(&self) -> usize {
        self.static_diameters.len()
    }
}

/// Runs, for each seed, a mobile execution of `model` and a static
/// mixed-mode execution with the mapped fault counts (Lemmas 1–4), under
/// comparable adversarial value strategies, and returns both diameter
/// trajectories.
///
/// # Errors
///
/// Propagates configuration or engine errors.
pub fn mobile_vs_static(
    model: MobileModel,
    n: usize,
    f: usize,
    template: &ExperimentConfig,
) -> Result<Vec<EquivalencePoint>> {
    let epsilon = Epsilon::try_new(template.epsilon)
        .ok_or_else(|| mbaa_types::Error::InvalidParameter("epsilon must be > 0".into()))?;
    let counts = model.mixed_fault_counts(f);
    let function = MsrFunction::for_fault_counts(counts);
    let mut points = Vec::with_capacity(template.seeds.len());

    for &seed in &template.seeds {
        // Mobile execution.
        let mobile_config = ExperimentConfig {
            model,
            n,
            f,
            seeds: vec![seed],
            ..template.clone()
        };
        let mobile = run_experiment(&mobile_config)?;
        let mobile_run = &mobile.runs[0];

        // To recover the full trajectory we re-run through the engine
        // directly (run_experiment only keeps the summary).
        let protocol = mbaa_core::ProtocolConfig::builder(model, n, f)
            .epsilon(template.epsilon)
            .max_rounds(template.max_rounds)
            .mobility(template.mobility)
            .corruption(template.corruption)
            .seed(seed)
            .build()?;
        let inputs = template.workload.generate(n, seed);
        let mobile_outcome = mbaa_core::MobileEngine::new(protocol).run(&inputs)?;

        // Static mixed-mode execution with the mapped fault counts.
        let assignment = FaultAssignment::with_first_processes_faulty(n, counts)?;
        let static_sim = StaticSimulator::new(assignment, StaticBehavior::spread_attack(), seed);
        let static_outcome =
            static_sim.run(&function, &inputs, epsilon, template.max_rounds)?;

        points.push(EquivalencePoint {
            seed,
            mobile_diameters: mobile_outcome.report.diameters().to_vec(),
            static_diameters: static_outcome.report.diameters().to_vec(),
            both_converged: mobile_run.reached_agreement && static_outcome.reached_agreement,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_template(seeds: std::ops::Range<u64>) -> ExperimentConfig {
        ExperimentConfig::new(MobileModel::Buhrman, 7, 2)
            .with_seeds(seeds)
            .with_epsilon(1e-3)
            .with_max_rounds(200)
    }

    #[test]
    fn rounds_vs_n_covers_the_requested_range() {
        let template = small_template(0..2);
        let points = rounds_vs_n(MobileModel::Buhrman, 2, 3, &template).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].n, 7);
        assert_eq!(points[3].n, 10);
        assert!(points.iter().all(|p| p.result.all_succeeded()));
    }

    #[test]
    fn more_processes_do_not_converge_slower_on_average() {
        // Convergence should not degrade as n grows well beyond the bound.
        let template = small_template(0..3);
        let points = rounds_vs_n(MobileModel::Garay, 1, 8, &template).unwrap();
        let first = points.first().unwrap().result.mean_rounds().unwrap();
        let last = points.last().unwrap().result.mean_rounds().unwrap();
        assert!(last <= first * 2.0, "first {first}, last {last}");
    }

    #[test]
    fn ablation_grid_has_one_cell_per_combination() {
        let template = ExperimentConfig::new(MobileModel::Buhrman, 7, 1)
            .with_seeds(0..1)
            .with_max_rounds(150);
        let points = adversary_ablation(1, &template).unwrap();
        let expected = MobileModel::ALL.len()
            * MobilityStrategy::ALL.len()
            * CorruptionStrategy::all_representative().len();
        assert_eq!(points.len(), expected);
        // Above the bound every combination must succeed.
        for p in &points {
            assert!(
                p.result.all_succeeded(),
                "{} with {}/{} failed",
                p.model,
                p.mobility,
                p.corruption
            );
        }
    }

    #[test]
    fn mobile_and_static_trajectories_both_converge() {
        let template = small_template(0..3);
        let points = mobile_vs_static(MobileModel::Garay, 9, 2, &template).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.both_converged, "seed {} diverged", p.seed);
            assert!(p.mobile_rounds() > 0);
            assert!(p.static_rounds() > 0);
        }
    }
}
