//! Experiment harness: seeded experiments, parameter sweeps, statistics, and
//! report tables.
//!
//! The benchmarks (`mbaa-bench`), the examples, and EXPERIMENTS.md are all
//! generated through this crate so that every number reported by the
//! repository can be reproduced from an [`ExperimentConfig`]:
//!
//! * [`Workload`] — how initial values are generated (deterministic spread,
//!   clustered sensors, seeded uniform noise).
//! * [`ExperimentConfig`] / [`run_experiment`] — run one (model, n, f,
//!   adversary, algorithm) point over a batch of seeds and aggregate the
//!   outcomes into an [`ExperimentResult`].
//! * [`sweep`] — sweeps over `n`, models, and adversary strategies.
//! * [`stats`] — small summary-statistics helpers.
//! * [`report`] — Markdown / CSV table emission used by the benches.
//!
//! # Example
//!
//! ```
//! use mbaa_sim::{run_experiment, ExperimentConfig, Workload};
//! use mbaa_types::MobileModel;
//!
//! let config = ExperimentConfig::new(MobileModel::Buhrman, 7, 2)
//!     .with_seeds(0..5)
//!     .with_workload(Workload::UniformSpread { lo: 0.0, hi: 1.0 });
//! let result = run_experiment(&config)?;
//! assert_eq!(result.runs.len(), 5);
//! assert!(result.success_rate() > 0.99);
//! # Ok::<(), mbaa_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod experiment;
pub mod report;
pub mod stats;
pub mod sweep;
mod workload;

pub use experiment::{run_experiment, ExperimentConfig, ExperimentResult, RunSummary};
pub use workload::Workload;
