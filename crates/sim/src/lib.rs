//! Experiment harness: the lowered experiment forms, parallel seed-batch
//! execution, statistics, and report tables.
//!
//! The documented entry point for describing experiments is the `Scenario`
//! builder in the `mbaa` facade crate; this crate holds the forms a
//! scenario *lowers to* and the machinery that executes them:
//!
//! * [`Workload`] — how initial values are generated (deterministic spread,
//!   clustered sensors, seeded uniform noise, or explicit values).
//! * [`ExperimentConfig`] / [`run_experiment`] — run one (model, n, f,
//!   adversary, algorithm) point over a batch of seeds — fanned out on the
//!   work-stealing rayon pool — and aggregate the outcomes into an
//!   [`ExperimentResult`].
//! * [`run_experiment_with`] — the streaming variant: folds each completed
//!   run into its [`RunSummary`] on the worker and hands it to an observer
//!   as it finishes, keeping memory flat for very large seed batches.
//! * [`stats`] — small summary-statistics helpers.
//! * [`report`] — Markdown / CSV table emission used by the benches.
//!
//! Parameter sweeps live next to the `Scenario` type in the facade crate
//! (`Scenario::sweep_n`, `Scenario::sweep_f`, `adversary_ablation`,
//! `mobile_vs_static`).
//!
//! # Example
//!
//! ```
//! use mbaa_sim::{run_experiment, ExperimentConfig, Workload};
//! use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
//! use mbaa_core::Observe;
//! use mbaa_net::{DisconnectionPolicy, LinkFaultPlan, Topology};
//! use mbaa_types::MobileModel;
//!
//! // The lowered form is plain data (`mbaa::Scenario` produces it for you).
//! let config = ExperimentConfig {
//!     model: MobileModel::Buhrman,
//!     n: 7,
//!     f: 2,
//!     epsilon: 1e-3,
//!     max_rounds: 300,
//!     mobility: MobilityStrategy::TargetExtremes,
//!     corruption: CorruptionStrategy::split_attack(),
//!     topology: Topology::Complete,
//!     schedule: None,
//!     link_faults: LinkFaultPlan::default(),
//!     disconnection: DisconnectionPolicy::default(),
//!     function: None,
//!     seeds: (0..5).collect(),
//!     workload: Workload::UniformSpread { lo: 0.0, hi: 1.0 },
//!     allow_bound_violation: false,
//!     observe: Observe::default(),
//! };
//! let result = run_experiment(&config)?;
//! assert_eq!(result.runs.len(), 5);
//! assert!(result.success_rate() > 0.99);
//! # Ok::<(), mbaa_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod experiment;
pub mod report;
pub mod stats;
mod workload;

pub use experiment::{
    mean_pack_occupancy, run_batch_experiment, run_experiment, run_experiment_metrics,
    run_experiment_with, run_packed_experiments, run_packed_experiments_metrics, ExperimentConfig,
    ExperimentResult, RunSummary, BATCH_WIDTH,
};
pub use workload::Workload;
