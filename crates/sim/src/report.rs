//! Plain-text report tables (Markdown and CSV).
//!
//! The benchmark targets print the paper's tables through this module so
//! their output can be pasted straight into EXPERIMENTS.md.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A rectangular table with a header row.
///
/// # Example
///
/// ```
/// use mbaa_sim::report::Table;
///
/// let mut table = Table::new(["model", "n"]);
/// table.push_row(["M1", "9"]);
/// assert!(table.to_markdown().contains("| M1 | 9 |"));
/// assert_eq!(table.to_csv(), "model,n\nM1,9\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no header is provided.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row does not have exactly one cell per column.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as CSV (no quoting; cells must not contain commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Formats a float with a fixed number of decimals for table cells.
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats an optional float, using `"-"` for `None`.
#[must_use]
pub fn fmt_opt_f64(value: Option<f64>, decimals: usize) -> String {
    value.map_or_else(|| "-".to_string(), |v| fmt_f64(v, decimals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_round_trip() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["x", "y"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());

        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| x | y |"));

        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\nx,y\n");
        assert_eq!(t.to_string(), md);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_opt_f64(Some(0.5), 1), "0.5");
        assert_eq!(fmt_opt_f64(None, 3), "-");
    }
}
