//! Seeded experiments and their aggregated results.

use serde::{Deserialize, Serialize};

use mbaa_adversary::{CorruptionStrategy, MobilityStrategy};
use mbaa_core::{MobileEngine, ProtocolConfig};
use mbaa_msr::MsrFunction;
use mbaa_types::{MobileModel, Result};

use crate::Workload;

/// The description of one experiment point: a `(model, n, f, adversary,
/// algorithm, workload)` combination evaluated over a batch of seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The mobile Byzantine model.
    pub model: MobileModel,
    /// The number of processes.
    pub n: usize,
    /// The number of agents.
    pub f: usize,
    /// The agreement tolerance.
    pub epsilon: f64,
    /// The per-run round budget.
    pub max_rounds: usize,
    /// The adversary's mobility strategy.
    pub mobility: MobilityStrategy,
    /// The adversary's corruption strategy.
    pub corruption: CorruptionStrategy,
    /// The MSR instance to run, or `None` for the model's default.
    pub function: Option<MsrFunction>,
    /// The seeds to evaluate (one full protocol run per seed).
    pub seeds: Vec<u64>,
    /// The initial-value workload.
    pub workload: Workload,
    /// Whether to allow `n` below the model's bound (threshold sweeps).
    pub allow_bound_violation: bool,
}

impl ExperimentConfig {
    /// Creates an experiment with the workspace defaults: worst-case
    /// adversary (split corruption, extreme-targeting mobility), ε = 1e-3,
    /// 300-round budget, 10 seeds, uniform spread workload.
    #[must_use]
    pub fn new(model: MobileModel, n: usize, f: usize) -> Self {
        ExperimentConfig {
            model,
            n,
            f,
            epsilon: 1e-3,
            max_rounds: 300,
            mobility: MobilityStrategy::TargetExtremes,
            corruption: CorruptionStrategy::split_attack(),
            function: None,
            seeds: (0..10).collect(),
            workload: Workload::default(),
            allow_bound_violation: false,
        }
    }

    /// Replaces the seed batch.
    #[must_use]
    pub fn with_seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the workload.
    #[must_use]
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Replaces the agreement tolerance.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Replaces the round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Replaces the adversary strategies.
    #[must_use]
    pub fn with_adversary(mut self, mobility: MobilityStrategy, corruption: CorruptionStrategy) -> Self {
        self.mobility = mobility;
        self.corruption = corruption;
        self
    }

    /// Replaces the voting function.
    #[must_use]
    pub fn with_function(mut self, function: MsrFunction) -> Self {
        self.function = Some(function);
        self
    }

    /// Permits `n` below the model's resilience bound.
    #[must_use]
    pub fn allowing_bound_violation(mut self) -> Self {
        self.allow_bound_violation = true;
        self
    }

    /// Builds the [`ProtocolConfig`] for one seed.
    fn protocol_config(&self, seed: u64) -> Result<ProtocolConfig> {
        let mut builder = ProtocolConfig::builder(self.model, self.n, self.f)
            .epsilon(self.epsilon)
            .max_rounds(self.max_rounds)
            .mobility(self.mobility)
            .corruption(self.corruption)
            .seed(seed);
        if let Some(function) = self.function {
            builder = builder.function(function);
        }
        if self.allow_bound_violation {
            builder = builder.allow_bound_violation();
        }
        builder.build()
    }
}

/// The outcome of one seeded run within an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The adversary/workload seed of this run.
    pub seed: u64,
    /// Whether ε-agreement was reached within the round budget.
    pub reached_agreement: bool,
    /// Whether validity held at the end of the run.
    pub validity: bool,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Diameter of the non-faulty values at the end of the run.
    pub final_diameter: f64,
    /// Diameter of the non-faulty initial values.
    pub initial_diameter: f64,
    /// Geometric-mean per-round contraction factor, when measurable.
    pub mean_contraction: Option<f64>,
}

/// The aggregated outcome of an experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// One summary per seed.
    pub runs: Vec<RunSummary>,
}

impl ExperimentResult {
    /// Fraction of runs that reached ε-agreement *and* preserved validity.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let ok = self
            .runs
            .iter()
            .filter(|r| r.reached_agreement && r.validity)
            .count();
        ok as f64 / self.runs.len() as f64
    }

    /// Returns `true` when every run reached ε-agreement with validity.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.reached_agreement && r.validity)
    }

    /// Rounds-to-agreement of the successful runs.
    #[must_use]
    pub fn rounds_of_successful_runs(&self) -> Vec<f64> {
        self.runs
            .iter()
            .filter(|r| r.reached_agreement)
            .map(|r| r.rounds as f64)
            .collect()
    }

    /// Mean rounds-to-agreement over the successful runs, or `None` when no
    /// run succeeded.
    #[must_use]
    pub fn mean_rounds(&self) -> Option<f64> {
        let rounds = self.rounds_of_successful_runs();
        if rounds.is_empty() {
            None
        } else {
            Some(rounds.iter().sum::<f64>() / rounds.len() as f64)
        }
    }

    /// Mean of the per-run contraction factors, over runs where one was
    /// measurable.
    #[must_use]
    pub fn mean_contraction(&self) -> Option<f64> {
        let factors: Vec<f64> = self.runs.iter().filter_map(|r| r.mean_contraction).collect();
        if factors.is_empty() {
            None
        } else {
            Some(factors.iter().sum::<f64>() / factors.len() as f64)
        }
    }
}

/// Runs every seed of an experiment point and aggregates the outcomes.
///
/// # Errors
///
/// Propagates configuration errors (for example `n` below the bound without
/// [`ExperimentConfig::allowing_bound_violation`]) and engine errors.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentResult> {
    let mut runs = Vec::with_capacity(config.seeds.len());
    for &seed in &config.seeds {
        let protocol = config.protocol_config(seed)?;
        let engine = MobileEngine::new(protocol);
        let inputs = config.workload.generate(config.n, seed);
        let outcome = engine.run(&inputs)?;
        runs.push(RunSummary {
            seed,
            reached_agreement: outcome.reached_agreement,
            validity: outcome.validity_holds(),
            rounds: outcome.rounds_executed,
            final_diameter: outcome.final_diameter(),
            initial_diameter: outcome.report.initial_diameter(),
            mean_contraction: outcome.report.mean_contraction_factor(),
        });
    }
    Ok(ExperimentResult {
        config: config.clone(),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_every_seed() {
        let config = ExperimentConfig::new(MobileModel::Buhrman, 7, 2).with_seeds(0..4);
        let result = run_experiment(&config).unwrap();
        assert_eq!(result.runs.len(), 4);
        assert!(result.all_succeeded());
        assert_eq!(result.success_rate(), 1.0);
        assert!(result.mean_rounds().unwrap() >= 1.0);
    }

    #[test]
    fn below_bound_requires_explicit_opt_in() {
        let config = ExperimentConfig::new(MobileModel::Garay, 8, 2).with_seeds(0..1);
        assert!(run_experiment(&config).is_err());

        let permissive = config.allowing_bound_violation();
        assert!(run_experiment(&permissive).is_ok());
    }

    #[test]
    fn every_model_succeeds_at_its_bound() {
        for model in MobileModel::ALL {
            let f = 1;
            let n = model.required_processes(f);
            let config = ExperimentConfig::new(model, n, f)
                .with_seeds(0..3)
                .with_epsilon(1e-3)
                .with_max_rounds(300);
            let result = run_experiment(&config).unwrap();
            assert!(result.all_succeeded(), "{model} failed: {:?}", result.runs);
        }
    }

    #[test]
    fn custom_function_and_workload_are_used() {
        let config = ExperimentConfig::new(MobileModel::Buhrman, 7, 1)
            .with_seeds(0..2)
            .with_function(MsrFunction::fault_tolerant_midpoint(1))
            .with_workload(Workload::Clustered {
                centers: vec![0.0, 0.5, 1.0],
                jitter: 0.01,
            })
            .with_adversary(MobilityStrategy::Random, CorruptionStrategy::BoundaryDrag);
        let result = run_experiment(&config).unwrap();
        assert!(result.all_succeeded());
        // Every run records its initial diameter even when the contraction
        // factor is unmeasurable (exact agreement reached in one step).
        assert!(result.runs.iter().all(|r| r.initial_diameter > 0.0));
    }

    #[test]
    fn empty_seed_batch_yields_empty_result() {
        let config = ExperimentConfig::new(MobileModel::Buhrman, 4, 1).with_seeds(std::iter::empty());
        let result = run_experiment(&config).unwrap();
        assert!(result.runs.is_empty());
        assert_eq!(result.success_rate(), 0.0);
        assert!(!result.all_succeeded());
        assert_eq!(result.mean_rounds(), None);
    }
}
